//! Statistical integration tests: measured expectations vs analytically
//! known values, semantics equivalence at the workspace level, and
//! approximation-ratio cross-checks against the exact optimum — all
//! through the registry + parallel-evaluator pipeline.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu::algos::opt::{evaluate_stationary, exact_opt, OptLimits};
use suu::algos::standard_registry;
use suu::core::{workload, Precedence};
use suu::dag::ChainSet;
use suu::sim::stats::{chi_square_critical_001, chi_square_two_sample, histogram_pair};
use suu::sim::{EvalConfig, Evaluator, ExecConfig, PolicySpec, Semantics};

fn evaluator(trials: usize, semantics: Semantics, seed: u64) -> Evaluator {
    Evaluator::new(EvalConfig {
        trials,
        master_seed: seed,
        threads: 0,
        exec: ExecConfig {
            semantics,
            max_steps: 1_000_000,
            ..ExecConfig::default()
        },
        ..EvalConfig::default()
    })
}

#[test]
fn chain_of_geometrics_has_known_mean() {
    // One machine, chain of 3 jobs with q = 1/2: E[T] = 3 * 2 = 6.
    let registry = standard_registry();
    let cs = ChainSet::new(3, vec![vec![0, 1, 2]]).unwrap();
    let inst = Arc::new(workload::homogeneous(1, 3, 0.5, Precedence::Chains(cs)));
    for semantics in [Semantics::Suu, Semantics::SuuStar] {
        let mean = evaluator(6000, semantics, 17)
            .run_spec(&registry, &inst, &PolicySpec::new("gang-sequential"))
            .unwrap()
            .mean_makespan();
        assert!(
            (mean - 6.0).abs() < 0.25,
            "{semantics:?}: mean {mean:.3} != 6"
        );
    }
}

#[test]
fn gang_mean_matches_exact_policy_value() {
    // Exact value of the gang policy on independent jobs with identical
    // machines: jobs done one at a time, each Geometric(1 - q^m).
    let registry = standard_registry();
    let (m, n, q) = (3usize, 4usize, 0.6f64);
    let inst = Arc::new(workload::homogeneous(m, n, q, Precedence::Independent));
    let expected = n as f64 / (1.0 - q.powi(m as i32));
    let mean = evaluator(6000, Semantics::SuuStar, 23)
        .run_spec(&registry, &inst, &PolicySpec::new("gang-sequential"))
        .unwrap()
        .mean_makespan();
    assert!(
        (mean - expected).abs() < 0.15,
        "mean {mean:.3} vs expected {expected:.3}"
    );
}

#[test]
fn sem_within_constant_of_exact_opt_across_shapes() {
    // Aggregated check over several tiny shapes: measured SEM within a
    // generous constant of exact OPT (its guarantee is O(log log) with
    // K <= 4 here).
    let registry = standard_registry();
    let shapes = [
        (2usize, 4usize, 0.3f64, 0.9f64),
        (3, 5, 0.2, 0.8),
        (2, 6, 0.4, 0.95),
    ];
    for (idx, &(m, n, lo, hi)) in shapes.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(idx as u64 * 13 + 5);
        let inst = Arc::new(workload::uniform_unrelated(
            m,
            n,
            lo,
            hi,
            Precedence::Independent,
            &mut rng,
        ));
        let opt = exact_opt(&inst, OptLimits::default()).expect("tiny");
        let mean = evaluator(400, Semantics::SuuStar, idx as u64)
            .run_spec(&registry, &inst, &PolicySpec::new("suu-i-sem"))
            .unwrap()
            .mean_makespan();
        let ratio = mean / opt;
        assert!(
            ratio < 10.0,
            "shape {idx}: ratio {ratio:.2} (mean {mean:.2}, opt {opt:.2})"
        );
        assert!(ratio > 0.9, "shape {idx}: impossibly good ratio {ratio:.2}");
    }
}

#[test]
fn simulated_exact_opt_policy_matches_dp_value() {
    // The registry's exact-opt policy, simulated, must estimate its own
    // DP value: the loop closes across opt.rs, the registry and the
    // engine.
    let registry = standard_registry();
    let mut rng = SmallRng::seed_from_u64(41);
    let inst = Arc::new(workload::uniform_unrelated(
        2,
        5,
        0.3,
        0.9,
        Precedence::Independent,
        &mut rng,
    ));
    let opt = exact_opt(&inst, OptLimits::default()).unwrap();
    let report = evaluator(8000, Semantics::SuuStar, 3)
        .run_spec(&registry, &inst, &PolicySpec::new("exact-opt"))
        .unwrap();
    let summary = report.summary().expect("nonempty");
    let ci = 4.0 * summary.std_err; // ~4 sigma
    assert!(
        (summary.mean - opt).abs() <= ci.max(0.1),
        "simulated {:.3} vs DP {opt:.3} (ci {ci:.3})",
        summary.mean
    );
}

#[test]
fn semantics_equivalence_workspace_level() {
    // Theorem 10 at the integration level: chains + the registry pipeline.
    let registry = standard_registry();
    let cs = ChainSet::new(5, vec![vec![0, 1], vec![2, 3, 4]]).unwrap();
    let mut rng = SmallRng::seed_from_u64(29);
    let inst = Arc::new(workload::uniform_unrelated(
        3,
        5,
        0.3,
        0.9,
        Precedence::Chains(cs),
        &mut rng,
    ));
    let collect = |semantics| {
        evaluator(5000, semantics, 1234)
            .run_spec(&registry, &inst, &PolicySpec::new("gang-sequential"))
            .unwrap()
            .outcomes
            .into_iter()
            .map(|o| o.makespan)
            .collect::<Vec<_>>()
    };
    let a = collect(Semantics::Suu);
    let b = collect(Semantics::SuuStar);
    let (ha, hb) = histogram_pair(&a, &b);
    let (chi2, dof) = chi_square_two_sample(&ha, &hb);
    assert!(
        chi2 <= chi_square_critical_001(dof),
        "chi2 {chi2:.2} over critical (dof {dof})"
    );
}

#[test]
fn monte_carlo_agrees_with_exact_policy_evaluation() {
    // The noise-free check: the DP-based exact value of the gang policy
    // must match its Monte-Carlo estimate within the CI, on a
    // heterogeneous instance with chains (no closed form available).
    let registry = standard_registry();
    let cs = ChainSet::new(5, vec![vec![0, 1, 2], vec![3, 4]]).unwrap();
    let mut rng = SmallRng::seed_from_u64(31);
    let inst = Arc::new(workload::uniform_unrelated(
        3,
        5,
        0.3,
        0.9,
        Precedence::Chains(cs),
        &mut rng,
    ));
    // Gang policy as a stationary assignment function: all machines on
    // the lowest eligible job.
    let exact = evaluate_stationary(&inst, OptLimits::default(), |_, eligible| {
        vec![eligible.first().copied(); 3]
    })
    .expect("gang makes progress");

    let report = evaluator(8000, Semantics::SuuStar, 9)
        .run_spec(&registry, &inst, &PolicySpec::new("gang-sequential"))
        .unwrap();
    let summary = report.summary().expect("nonempty");
    let ci = 4.0 * summary.std_err; // ~4 sigma
    assert!(
        (summary.mean - exact).abs() <= ci.max(0.1),
        "Monte-Carlo {:.3} vs exact {exact:.3} (ci {ci:.3})",
        summary.mean
    );
}

#[test]
fn makespan_distribution_has_geometric_tail() {
    // Single job, single machine q=0.7: P[T > k] = 0.7^k. Check the
    // empirical 90th percentile against the analytic quantile.
    let registry = standard_registry();
    let inst = Arc::new(workload::homogeneous(1, 1, 0.7, Precedence::Independent));
    let report = evaluator(8000, Semantics::Suu, 3)
        .run_spec(&registry, &inst, &PolicySpec::new("gang-sequential"))
        .unwrap();
    let mut makespans: Vec<u64> = report.outcomes.iter().map(|o| o.makespan).collect();
    makespans.sort_unstable();
    let p90 = makespans[(makespans.len() * 9) / 10] as f64;
    // Analytic: smallest k with 1 - 0.7^k >= 0.9  =>  k = ceil(ln 0.1 / ln 0.7) = 7.
    assert!((p90 - 7.0).abs() <= 1.0, "p90 {p90} vs analytic 7");
}
