//! Differential proof of the event engine: for every scenario family of
//! the standard suite, every capable registry policy, and both
//! randomness semantics, the dense per-step oracle and the event-driven
//! fast path must produce **bitwise-identical** `ExecOutcome`s from the
//! same master seed — makespans, machine-step counters and per-job
//! completion times. Since every `suu-results/v1` statistic is a pure
//! function of the outcome vector, this also proves the recorded JSON
//! results are engine-independent.
//!
//! Plus: the machine-step accounting invariant
//! `busy + idle + ineligible == m · makespan`, and a proptest sweep over
//! random instances.

use proptest::prelude::*;
use std::sync::Arc;
use suu::algos::standard_registry;
use suu::bench::scenario::ScenarioSuite;
use suu::core::{workload, Precedence};
use suu::sim::{
    execute, Assignment, Decision, EngineKind, EvalConfig, Evaluator, ExecConfig, ExecOutcome,
    Policy, PolicySpec, RegistryError, Semantics, StateView,
};

/// Policies to race through the differential harness. Deliberately
/// mixed: pure-HOLD stationary policies (gang, greedy), a per-step
/// wake-up policy (round-robin), timetable policies with row-change
/// wake-ups (suu-i-obl, suu-i-sem) and the superstep machinery with
/// internal randomness (suu-c, suu-t).
const SPECS: &[&str] = &[
    "gang-sequential",
    "round-robin",
    "greedy-lr",
    "suu-i-obl",
    "suu-i-sem",
    "suu-c(seed=9)",
    "suu-t",
];

fn outcomes(
    inst: &Arc<suu::core::SuuInstance>,
    spec: &PolicySpec,
    semantics: Semantics,
    engine: EngineKind,
    trials: usize,
) -> Result<Vec<ExecOutcome>, RegistryError> {
    let registry = standard_registry();
    let evaluator = Evaluator::new(EvalConfig {
        trials,
        master_seed: 0xD1FF,
        threads: 0,
        exec: ExecConfig {
            semantics,
            engine,
            max_steps: 2_000_000,
        },
    });
    Ok(evaluator.run_spec(&registry, inst, spec)?.outcomes)
}

#[test]
fn dense_and_event_engines_agree_on_every_scenario_family() {
    for sc in ScenarioSuite::standard(42).scenarios {
        let inst = sc.instantiate();
        for spec_text in SPECS {
            let spec = PolicySpec::parse(spec_text).unwrap();
            for semantics in [Semantics::Suu, Semantics::SuuStar] {
                let dense = match outcomes(&inst, &spec, semantics, EngineKind::Dense, 6) {
                    Ok(o) => o,
                    // Capability mismatch (e.g. suu-i-sem on chains):
                    // skipping is the registry's job, not this test's.
                    Err(RegistryError::UnsupportedStructure { .. }) => continue,
                    Err(e) => panic!("{}/{spec_text}: {e}", sc.id),
                };
                let events = outcomes(&inst, &spec, semantics, EngineKind::Events, 6).unwrap();
                assert_eq!(
                    dense, events,
                    "engines diverge on {}/{spec_text}/{semantics:?}",
                    sc.id
                );
                for o in &events {
                    assert!(o.completed, "{}/{spec_text} hit the step cap", sc.id);
                    assert_eq!(
                        o.busy_steps + o.idle_steps + o.ineligible_assignments,
                        sc.m as u64 * o.makespan,
                        "accounting leak on {}/{spec_text}",
                        sc.id
                    );
                }
            }
        }
    }
}

/// Eligible-set spread policy used by the random sweep (stationary).
struct Spread;
impl Policy for Spread {
    fn name(&self) -> &str {
        "spread"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        let eligible: Vec<u32> = view.eligible.iter().collect();
        if !eligible.is_empty() {
            for i in 0..view.m {
                out.set(i, suu::core::JobId(eligible[i % eligible.len()]));
            }
        }
        Decision::HOLD
    }
}

/// Rotates machines over eligible jobs every step (per-step wake-ups).
struct Rotate;
impl Policy for Rotate {
    fn name(&self) -> &str {
        "rotate"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        let eligible: Vec<u32> = view.eligible.iter().collect();
        if !eligible.is_empty() {
            for i in 0..view.m {
                let idx = (i as u64 + view.time) as usize % eligible.len();
                out.set(i, suu::core::JobId(eligible[idx]));
            }
        }
        Decision::step(view)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random instances, random seeds, both semantics, both policies:
    /// the engines must agree bitwise and the accounting must partition.
    #[test]
    fn engines_agree_on_random_instances(
        gen_seed in 0u64..1_000_000,
        trial_seed in 0u64..1_000_000,
        m in 1usize..5,
        n in 1usize..10,
        q_lo in 0.05f64..0.6,
        spread in 0.1f64..0.39,
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let inst = workload::uniform_unrelated(
            m, n, q_lo, q_lo + spread, Precedence::Independent, &mut rng,
        );
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            for which in 0..2 {
                let run = |engine| {
                    let cfg = ExecConfig { semantics, engine, max_steps: 500_000 };
                    if which == 0 {
                        execute(&inst, &mut Spread, &cfg, trial_seed)
                    } else {
                        execute(&inst, &mut Rotate, &cfg, trial_seed)
                    }
                };
                let dense = run(EngineKind::Dense);
                let events = run(EngineKind::Events);
                prop_assert_eq!(&dense, &events);
                prop_assert_eq!(
                    events.busy_steps + events.idle_steps + events.ineligible_assignments,
                    m as u64 * events.makespan
                );
            }
        }
    }
}
