//! Differential proof of the execution engines: for every scenario
//! family of the standard suite, every capable registry policy, and both
//! randomness semantics,
//!
//! * the dense per-step oracle and the event-driven fast path, and
//! * the per-trial event engine and the **batched SoA engine**
//!   (`Evaluator::run_batched`, including the stationary shared-decision
//!   fast path),
//!
//! must produce **bitwise-identical** `ExecOutcome`s from the same
//! master seed — makespans, machine-step counters and per-job completion
//! times. Since every `suu-results/v2` statistic is a pure function of
//! the outcome vector, this also proves the recorded JSON results are
//! engine-independent.
//!
//! Plus: the machine-step accounting invariant
//! `busy + idle + ineligible == m · makespan`, and a proptest sweep over
//! random instances.

use proptest::prelude::*;
use std::sync::Arc;
use suu::algos::standard_registry;
use suu::bench::scenario::ScenarioSuite;
use suu::core::{workload, Precedence};
use suu::sim::{
    execute, Assignment, Decision, EngineKind, EvalConfig, Evaluator, ExecConfig, ExecOutcome,
    Policy, PolicySpec, RegistryError, Semantics, StateView,
};

/// Policies to race through the differential harness. Deliberately
/// mixed: pure-HOLD stationary policies (gang, greedy), a per-step
/// wake-up policy (round-robin), timetable policies with row-change
/// wake-ups (suu-i-obl, suu-i-sem) and the superstep machinery with
/// internal randomness (suu-c, suu-t).
const SPECS: &[&str] = &[
    "gang-sequential",
    "round-robin",
    "greedy-lr",
    "suu-i-obl",
    "suu-i-sem",
    "suu-c(seed=9)",
    "suu-t",
];

fn outcomes(
    inst: &Arc<suu::core::SuuInstance>,
    spec: &PolicySpec,
    semantics: Semantics,
    engine: EngineKind,
    trials: usize,
) -> Result<Vec<ExecOutcome>, RegistryError> {
    let registry = standard_registry();
    let evaluator = Evaluator::new(EvalConfig {
        trials,
        master_seed: 0xD1FF,
        threads: 0,
        exec: ExecConfig {
            semantics,
            engine,
            max_steps: 2_000_000,
        },
        ..EvalConfig::default()
    });
    Ok(evaluator.run_spec(&registry, inst, spec)?.outcomes)
}

#[test]
fn dense_and_event_engines_agree_on_every_scenario_family() {
    for sc in ScenarioSuite::standard(42).scenarios {
        let inst = sc.instantiate();
        for spec_text in SPECS {
            let spec = PolicySpec::parse(spec_text).unwrap();
            for semantics in [Semantics::Suu, Semantics::SuuStar] {
                let dense = match outcomes(&inst, &spec, semantics, EngineKind::Dense, 6) {
                    Ok(o) => o,
                    // Capability mismatch (e.g. suu-i-sem on chains):
                    // skipping is the registry's job, not this test's.
                    Err(RegistryError::UnsupportedStructure { .. }) => continue,
                    Err(e) => panic!("{}/{spec_text}: {e}", sc.id),
                };
                let events = outcomes(&inst, &spec, semantics, EngineKind::Events, 6).unwrap();
                assert_eq!(
                    dense, events,
                    "engines diverge on {}/{spec_text}/{semantics:?}",
                    sc.id
                );
                for o in &events {
                    assert!(o.completed, "{}/{spec_text} hit the step cap", sc.id);
                    assert_eq!(
                        o.busy_steps + o.idle_steps + o.ineligible_assignments,
                        sc.m as u64 * o.makespan,
                        "accounting leak on {}/{spec_text}",
                        sc.id
                    );
                }
            }
        }
    }
}

/// The batched engine must reproduce the per-trial event engine bitwise
/// for **every** standard scenario family (including the layered /
/// bimodal / hetero-pareto additions) × every registry policy that can
/// run there × both semantics. Stationary policies (gang, best-machine,
/// greedy-lr, exact-opt) take the shared-decision SoA fast path; the
/// rest exercise the per-trial fallback — both must be invisible in the
/// outcomes.
#[test]
fn batched_engine_matches_per_trial_engine_on_every_scenario_family() {
    let registry = standard_registry();
    for sc in ScenarioSuite::standard(42).scenarios {
        let inst = sc.instantiate();
        for name in registry.names() {
            let spec = PolicySpec::new(name);
            for semantics in [Semantics::Suu, Semantics::SuuStar] {
                let evaluator = Evaluator::new(EvalConfig {
                    trials: 6,
                    master_seed: 0xBA7C4,
                    threads: 0,
                    batch: 4, // force multiple chunks per run
                    exec: ExecConfig {
                        semantics,
                        engine: EngineKind::Events,
                        max_steps: 2_000_000,
                    },
                });
                let per_trial = match evaluator.run_spec(&registry, &inst, &spec) {
                    Ok(report) => report,
                    // Capability mismatches and size limits (exact-opt on
                    // 20+ jobs) are the registry's business, not this
                    // test's.
                    Err(RegistryError::UnsupportedStructure { .. }) => continue,
                    Err(RegistryError::BuildFailed { .. }) => continue,
                    Err(e) => panic!("{}/{name}: {e}", sc.id),
                };
                let batched = evaluator.run_batched_spec(&registry, &inst, &spec).unwrap();
                assert_eq!(
                    per_trial.outcomes, batched.outcomes,
                    "batched engine diverges on {}/{name}/{semantics:?}",
                    sc.id
                );
                // The streaming path folds the same outcomes, so its
                // moments must equal the collected report's bitwise.
                let stats = evaluator.run_stats_spec(&registry, &inst, &spec).unwrap();
                let collected = per_trial.to_stats();
                assert_eq!(
                    stats.summary().unwrap().mean.to_bits(),
                    collected.summary().unwrap().mean.to_bits(),
                    "streaming stats diverge on {}/{name}/{semantics:?}",
                    sc.id
                );
            }
        }
    }
}

/// `exact-opt` is the one stationary policy the suite-wide batched test
/// cannot reach (its MDP limit is 14 jobs; the smallest standard family
/// has 18), yet `fig_opt_small` runs it through the stationary
/// shared-decision fast path in production — so pin it here on instances
/// it accepts, across structure classes and both semantics.
#[test]
fn batched_engine_matches_per_trial_engine_for_exact_opt() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let registry = standard_registry();
    let spec = PolicySpec::new("exact-opt");
    let mut rng = SmallRng::seed_from_u64(0x0707);
    let independent = Arc::new(workload::uniform_unrelated(
        3,
        6,
        0.2,
        0.9,
        Precedence::Independent,
        &mut rng,
    ));
    let dag = suu::dag::Dag::from_edges(5, &[(0, 2), (1, 2), (2, 4), (3, 4)]);
    let dagged = Arc::new(workload::uniform_unrelated(
        2,
        5,
        0.3,
        0.9,
        Precedence::Dag(dag),
        &mut rng,
    ));
    for inst in [&independent, &dagged] {
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            let evaluator = Evaluator::new(EvalConfig {
                trials: 12,
                master_seed: 0x0707,
                threads: 0,
                batch: 5,
                exec: ExecConfig {
                    semantics,
                    engine: EngineKind::Events,
                    max_steps: 2_000_000,
                },
            });
            let per_trial = evaluator.run_spec(&registry, inst, &spec).unwrap();
            let batched = evaluator.run_batched_spec(&registry, inst, &spec).unwrap();
            assert_eq!(
                per_trial.outcomes, batched.outcomes,
                "exact-opt diverges batched ({semantics:?})"
            );
        }
    }
}

/// Eligible-set spread policy used by the random sweep (stationary).
struct Spread;
impl Policy for Spread {
    fn name(&self) -> &str {
        "spread"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        let eligible: Vec<u32> = view.eligible.iter().collect();
        if !eligible.is_empty() {
            for i in 0..view.m {
                out.set(i, suu::core::JobId(eligible[i % eligible.len()]));
            }
        }
        Decision::HOLD
    }
}

/// Rotates machines over eligible jobs every step (per-step wake-ups).
struct Rotate;
impl Policy for Rotate {
    fn name(&self) -> &str {
        "rotate"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        let eligible: Vec<u32> = view.eligible.iter().collect();
        if !eligible.is_empty() {
            for i in 0..view.m {
                let idx = (i as u64 + view.time) as usize % eligible.len();
                out.set(i, suu::core::JobId(eligible[idx]));
            }
        }
        Decision::step(view)
    }
}

/// Satellite of the profile-guided batch-engine rebuild: the wide
/// sampling kernels the batched engine runs per plan group must be
/// **bitwise** the scalar samplers, lane for lane — including at the
/// numeric edges the standard suite's instances never reach: `u → 1`
/// boundaries, `mass → 0` through the denormal range, `mass = ∞`, and
/// denormal / infinite SUU\* thresholds.
#[test]
fn wide_sampling_kernels_match_scalar_on_edge_inputs() {
    use suu::sim::engine::sampling::{
        geometric_steps, star_steps, star_steps_wide, GeomSegment, LANES, NEVER,
    };

    // SUU (geometric inversion). Denormal masses underflow the per-step
    // failure probability to exactly 1.0 (no progress → NEVER); huge
    // masses overflow it to 0.0 (certain completion in one step).
    const MASSES: [f64; 10] = [
        5e-324,
        1e-320,
        1e-17,
        1e-3,
        0.5,
        1.0,
        64.0,
        1024.0,
        1e308,
        f64::INFINITY,
    ];
    const US: [f64; 7] = [0.0, 5e-324, 1e-16, 0.25, 0.5, 0.875, 1.0 - 1e-16];
    for mass in MASSES {
        let seg = GeomSegment::new(mass);
        for rot in 0..US.len() {
            // Rotate the u list through the lanes so every (mass, u)
            // pair appears in every lane position.
            let us: [f64; LANES] = core::array::from_fn(|l| US[(l + rot) % US.len()]);
            let mut wide = [0u64; LANES];
            seg.steps_wide(&us, &mut wide);
            for l in 0..LANES {
                assert_eq!(wide[l], seg.steps(us[l]), "geom mass {mass} u {}", us[l]);
                assert_eq!(
                    wide[l],
                    geometric_steps(us[l], mass),
                    "free fn diverges, mass {mass} u {}",
                    us[l]
                );
            }
        }
    }
    assert_eq!(
        geometric_steps(0.5, 5e-324),
        NEVER,
        "denormal mass must sample as 'never completes'"
    );
    assert_eq!(
        geometric_steps(0.5, f64::INFINITY),
        1,
        "infinite mass must complete in one step"
    );
    let near_one = geometric_steps(1.0 - 1e-16, 1e-3);
    assert!(
        near_one > 1_000 && near_one < NEVER,
        "u → 1 with small mass must stay finite: {near_one}"
    );

    // SUU* (threshold crossing). A denormal threshold is crossed on the
    // first step by any ordinary mass; a denormal mass (or an infinite
    // threshold, the r = 0 draw) never crosses — and must return NEVER
    // fast instead of crawling the fix-up loop there.
    const BASES: [f64; 5] = [0.0, 0.37, 1.0, 1e6, 1e16];
    const THRESHOLDS: [f64; 7] = [5e-324, 1e-310, 1e-3, 1.0, 64.0, 1e6, f64::INFINITY];
    const STAR_MASSES: [f64; 6] = [5e-324, 1e-320, 1e-3, 0.5, 64.0, f64::INFINITY];
    for mass in STAR_MASSES {
        for rot in 0..(BASES.len() * THRESHOLDS.len()) {
            let bases: [f64; LANES] = core::array::from_fn(|l| BASES[(l + rot) % BASES.len()]);
            let thresholds: [f64; LANES] =
                core::array::from_fn(|l| THRESHOLDS[(l + rot / BASES.len()) % THRESHOLDS.len()]);
            let mut wide = [0u64; LANES];
            star_steps_wide(&bases, &thresholds, mass, &mut wide);
            for l in 0..LANES {
                assert_eq!(
                    wide[l],
                    star_steps(bases[l], thresholds[l], mass),
                    "star mass {mass} base {} threshold {}",
                    bases[l],
                    thresholds[l]
                );
            }
        }
    }
    assert_eq!(star_steps(0.0, 5e-324, 0.5), 1);
    assert_eq!(star_steps(0.0, 1e-310, 64.0), 1);
    assert_eq!(star_steps(0.0, 1.0, 5e-324), NEVER);
    assert_eq!(star_steps(0.37, f64::INFINITY, 64.0), NEVER);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random instances, random seeds, both semantics, both policies:
    /// the engines must agree bitwise and the accounting must partition.
    #[test]
    fn engines_agree_on_random_instances(
        gen_seed in 0u64..1_000_000,
        trial_seed in 0u64..1_000_000,
        m in 1usize..5,
        n in 1usize..10,
        q_lo in 0.05f64..0.6,
        spread in 0.1f64..0.39,
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let inst = workload::uniform_unrelated(
            m, n, q_lo, q_lo + spread, Precedence::Independent, &mut rng,
        );
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            for which in 0..2 {
                let run = |engine| {
                    let cfg = ExecConfig { semantics, engine, max_steps: 500_000 };
                    if which == 0 {
                        execute(&inst, &mut Spread, &cfg, trial_seed)
                    } else {
                        execute(&inst, &mut Rotate, &cfg, trial_seed)
                    }
                };
                let dense = run(EngineKind::Dense);
                let events = run(EngineKind::Events);
                prop_assert_eq!(&dense, &events);
                prop_assert_eq!(
                    events.busy_steps + events.idle_steps + events.ineligible_assignments,
                    m as u64 * events.makespan
                );
            }
        }
    }

    /// The batch engine's decision cache is a `WordMap` keyed on the raw
    /// `u64` words of the remaining-set bitset (FNV-1a over words,
    /// open-addressed, no `BitSet` clone on hit). Oracle differential:
    /// driven by a random walk of get/insert over random remaining sets,
    /// it must behave exactly like `HashMap<BitSet, u32>` — same hits,
    /// same misses, same final size, every entry retrievable by words.
    #[test]
    fn word_keyed_cache_matches_bitset_hashmap_oracle(
        seed in 0u64..1_000_000,
        capacity in 1usize..200, // crosses 1-, 2- and 3-word keys
        ops in 8u32..160,
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use std::collections::HashMap;
        use suu::core::{BitSet, WordMap};

        let mut rng = SmallRng::seed_from_u64(seed);
        let mut map: WordMap<u32> = WordMap::new(capacity.div_ceil(64));
        let mut oracle: HashMap<BitSet, u32> = HashMap::new();
        let mut current = BitSet::new(capacity);
        for op in 0..ops {
            // Random walk over remaining sets: flip a few bits, with an
            // occasional jump back to the empty set so keys repeat.
            if rng.random_bool(0.05) {
                current.clear();
            }
            for _ in 0..rng.random_range(0usize..4) {
                let v = rng.random_range(0..capacity as u32);
                if !current.insert(v) {
                    current.remove(v);
                }
            }
            let got = map.get(current.words()).copied();
            let want = oracle.get(&current).copied();
            prop_assert_eq!(got, want);
            if want.is_none() {
                prop_assert_eq!(map.insert(current.words(), op), None);
                oracle.insert(current.clone(), op);
            }
        }
        prop_assert_eq!(map.len(), oracle.len());
        for (bits, id) in &oracle {
            prop_assert_eq!(map.get(bits.words()).copied(), Some(*id));
        }
    }
}
