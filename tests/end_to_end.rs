//! End-to-end integration: every algorithm family × workload family ×
//! semantics completes, respects precedence, and never undercuts the
//! instance's lower bound by more than sampling noise.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu::algos::baselines::{BestMachinePolicy, GangSequentialPolicy, LrGreedyPolicy, RoundRobinPolicy};
use suu::algos::bounds::lower_bound;
use suu::algos::{ChainConfig, ChainPolicy, ForestPolicy, OblPolicy, SemPolicy};
use suu::core::{workload, Precedence, SuuInstance};
use suu::dag::generators;
use suu::sim::{run_trials, ExecConfig, MonteCarloConfig, Semantics};

fn mc(trials: usize, semantics: Semantics) -> MonteCarloConfig {
    MonteCarloConfig {
        trials,
        base_seed: 0xE2E,
        threads: 0,
        exec: ExecConfig {
            semantics,
            max_steps: 2_000_000,
        },
    }
}

fn mean(outcomes: &[suu::sim::engine::ExecOutcome]) -> f64 {
    assert!(
        outcomes.iter().all(|o| o.completed),
        "a trial failed to complete"
    );
    assert!(
        outcomes.iter().all(|o| o.ineligible_assignments == 0),
        "a schedule violated precedence"
    );
    outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / outcomes.len() as f64
}

fn workloads(seed: u64, m: usize, n: usize, prec: Precedence) -> Vec<(&'static str, SuuInstance)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    vec![
        (
            "uniform",
            workload::uniform_unrelated(m, n, 0.2, 0.9, prec.clone(), &mut rng),
        ),
        (
            "bimodal",
            workload::volunteer_grid(m, n, 0.4, 0.15, 0.9, prec.clone(), &mut rng),
        ),
        (
            "related",
            workload::reliability_difficulty(m, n, (0.4, 0.95), (0.05, 0.6), prec, &mut rng),
        ),
    ]
}

#[test]
fn independent_matrix_all_policies_all_semantics() {
    for (name, inst) in workloads(1, 4, 10, Precedence::Independent) {
        let inst = Arc::new(inst);
        let lb = lower_bound(&inst).unwrap();
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            let cfg = mc(15, semantics);
            let means = [
                mean(&run_trials(&inst, GangSequentialPolicy::new, &cfg)),
                mean(&run_trials(&inst, RoundRobinPolicy::new, &cfg)),
                mean(&run_trials(&inst, || BestMachinePolicy::new(inst.clone()), &cfg)),
                mean(&run_trials(&inst, || LrGreedyPolicy::new(inst.clone()), &cfg)),
                mean(&run_trials(&inst, || OblPolicy::build(&inst).unwrap(), &cfg)),
                mean(&run_trials(&inst, || SemPolicy::build(inst.clone()).unwrap(), &cfg)),
            ];
            for m in means {
                assert!(
                    m >= lb - 1.0,
                    "{name}/{semantics:?}: mean {m:.2} under LB {lb:.2}"
                );
            }
        }
    }
}

#[test]
fn chains_matrix() {
    let mut rng = SmallRng::seed_from_u64(2);
    let cs = generators::random_chain_set(12, 4, &mut rng);
    let chains = cs.chains().to_vec();
    for (name, inst) in workloads(3, 3, 12, Precedence::Chains(cs)) {
        let inst = Arc::new(inst);
        let lb = lower_bound(&inst).unwrap();
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            let cfg = mc(10, semantics);
            let suu_c = mean(&run_trials(
                &inst,
                || ChainPolicy::build(inst.clone(), chains.clone(), ChainConfig::default()).unwrap(),
                &cfg,
            ));
            let gang = mean(&run_trials(&inst, GangSequentialPolicy::new, &cfg));
            assert!(suu_c >= lb - 1.0, "{name}: SUU-C {suu_c:.2} under LB {lb:.2}");
            assert!(gang >= lb - 1.0);
        }
    }
}

#[test]
fn forests_matrix() {
    let mut rng = SmallRng::seed_from_u64(4);
    for out in [true, false] {
        let forest = if out {
            generators::random_out_forest(14, 2, &mut rng)
        } else {
            generators::random_in_forest(14, 2, &mut rng)
        };
        for (name, inst) in workloads(5, 3, 14, Precedence::Forest(forest.clone())) {
            let inst = Arc::new(inst);
            let cfg = mc(8, Semantics::SuuStar);
            let suu_t = mean(&run_trials(
                &inst,
                || ForestPolicy::build(inst.clone(), &forest, ChainConfig::default()).unwrap(),
                &cfg,
            ));
            assert!(suu_t >= 1.0, "{name}: degenerate makespan");
        }
    }
}

#[test]
fn general_dags_run_under_baselines() {
    // No approximation algorithm covers general DAGs (paper's conclusion);
    // the engine and baselines must still handle them.
    let mut rng = SmallRng::seed_from_u64(6);
    let dag = generators::layered_dag(15, 4, 0.3, &mut rng);
    let inst = Arc::new(workload::uniform_unrelated(
        3,
        15,
        0.2,
        0.9,
        Precedence::Dag(dag),
        &mut rng,
    ));
    let cfg = mc(10, Semantics::SuuStar);
    mean(&run_trials(&inst, GangSequentialPolicy::new, &cfg));
    mean(&run_trials(&inst, RoundRobinPolicy::new, &cfg));
    mean(&run_trials(&inst, || LrGreedyPolicy::new(inst.clone()), &cfg));
}

#[test]
fn mapreduce_bipartite_via_two_phases() {
    let (maps, reduces) = (8usize, 4usize);
    let n = maps + reduces;
    let dag = generators::mapreduce_bipartite(maps, reduces);
    let mut rng = SmallRng::seed_from_u64(7);
    let inst = Arc::new(workload::uniform_unrelated(
        4,
        n,
        0.3,
        0.85,
        Precedence::Dag(dag),
        &mut rng,
    ));
    // Phase policies via SemPolicy job subsets.
    struct TwoPhase {
        a: SemPolicy,
        b: SemPolicy,
    }
    impl suu::sim::Policy for TwoPhase {
        fn name(&self) -> &str {
            "two-phase"
        }
        fn reset(&mut self) {
            self.a.reset();
            self.b.reset();
        }
        fn assign(&mut self, view: &suu::sim::StateView<'_>) -> Vec<Option<suu::core::JobId>> {
            if !self.a.is_done(view.remaining) {
                self.a.assign(view)
            } else {
                self.b.assign(view)
            }
        }
    }
    let cfg = mc(10, Semantics::SuuStar);
    let outcomes = run_trials(
        &inst,
        || TwoPhase {
            a: SemPolicy::for_jobs(inst.clone(), Some((0..maps as u32).collect())).unwrap(),
            b: SemPolicy::for_jobs(inst.clone(), Some((maps as u32..n as u32).collect())).unwrap(),
        },
        &cfg,
    );
    let m = mean(&outcomes);
    assert!(m >= 2.0, "two phases cannot finish in under 2 steps");
}
