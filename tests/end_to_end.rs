//! End-to-end integration: every algorithm family × workload family ×
//! semantics completes, respects precedence, and never undercuts the
//! instance's lower bound by more than sampling noise — all constructed
//! by name through the policy registry and executed by the parallel
//! evaluator.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu::algos::bounds::lower_bound;
use suu::algos::{standard_registry, SemPolicy};
use suu::core::{workload, Precedence, SuuInstance};
use suu::dag::generators;
use suu::sim::{EvalConfig, EvalReport, Evaluator, ExecConfig, PolicySpec, Semantics};

fn evaluator(trials: usize, semantics: Semantics) -> Evaluator {
    Evaluator::new(EvalConfig {
        trials,
        master_seed: 0xE2E,
        threads: 0,
        exec: ExecConfig {
            semantics,
            max_steps: 2_000_000,
            ..ExecConfig::default()
        },
        ..EvalConfig::default()
    })
}

/// Mean makespan with the standing sanity assertions: everything
/// completed, nothing violated precedence.
fn checked_mean(report: &EvalReport) -> f64 {
    assert!(
        report.all_completed(),
        "{}: a trial failed to complete",
        report.policy
    );
    assert_eq!(
        report.total_ineligible(),
        0,
        "{}: a schedule violated precedence",
        report.policy
    );
    report.mean_makespan()
}

fn workloads(seed: u64, m: usize, n: usize, prec: Precedence) -> Vec<(&'static str, SuuInstance)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    vec![
        (
            "uniform",
            workload::uniform_unrelated(m, n, 0.2, 0.9, prec.clone(), &mut rng),
        ),
        (
            "bimodal",
            workload::volunteer_grid(m, n, 0.4, 0.15, 0.9, prec.clone(), &mut rng),
        ),
        (
            "related",
            workload::reliability_difficulty(m, n, (0.4, 0.95), (0.05, 0.6), prec, &mut rng),
        ),
    ]
}

#[test]
fn independent_matrix_all_policies_all_semantics() {
    let registry = standard_registry();
    let specs = [
        "gang-sequential",
        "round-robin",
        "best-machine",
        "greedy-lr",
        "suu-i-obl",
        "suu-i-sem",
    ];
    for (name, inst) in workloads(1, 4, 10, Precedence::Independent) {
        let inst = Arc::new(inst);
        let lb = lower_bound(&inst).unwrap();
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            let eval = evaluator(15, semantics);
            for spec in specs {
                let report = eval
                    .run_spec(&registry, &inst, &PolicySpec::new(spec))
                    .unwrap_or_else(|e| panic!("{spec}: {e}"));
                let mean = checked_mean(&report);
                assert!(
                    mean >= lb - 1.0,
                    "{name}/{semantics:?}/{spec}: mean {mean:.2} under LB {lb:.2}"
                );
            }
        }
    }
}

#[test]
fn chains_matrix() {
    let registry = standard_registry();
    let mut rng = SmallRng::seed_from_u64(2);
    let cs = generators::random_chain_set(12, 4, &mut rng);
    for (name, inst) in workloads(3, 3, 12, Precedence::Chains(cs)) {
        let inst = Arc::new(inst);
        let lb = lower_bound(&inst).unwrap();
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            let eval = evaluator(10, semantics);
            let suu_c = checked_mean(
                &eval
                    .run_spec(&registry, &inst, &PolicySpec::new("suu-c"))
                    .unwrap(),
            );
            let gang = checked_mean(
                &eval
                    .run_spec(&registry, &inst, &PolicySpec::new("gang-sequential"))
                    .unwrap(),
            );
            assert!(
                suu_c >= lb - 1.0,
                "{name}: SUU-C {suu_c:.2} under LB {lb:.2}"
            );
            assert!(gang >= lb - 1.0);
        }
    }
}

#[test]
fn forests_matrix() {
    let registry = standard_registry();
    let mut rng = SmallRng::seed_from_u64(4);
    for out in [true, false] {
        let forest = if out {
            generators::random_out_forest(14, 2, &mut rng)
        } else {
            generators::random_in_forest(14, 2, &mut rng)
        };
        for (name, inst) in workloads(5, 3, 14, Precedence::Forest(forest.clone())) {
            let inst = Arc::new(inst);
            let eval = evaluator(8, Semantics::SuuStar);
            let suu_t = checked_mean(
                &eval
                    .run_spec(&registry, &inst, &PolicySpec::new("suu-t"))
                    .unwrap(),
            );
            assert!(suu_t >= 1.0, "{name}: degenerate makespan");
        }
    }
}

#[test]
fn general_dags_run_under_baselines() {
    // No approximation algorithm covers general DAGs (paper's conclusion);
    // the engine and the dag-capable registry families must still handle
    // them — and the structure-specialized families must refuse.
    let registry = standard_registry();
    let mut rng = SmallRng::seed_from_u64(6);
    let dag = generators::layered_dag(15, 4, 0.3, &mut rng);
    let inst = Arc::new(workload::uniform_unrelated(
        3,
        15,
        0.2,
        0.9,
        Precedence::Dag(dag),
        &mut rng,
    ));
    let eval = evaluator(10, Semantics::SuuStar);
    for spec in ["gang-sequential", "round-robin", "greedy-lr"] {
        checked_mean(
            &eval
                .run_spec(&registry, &inst, &PolicySpec::new(spec))
                .unwrap(),
        );
    }
    for spec in ["suu-i-sem", "suu-c", "suu-t"] {
        assert!(
            eval.run_spec(&registry, &inst, &PolicySpec::new(spec))
                .is_err(),
            "{spec} must refuse general DAGs"
        );
    }
}

#[test]
fn mapreduce_bipartite_via_two_phases() {
    let (maps, reduces) = (8usize, 4usize);
    let n = maps + reduces;
    let dag = generators::mapreduce_bipartite(maps, reduces);
    let mut rng = SmallRng::seed_from_u64(7);
    let inst = Arc::new(workload::uniform_unrelated(
        4,
        n,
        0.3,
        0.85,
        Precedence::Dag(dag),
        &mut rng,
    ));
    // Phase policies via SemPolicy job subsets (custom policy through the
    // plain evaluator API — no registry needed).
    struct TwoPhase {
        a: SemPolicy,
        b: SemPolicy,
    }
    impl suu::sim::Policy for TwoPhase {
        fn name(&self) -> &str {
            "two-phase"
        }
        fn reset(&mut self) {
            self.a.reset();
            self.b.reset();
        }
        fn decide(
            &mut self,
            view: &suu::sim::StateView<'_>,
            out: &mut suu::sim::Assignment,
        ) -> suu::sim::Decision {
            // The phase switch happens at a completion event, so the
            // engine is guaranteed to consult us then.
            if !self.a.is_done(view.remaining) {
                self.a.decide(view, out)
            } else {
                self.b.decide(view, out)
            }
        }
    }
    let report = evaluator(10, Semantics::SuuStar).run(&inst, || TwoPhase {
        a: SemPolicy::for_jobs(inst.clone(), Some((0..maps as u32).collect())).unwrap(),
        b: SemPolicy::for_jobs(inst.clone(), Some((maps as u32..n as u32).collect())).unwrap(),
    });
    let m = checked_mean(&report);
    assert!(m >= 2.0, "two phases cannot finish in under 2 steps");
}
