//! Integration tests for the adaptive-precision subsystem: resumable
//! cells (extending `n → n+k` is bitwise identical to a fresh `n+k` run
//! — moments *and* P² sketch state — across thread counts and both
//! engines), deterministic sequential stopping, checkpoint round-trips,
//! and paired CRN comparisons.

use suu::algos::standard_registry;
use suu::bench::scenario::Scenario;
use suu::sim::{EngineKind, EvalConfig, EvalStats, Evaluator, ExecConfig, PolicySpec, Precision};

fn evaluator(trials: usize, threads: usize, engine: EngineKind) -> Evaluator {
    Evaluator::new(EvalConfig {
        trials,
        master_seed: 0xAB5E,
        threads,
        batch: 32, // several chunks even at small trial counts
        exec: ExecConfig {
            engine,
            ..ExecConfig::default()
        },
    })
}

/// Resume determinism: run `base` trials, extend to `total`, and compare
/// the complete accumulator state (JSON snapshot: Welford words, exact
/// sample, sketch markers, counters) against a fresh `total`-trial run.
fn assert_resume_bitwise(spec: &str, sc: &Scenario, base: usize, total: usize) {
    let registry = standard_registry();
    let inst = sc.instantiate();
    let spec = PolicySpec::parse(spec).unwrap();
    for engine in [EngineKind::Events, EngineKind::Dense] {
        for threads in [1usize, 2, 3] {
            let fresh = evaluator(total, threads, engine)
                .run_stats_spec(&registry, &inst, &spec)
                .unwrap();
            let mut resumed = evaluator(base, threads, engine)
                .run_stats_spec(&registry, &inst, &spec)
                .unwrap();
            evaluator(total, threads, engine)
                .extend_stats_spec(&registry, &inst, &spec, &mut resumed, total)
                .unwrap();
            assert_eq!(resumed.trials(), total as u64);
            assert_eq!(
                resumed.acc.to_json().to_compact(),
                fresh.acc.to_json().to_compact(),
                "{spec}: resume {base}→{total} diverged from fresh run \
                 (engine {engine:?}, {threads} threads)"
            );
        }
    }
}

#[test]
fn extend_is_bitwise_identical_to_fresh_run() {
    // greedy-lr: stationary, takes the batched SoA fast path under
    // Events and the per-trial fallback under Dense.
    assert_resume_bitwise("greedy-lr", &Scenario::uniform(3, 8, 0.3, 0.9, 5), 25, 60);
    // suu-c: internal policy randomness (Theorem-7 delays) pinned per
    // trial index via reseed; chains structure.
    assert_resume_bitwise("suu-c", &Scenario::chains(3, 9, 3, 77), 10, 31);
}

#[test]
fn extend_is_bitwise_identical_past_the_sketch_cap() {
    // 600 trials outgrow the 512-sample exact cap, so this proves the
    // *sketch state* (order-sensitive P² markers) resumes bitwise too —
    // with the cap crossing happening inside the extension.
    let registry = standard_registry();
    let sc = Scenario::uniform(2, 5, 0.4, 0.9, 11);
    let inst = sc.instantiate();
    let spec = PolicySpec::new("best-machine");
    let fresh = evaluator(600, 2, EngineKind::Events)
        .run_stats_spec(&registry, &inst, &spec)
        .unwrap();
    assert!(!fresh.acc.exact_quantiles(), "cap must be crossed");
    let mut resumed = evaluator(300, 3, EngineKind::Events)
        .run_stats_spec(&registry, &inst, &spec)
        .unwrap();
    evaluator(600, 1, EngineKind::Events)
        .extend_stats_spec(&registry, &inst, &spec, &mut resumed, 600)
        .unwrap();
    assert_eq!(
        resumed.acc.to_json().to_compact(),
        fresh.acc.to_json().to_compact()
    );
    let (r, f) = (resumed.summary().unwrap(), fresh.summary().unwrap());
    assert_eq!(r.mean.to_bits(), f.mean.to_bits());
    assert_eq!(r.median.to_bits(), f.median.to_bits());
    assert_eq!(r.p95.to_bits(), f.p95.to_bits());
    assert_eq!(r.ci95.to_bits(), f.ci95.to_bits());
}

#[test]
fn checkpoint_roundtrip_then_extend_matches_fresh() {
    // Serialize a partial cell to JSON (as a crash-safe checkpoint
    // would), restore it, extend, and compare to an uninterrupted run.
    let registry = standard_registry();
    let sc = Scenario::uniform(3, 7, 0.2, 0.9, 13);
    let inst = sc.instantiate();
    let spec = PolicySpec::new("greedy-lr");
    let partial = evaluator(20, 1, EngineKind::Events)
        .run_stats_spec(&registry, &inst, &spec)
        .unwrap();
    let wire = partial.to_json().to_pretty();
    let mut restored = EvalStats::from_json(&suu::core::json::parse(&wire).unwrap()).unwrap();
    assert_eq!(restored.trials(), 20);
    assert_eq!(restored.policy, partial.policy);
    evaluator(50, 2, EngineKind::Events)
        .extend_stats_spec(&registry, &inst, &spec, &mut restored, 50)
        .unwrap();
    let fresh = evaluator(50, 1, EngineKind::Events)
        .run_stats_spec(&registry, &inst, &spec)
        .unwrap();
    assert_eq!(
        restored.acc.to_json().to_compact(),
        fresh.acc.to_json().to_compact()
    );
}

#[test]
fn adaptive_stopping_is_deterministic_across_thread_counts() {
    let registry = standard_registry();
    let sc = Scenario::bimodal(3, 8, 0.6, 31);
    let inst = sc.instantiate();
    let spec = PolicySpec::new("greedy-lr");
    let rule = Precision::TargetCi {
        half_width: 0.05,
        relative: true,
        min_trials: 8,
        max_trials: 200,
    };
    let reference = evaluator(0, 1, EngineKind::Events)
        .run_adaptive_spec(&registry, &inst, &spec, rule)
        .unwrap();
    assert!(reference.trials_used() >= 8);
    assert_eq!(
        reference.trials_used(),
        reference.stats.config.trials as u64
    );
    for threads in [2usize, 4] {
        let other = evaluator(0, threads, EngineKind::Events)
            .run_adaptive_spec(&registry, &inst, &spec, rule)
            .unwrap();
        assert_eq!(other.trials_used(), reference.trials_used());
        assert_eq!(other.stop_reason, reference.stop_reason);
        assert_eq!(
            other.stats.acc.to_json().to_compact(),
            reference.stats.acc.to_json().to_compact(),
            "adaptive stopping diverged at {threads} threads"
        );
    }
}

#[test]
fn resume_adaptive_matches_cold_run_at_tighter_precision() {
    // The serve daemon's cache-extend path: a cell stopped under a loose
    // CI target is resumed under a tighter one. Because the round
    // schedule is a pure function of the trial count (anchored at the
    // rule's min_trials), the resumed cell must stop at *exactly* the
    // trial count a cold run at the tighter target stops at, with a
    // bitwise-identical accumulator (moments and P² sketch state).
    let registry = standard_registry();
    let sc = Scenario::bimodal(3, 8, 0.6, 31);
    let inst = sc.instantiate();
    let spec = PolicySpec::new("greedy-lr");
    let rule = |half_width: f64| Precision::TargetCi {
        half_width,
        relative: true,
        min_trials: 8,
        max_trials: 400,
    };
    let loose = evaluator(0, 1, EngineKind::Events)
        .run_adaptive_spec(&registry, &inst, &spec, rule(0.10))
        .unwrap();
    let cold = evaluator(0, 2, EngineKind::Events)
        .run_adaptive_spec(&registry, &inst, &spec, rule(0.03))
        .unwrap();
    assert!(
        cold.trials_used() > loose.trials_used(),
        "tighter target must need more trials ({} vs {})",
        cold.trials_used(),
        loose.trials_used()
    );
    // Round-trip the loose cell through its JSON checkpoint first, as
    // the daemon's on-disk cache does.
    let wire = loose.stats.to_json().to_compact();
    let restored = EvalStats::from_json(&suu::core::json::parse(&wire).unwrap()).unwrap();
    let resumed = evaluator(0, 3, EngineKind::Events)
        .resume_adaptive_spec(&registry, &inst, &spec, restored, rule(0.03))
        .unwrap();
    assert_eq!(resumed.trials_used(), cold.trials_used());
    assert_eq!(resumed.stop_reason, cold.stop_reason);
    assert_eq!(
        resumed.stats.acc.to_json().to_compact(),
        cold.stats.acc.to_json().to_compact(),
        "resumed cell diverged from the cold tighter-precision run"
    );
    // A target the cell already satisfies adds no trials and returns the
    // accumulator untouched.
    let before = resumed.stats.acc.to_json().to_compact();
    let rerun = evaluator(0, 1, EngineKind::Events)
        .resume_adaptive_spec(&registry, &inst, &spec, resumed.stats, rule(0.10))
        .unwrap();
    assert_eq!(rerun.trials_used(), cold.trials_used());
    assert_eq!(rerun.stats.acc.to_json().to_compact(), before);
}

#[test]
fn resume_adaptive_under_fixed_budget_matches_plain_extension() {
    // FixedTrials(n) through resume_adaptive is exactly extend_stats to
    // n — the daemon uses one code path for both request shapes.
    let registry = standard_registry();
    let sc = Scenario::uniform(3, 8, 0.3, 0.9, 17);
    let inst = sc.instantiate();
    let spec = PolicySpec::new("gang-sequential");
    let base = evaluator(12, 1, EngineKind::Events)
        .run_stats_spec(&registry, &inst, &spec)
        .unwrap();
    let resumed = evaluator(12, 1, EngineKind::Events)
        .resume_adaptive_spec(&registry, &inst, &spec, base, Precision::FixedTrials(40))
        .unwrap();
    let fresh = evaluator(40, 2, EngineKind::Events)
        .run_stats_spec(&registry, &inst, &spec)
        .unwrap();
    assert_eq!(resumed.trials_used(), 40);
    assert_eq!(resumed.stop_reason, suu::sim::StopReason::FixedBudget);
    assert_eq!(
        resumed.stats.acc.to_json().to_compact(),
        fresh.acc.to_json().to_compact()
    );
}

#[test]
fn fixed_precision_matches_run_stats() {
    // FixedTrials(n) through the adaptive path is the plain streaming
    // run plus a stop reason.
    let registry = standard_registry();
    let sc = Scenario::uniform(3, 8, 0.3, 0.9, 17);
    let inst = sc.instantiate();
    let spec = PolicySpec::new("gang-sequential");
    let adaptive = evaluator(0, 2, EngineKind::Events)
        .run_adaptive_spec(&registry, &inst, &spec, Precision::FixedTrials(40))
        .unwrap();
    let plain = evaluator(40, 2, EngineKind::Events)
        .run_stats_spec(&registry, &inst, &spec)
        .unwrap();
    assert_eq!(adaptive.stop_reason, suu::sim::StopReason::FixedBudget);
    assert_eq!(
        adaptive.stats.acc.to_json().to_compact(),
        plain.acc.to_json().to_compact()
    );
}

#[test]
fn paired_crn_self_comparison_is_exactly_zero() {
    let registry = standard_registry();
    let sc = Scenario::uniform(3, 8, 0.3, 0.9, 23);
    let inst = sc.instantiate();
    let spec = PolicySpec::new("greedy-lr");
    let paired = evaluator(0, 1, EngineKind::Events)
        .run_paired_spec(&registry, &inst, &spec, &spec, Precision::FixedTrials(40))
        .unwrap();
    assert_eq!(paired.trials_used(), 40);
    assert_eq!(paired.delta_mean(), Some(0.0));
    assert_eq!(paired.delta_ci95(), Some(0.0));
    assert_eq!(paired.significant(), Some(false));
}

#[test]
fn paired_delta_mean_matches_marginal_means() {
    // Under CRN with a fixed budget, the mean of per-trial differences
    // equals the difference of the marginal cell means (same trial
    // seeds), up to float summation order.
    let registry = standard_registry();
    let sc = Scenario::uniform(3, 10, 0.2, 0.9, 29);
    let inst = sc.instantiate();
    let (a, b) = (
        PolicySpec::new("greedy-lr"),
        PolicySpec::new("gang-sequential"),
    );
    let eval = evaluator(60, 1, EngineKind::Events);
    let paired = eval
        .run_paired_spec(&registry, &inst, &a, &b, Precision::FixedTrials(60))
        .unwrap();
    let mean_a = eval
        .run_stats_spec(&registry, &inst, &a)
        .unwrap()
        .mean_makespan();
    let mean_b = eval
        .run_stats_spec(&registry, &inst, &b)
        .unwrap()
        .mean_makespan();
    let delta = paired.delta_mean().unwrap();
    assert!(
        (delta - (mean_a - mean_b)).abs() < 1e-9,
        "paired Δ {delta} vs marginal {}",
        mean_a - mean_b
    );
    // greedy-lr beats gang-sequential on average here; under CRN the
    // difference should be sharply significant at 60 pairs.
    assert_eq!(paired.significant(), Some(true));
    assert!(delta < 0.0, "greedy-lr should be faster, Δ = {delta}");
}

#[test]
fn paired_crn_variance_is_smaller_than_marginal_variance() {
    // The point of CRN: Var(A − B) under shared seeds should undercut
    // Var(A) + Var(B) (independent-sampling variance of the difference).
    let registry = standard_registry();
    let sc = Scenario::uniform(4, 12, 0.2, 0.9, 37);
    let inst = sc.instantiate();
    let (a, b) = (
        PolicySpec::new("greedy-lr"),
        PolicySpec::new("best-machine"),
    );
    let eval = evaluator(120, 1, EngineKind::Events);
    let paired = eval
        .run_paired_spec(&registry, &inst, &a, &b, Precision::FixedTrials(120))
        .unwrap();
    let var_a = eval
        .run_stats_spec(&registry, &inst, &a)
        .unwrap()
        .summary()
        .unwrap()
        .std_dev
        .powi(2);
    let var_b = eval
        .run_stats_spec(&registry, &inst, &b)
        .unwrap()
        .summary()
        .unwrap()
        .std_dev
        .powi(2);
    let var_delta = paired.delta.deltas().variance().unwrap();
    assert!(
        var_delta < var_a + var_b,
        "CRN gained nothing: Var(Δ) = {var_delta}, Var(A)+Var(B) = {}",
        var_a + var_b
    );
}

#[test]
fn seed_collision_regression_correlates_old_streams() {
    // End-to-end spelling of the runner's seed-derivation fix: two
    // scenarios from different families sharing a `seed` constructor
    // parameter used to receive the same evaluation master seed, hence
    // identical per-trial engine streams. With the identity-mixed
    // derivation their streams differ.
    use suu::bench::runner::scenario_master_seed;
    let uniform = Scenario::uniform(3, 8, 0.2, 0.9, 7);
    let power = Scenario::power_law(3, 8, 0.5, 1.2, 7);
    assert_eq!(uniform.seed, power.seed);
    let old_u = suu::sim::derive_seed(0xBA5E, uniform.seed, 0xC311);
    let old_p = suu::sim::derive_seed(0xBA5E, power.seed, 0xC311);
    assert_eq!(old_u, old_p, "the old derivation collides (the bug)");
    assert_ne!(
        scenario_master_seed(0xBA5E, &uniform),
        scenario_master_seed(0xBA5E, &power)
    );

    // And the per-trial engine randomness is what the master seed keys,
    // so equal master seeds mean identical hidden thresholds per trial
    // index — the correlation the fix removes. Demonstrate the hazard on
    // the *same* instance evaluated under the colliding vs distinct
    // seeds.
    let registry = standard_registry();
    let inst = uniform.instantiate();
    let spec = PolicySpec::new("gang-sequential");
    let run = |master: u64| {
        Evaluator::new(EvalConfig {
            trials: 40,
            master_seed: master,
            threads: 1,
            ..EvalConfig::default()
        })
        .run_spec(&registry, &inst, &spec)
        .unwrap()
        .outcomes
        .iter()
        .map(|o| o.makespan)
        .collect::<Vec<u64>>()
    };
    assert_eq!(run(old_u), run(old_p), "colliding masters share streams");
    assert_ne!(
        run(scenario_master_seed(0xBA5E, &uniform)),
        run(scenario_master_seed(0xBA5E, &power)),
        "identity-mixed masters decorrelate"
    );
}

#[test]
fn accumulator_merge_matches_contiguous_run() {
    // Distributed-accumulation spelling: two shards of the same trial
    // range, folded shard-by-shard into a master accumulator, equal the
    // contiguous run bitwise.
    let registry = standard_registry();
    let sc = Scenario::uniform(3, 8, 0.3, 0.9, 41);
    let inst = sc.instantiate();
    let spec = PolicySpec::new("greedy-lr");
    let whole = evaluator(48, 1, EngineKind::Events)
        .run_stats_spec(&registry, &inst, &spec)
        .unwrap();
    let mut first = evaluator(16, 1, EngineKind::Events)
        .run_stats_spec(&registry, &inst, &spec)
        .unwrap();
    let mut second = evaluator(16, 2, EngineKind::Events)
        .run_stats_spec(&registry, &inst, &spec)
        .unwrap();
    evaluator(48, 2, EngineKind::Events)
        .extend_stats_spec(&registry, &inst, &spec, &mut second, 48)
        .unwrap();
    assert_eq!(
        second.acc.to_json().to_compact(),
        whole.acc.to_json().to_compact(),
        "extension across a different thread count diverged"
    );
    // Merge API end to end: fold `first` (trials 0..16, exact-retained)
    // into an empty accumulator, then extend the result to 48 — bitwise
    // the contiguous run.
    let mut merged = suu::sim::OutcomeAccumulator::new();
    merged.merge(&first.acc).unwrap();
    assert_eq!(
        merged.to_json().to_compact(),
        first.acc.to_json().to_compact()
    );
    first.acc = merged;
    evaluator(48, 3, EngineKind::Events)
        .extend_stats_spec(&registry, &inst, &spec, &mut first, 48)
        .unwrap();
    assert_eq!(
        first.acc.to_json().to_compact(),
        whole.acc.to_json().to_compact()
    );
}
