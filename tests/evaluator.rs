//! Integration tests for the parallel evaluation pipeline: the
//! seed-determinism contract (same master seed ⇒ bitwise-identical
//! outcomes at any thread count, even for policies with internal
//! randomness), and the Theorem-10 semantics-equivalence property under
//! the new harness.

use proptest::prelude::*;
use std::sync::Arc;
use suu::algos::standard_registry;
use suu::bench::scenario::Scenario;
use suu::core::{workload, Precedence};
use suu::sim::stats::{chi_square_critical_001, chi_square_two_sample, histogram_pair};
use suu::sim::{EvalConfig, Evaluator, ExecConfig, PolicySpec, Semantics};

/// Makespan vector of a registry policy at a given thread count.
fn makespans(spec: &str, threads: usize, master_seed: u64) -> Vec<u64> {
    let registry = standard_registry();
    let inst = Scenario::chains(3, 12, 4, 77).instantiate();
    Evaluator::seeded(48, master_seed)
        .with_threads(threads)
        .run_spec(&registry, &inst, &PolicySpec::parse(spec).unwrap())
        .unwrap_or_else(|e| panic!("{spec}: {e}"))
        .outcomes
        .iter()
        .map(|o| o.makespan)
        .collect()
}

#[test]
fn same_master_seed_is_bitwise_identical_across_thread_counts() {
    // suu-c draws internal randomness (Theorem-7 delays) per trial; the
    // reseed hook must pin it to the trial index, so the outcome vector
    // cannot depend on which worker ran which trial.
    for spec in ["gang-sequential", "suu-c(seed=5)"] {
        let reference = makespans(spec, 1, 99);
        for threads in [2, 3, 8] {
            assert_eq!(
                makespans(spec, threads, 99),
                reference,
                "{spec} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn different_master_seeds_decorrelate() {
    assert_ne!(makespans("suu-c", 2, 1), makespans("suu-c", 2, 2));
}

#[test]
fn parallel_run_matches_serial_reference_through_registry() {
    let registry = standard_registry();
    let inst = Scenario::uniform(3, 10, 0.2, 0.9, 5).instantiate();
    let eval = Evaluator::seeded(40, 7);
    let spec = PolicySpec::new("greedy-lr");
    let par: Vec<u64> = eval
        .run_spec(&registry, &inst, &spec)
        .unwrap()
        .outcomes
        .iter()
        .map(|o| o.makespan)
        .collect();
    let ser: Vec<u64> = eval
        .run_serial(&inst, || registry.build(&inst, &spec).unwrap())
        .outcomes
        .iter()
        .map(|o| o.makespan)
        .collect();
    assert_eq!(par, ser);
}

#[test]
fn evaluator_wall_clock_is_populated() {
    let registry = standard_registry();
    let inst = Scenario::uniform(3, 8, 0.2, 0.9, 6).instantiate();
    let report = Evaluator::seeded(10, 3)
        .run_spec(&registry, &inst, &PolicySpec::new("round-robin"))
        .unwrap();
    assert!(report.wall_clock.as_nanos() > 0);
    assert_eq!(report.policy, "round-robin");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 10 as a property: on random instances, the SUU and SUU*
    /// semantics induce the same makespan distribution for a fixed
    /// schedule. The proptest shim derives its cases deterministically
    /// from the test name, so the chi-square check is reproducible (no
    /// statistical flakiness across runs).
    #[test]
    fn suu_and_suustar_agree_in_distribution(
        seed in 0u64..1_000_000,
        m in 1usize..4,
        n in 1usize..7,
        q_lo in 0.1f64..0.5,
        spread in 0.1f64..0.45,
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = Arc::new(workload::uniform_unrelated(
            m, n, q_lo, q_lo + spread, Precedence::Independent, &mut rng,
        ));
        let registry = standard_registry();
        let collect = |semantics| {
            Evaluator::new(EvalConfig {
                trials: 1500,
                master_seed: seed ^ 0xD15,
                threads: 0,
                exec: ExecConfig {
                    semantics,
                    max_steps: 1_000_000,
                    ..ExecConfig::default()
                },
                ..EvalConfig::default()
            })
            .run_spec(&registry, &inst, &PolicySpec::new("gang-sequential"))
            .unwrap()
            .outcomes
            .into_iter()
            .map(|o| o.makespan)
            .collect::<Vec<u64>>()
        };
        let a = collect(Semantics::Suu);
        let b = collect(Semantics::SuuStar);
        let (ha, hb) = histogram_pair(&a, &b);
        let (chi2, dof) = chi_square_two_sample(&ha, &hb);
        prop_assert!(
            chi2 <= chi_square_critical_001(dof),
            "chi2 {} over critical {} (dof {}, m={} n={})",
            chi2, chi_square_critical_001(dof), dof, m, n
        );
    }
}
