//! Quickstart: schedule unreliable machines with the paper's algorithms.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random independent-jobs SUU instance, runs the paper's two
//! independent-jobs algorithms plus a naive baseline, and prints mean
//! makespans against the LP lower bound.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu::algos::baselines::GangSequentialPolicy;
use suu::algos::bounds::lower_bound;
use suu::algos::{OblPolicy, SemPolicy};
use suu::core::{workload, Precedence};
use suu::sim::{run_trials, MonteCarloConfig};

fn mean_makespan(outcomes: &[suu::sim::engine::ExecOutcome]) -> f64 {
    outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / outcomes.len() as f64
}

fn main() {
    let (m, n) = (6, 24);
    let mut rng = SmallRng::seed_from_u64(2024);
    let inst = Arc::new(workload::uniform_unrelated(
        m,
        n,
        0.1,
        0.9,
        Precedence::Independent,
        &mut rng,
    ));

    println!("SUU quickstart: {n} independent jobs, {m} unrelated machines");
    println!("q_ij ~ U[0.1, 0.9); 200 Monte-Carlo trials per schedule\n");

    let mc = MonteCarloConfig {
        trials: 200,
        base_seed: 1,
        ..Default::default()
    };

    let lb = lower_bound(&inst).expect("LP lower bound");

    let gang = mean_makespan(&run_trials(&inst, GangSequentialPolicy::new, &mc));
    let obl = mean_makespan(&run_trials(&inst, || OblPolicy::build(&inst).unwrap(), &mc));
    let sem = mean_makespan(&run_trials(
        &inst,
        || SemPolicy::build(inst.clone()).unwrap(),
        &mc,
    ));

    println!("{:<28} {:>10} {:>12}", "schedule", "E[T] (est)", "vs LP bound");
    println!("{:-<52}", "");
    for (name, value) in [
        ("gang-sequential (naive)", gang),
        ("SUU-I-OBL  (Theorem 3)", obl),
        ("SUU-I-SEM  (Theorem 4)", sem),
    ] {
        println!("{:<28} {:>10.2} {:>11.2}x", name, value, value / lb);
    }
    println!("\nLP lower bound on E[T_OPT]: {lb:.2}");
    println!("SUU-I-SEM is the paper's O(log log min(m,n))-approximation.");
}
