//! Quickstart: schedule unreliable machines with the paper's algorithms.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random independent-jobs SUU instance, races the paper's two
//! independent-jobs algorithms against a naive baseline through the
//! policy registry, and prints the shared `suu-results/v2` JSON document.

use suu::bench::runner::{run_race, Race};
use suu::bench::scenario::Scenario;

fn main() {
    let doc = run_race(Race {
        title: "quickstart: 24 independent jobs, 6 unrelated machines".to_string(),
        generated_by: "example:quickstart".to_string(),
        scenarios: vec![Scenario::uniform(6, 24, 0.1, 0.9, 2024)],
        policies: ["gang-sequential", "suu-i-obl", "suu-i-sem"]
            .map(String::from)
            .to_vec(),
        trials: 200,
        master_seed: 1,
        ratios_to_lower_bound: true,
        ..Race::default()
    });

    println!("\nSUU-I-SEM is the paper's O(log log min(m,n))-approximation;");
    println!("ratios are E[T]/LB with LB the Lemma-1 LP lower bound.\n");
    println!("{}", doc.to_pretty());
}
