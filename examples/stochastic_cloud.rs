//! Stochastic cloud scheduling with `STC-I` (paper Appendix C).
//!
//! ```sh
//! cargo run --release --example stochastic_cloud
//! ```
//!
//! Tasks with exponential service times on heterogeneous VMs
//! (`R|pmtn, p_j~stoch|E[Cmax]`). Runs the paper's `STC-I` and reports the
//! measured competitive ratio against the clairvoyant Lawler–Labetoulle
//! bound — the offline optimum that knows every realized length. Emits
//! the shared `suu-results/v2` JSON document (the stochastic framework is
//! not a `Policy`, so the document is assembled directly).

use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};
use suu::core::json::Json;
use suu::stoch::{StcI, StochInstance};

fn main() {
    let (m, n) = (5, 16);
    let mut rng = SmallRng::seed_from_u64(404);

    // VM generations: newer machines are faster across the board, with
    // per-task affinity jitter.
    let gen_speed = [4.0, 2.0, 2.0, 1.0, 1.0];
    let mut v = Vec::with_capacity(m * n);
    for &g in &gen_speed {
        for _ in 0..n {
            v.push(g * rng.random_range(0.5..1.5));
        }
    }
    // Task classes: short interactive (λ=4), medium (λ=1), heavy (λ=0.25).
    let lambda: Vec<f64> = (0..n)
        .map(|j| match j % 3 {
            0 => 4.0,
            1 => 1.0,
            _ => 0.25,
        })
        .collect();

    let inst = StochInstance::new(m, n, lambda, v).expect("valid instance");
    let stc = StcI::new(&inst);
    println!("Stochastic cloud: {n} tasks (3 service classes), {m} VMs");
    println!("STC-I rounds K = {}\n", stc.k_max());

    let trials = 200;
    let mut ratios = Vec::with_capacity(trials);
    let mut makespans = Vec::with_capacity(trials);
    let mut rounds_hist = [0u32; 16];
    let mut fallbacks = 0;
    for seed in 0..trials as u64 {
        let out = stc
            .run(&inst, &mut StdRng::seed_from_u64(seed))
            .expect("STC-I run");
        ratios.push(out.makespan / out.clairvoyant_lb.max(1e-12));
        makespans.push(out.makespan);
        rounds_hist[out.rounds_used as usize] += 1;
        fallbacks += out.fallback_used as u32;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mut sorted = ratios.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p95_ratio = sorted[(trials * 95) / 100];

    println!("trials: {trials}");
    println!("mean makespan:              {:>7.3}", mean(&makespans));
    println!(
        "mean competitive ratio:     {:>7.3}   (vs clairvoyant LL bound)",
        mean(&ratios)
    );
    println!("p95 competitive ratio:      {:>7.3}", p95_ratio);
    println!("sequential fallbacks used:  {fallbacks:>7}");
    println!("\nrounds used histogram:");
    for (k, &c) in rounds_hist.iter().enumerate() {
        if c > 0 {
            println!("  {k} rounds: {c:>4} trials");
        }
    }

    let doc = Json::obj()
        .field("schema", suu::bench::report::SCHEMA)
        .field("generated_by", "example:stochastic_cloud")
        .field(
            "scenarios",
            Json::Arr(vec![Json::obj()
                .field("id", "stoch-cloud-5x16")
                .field(
                    "description",
                    "exponential service times, 3 task classes, 2 VM generations",
                )
                .field("structure", "independent")
                .field("m", m)
                .field("n", n)
                .field("seed", 404u64)]),
        )
        .field("policies", Json::Arr(vec![Json::Str("stc-i".into())]))
        .field(
            "cells",
            Json::Arr(vec![Json::obj()
                .field("scenario", "stoch-cloud-5x16")
                .field("policy", "stc-i")
                .field("trials", trials)
                .field("master_seed", 0u64)
                .field("mean_makespan", mean(&makespans))
                .field("mean_competitive_ratio", mean(&ratios))
                .field("p95_competitive_ratio", p95_ratio)
                .field("sequential_fallbacks", fallbacks as u64)]),
        );

    println!("\nTheorem 13: E[T_STC-I] = O(E[T_OPT]) up to the log log factor;");
    println!("the clairvoyant ratio above bounds the true approximation factor.\n");
    println!("{}", doc.to_pretty());
}
