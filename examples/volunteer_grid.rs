//! Volunteer-computing grid (SETI@home-style, paper §1).
//!
//! ```sh
//! cargo run --release --example volunteer_grid
//! ```
//!
//! A fleet of volunteer machines: a minority are reliable, the rest are
//! flaky; job difficulties follow a power law (a few stubborn work units).
//! Compares all schedules on the same fleet, including the exact optimum
//! on a downscaled fleet to show absolute approximation quality.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu::algos::baselines::{BestMachinePolicy, GangSequentialPolicy, LrGreedyPolicy};
use suu::algos::bounds::lower_bound;
use suu::algos::opt::{exact_opt, OptLimits};
use suu::algos::{OblPolicy, SemPolicy};
use suu::core::{workload, Precedence};
use suu::sim::{run_trials, MonteCarloConfig};

fn mean(outcomes: &[suu::sim::engine::ExecOutcome]) -> f64 {
    assert!(outcomes.iter().all(|o| o.completed));
    outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / outcomes.len() as f64
}

fn main() {
    let (m, n) = (10, 30);
    let mut rng = SmallRng::seed_from_u64(1234);
    let inst = Arc::new(workload::volunteer_grid(
        m,
        n,
        0.3, // 30% reliable machines
        0.15,
        0.92,
        Precedence::Independent,
        &mut rng,
    ));

    println!("Volunteer grid: {n} work units, {m} machines (30% reliable)");
    let lb = lower_bound(&inst).expect("lower bound");
    println!("LP lower bound on E[T_OPT]: {lb:.2}\n");

    let mc = MonteCarloConfig {
        trials: 150,
        base_seed: 11,
        ..Default::default()
    };

    println!("{:<24} {:>10} {:>10}", "schedule", "E[T]", "ratio/LB");
    println!("{:-<46}", "");
    let rows: Vec<(&str, f64)> = vec![
        (
            "gang-sequential",
            mean(&run_trials(&inst, GangSequentialPolicy::new, &mc)),
        ),
        (
            "best-machine",
            mean(&run_trials(&inst, || BestMachinePolicy::new(inst.clone()), &mc)),
        ),
        (
            "greedy-lr",
            mean(&run_trials(&inst, || LrGreedyPolicy::new(inst.clone()), &mc)),
        ),
        (
            "SUU-I-OBL",
            mean(&run_trials(&inst, || OblPolicy::build(&inst).unwrap(), &mc)),
        ),
        (
            "SUU-I-SEM",
            mean(&run_trials(&inst, || SemPolicy::build(inst.clone()).unwrap(), &mc)),
        ),
    ];
    for (name, v) in rows {
        println!("{:<24} {:>10.2} {:>9.2}x", name, v, v / lb);
    }

    // Downscaled fleet where the exact optimum is computable.
    println!("\n--- exact-optimum check (downscaled: 6 jobs, 3 machines) ---");
    let mut rng2 = SmallRng::seed_from_u64(77);
    let small = Arc::new(workload::volunteer_grid(
        3,
        6,
        0.34,
        0.15,
        0.92,
        Precedence::Independent,
        &mut rng2,
    ));
    let opt = exact_opt(&small, OptLimits::default()).expect("tiny instance");
    let mc_small = MonteCarloConfig {
        trials: 400,
        base_seed: 21,
        ..Default::default()
    };
    let sem_small = mean(&run_trials(
        &small,
        || SemPolicy::build(small.clone()).unwrap(),
        &mc_small,
    ));
    println!("exact E[T_OPT] = {opt:.3}");
    println!("SUU-I-SEM      = {sem_small:.3}  ({:.2}x optimal)", sem_small / opt);
}
