//! Volunteer-computing grid (SETI@home-style, paper §1).
//!
//! ```sh
//! cargo run --release --example volunteer_grid
//! ```
//!
//! A fleet of volunteer machines: a minority are reliable, the rest are
//! flaky. Every registry policy races on the same fleet; a downscaled
//! copy of the fleet additionally runs `exact-opt` (the MDP optimum as an
//! executable policy) to show absolute approximation quality. Prints the
//! shared `suu-results/v2` JSON document.

use suu::bench::runner::{run_race, Race};
use suu::bench::scenario::Scenario;
use suu::core::{workload, Precedence};
use suu::sim::StructureClass;

fn grid(id: &str, m: usize, n: usize, seed: u64) -> Scenario {
    Scenario::custom(
        id,
        "volunteer grid: 30% reliable machines, the rest flaky",
        m,
        n,
        seed,
        StructureClass::Independent,
        move |s| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(s);
            use rand::SeedableRng;
            workload::volunteer_grid(m, n, 0.3, 0.15, 0.92, Precedence::Independent, &mut rng)
        },
    )
}

fn main() {
    let doc = run_race(Race {
        title: "volunteer grid: full fleet + downscaled fleet with exact-opt".to_string(),
        generated_by: "example:volunteer_grid".to_string(),
        scenarios: vec![
            grid("volunteer-10x30", 10, 30, 1234),
            // Tiny copy where the MDP optimum is computable.
            grid("volunteer-4x9", 4, 9, 1234),
        ],
        policies: [
            "gang-sequential",
            "best-machine",
            "greedy-lr",
            "suu-i-obl",
            "suu-i-sem",
            "exact-opt",
        ]
        .map(String::from)
        .to_vec(),
        trials: 120,
        master_seed: 1234,
        ratios_to_lower_bound: true,
        ..Race::default()
    });

    println!("\nexact-opt errors on the full fleet (state space 2^30) and runs");
    println!("on the downscaled one — absolute quality shows up there.\n");
    println!("{}", doc.to_pretty());
}
