//! MapReduce-style two-phase scheduling (paper §1's motivating example).
//!
//! ```sh
//! cargo run --release --example mapreduce
//! ```
//!
//! Google's MapReduce generates dependencies forming a complete bipartite
//! graph — equivalent to two consecutive phases of independent jobs. This
//! example schedules the map phase and the reduce phase with `SUU-I-SEM`
//! (using its job-subset mode) and compares against naive scheduling of
//! the full DAG.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu::algos::baselines::{BestMachinePolicy, RoundRobinPolicy};
use suu::algos::SemPolicy;
use suu::core::{JobId, Precedence, SuuInstance};
use suu::dag::generators::mapreduce_bipartite;
use suu::sim::{run_trials, MonteCarloConfig, Policy, StateView};

/// Phase-aware schedule: `SUU-I-SEM` on the maps, then on the reduces.
struct TwoPhaseSem {
    maps: SemPolicy,
    reduces: SemPolicy,
}

impl TwoPhaseSem {
    fn build(inst: Arc<SuuInstance>, num_maps: usize) -> Self {
        let n = inst.num_jobs();
        let map_ids: Vec<u32> = (0..num_maps as u32).collect();
        let reduce_ids: Vec<u32> = (num_maps as u32..n as u32).collect();
        TwoPhaseSem {
            maps: SemPolicy::for_jobs(inst.clone(), Some(map_ids)).expect("maps policy"),
            reduces: SemPolicy::for_jobs(inst, Some(reduce_ids)).expect("reduces policy"),
        }
    }
}

impl Policy for TwoPhaseSem {
    fn name(&self) -> &str {
        "two-phase SUU-I-SEM"
    }
    fn reset(&mut self) {
        self.maps.reset();
        self.reduces.reset();
    }
    fn assign(&mut self, view: &StateView<'_>) -> Vec<Option<JobId>> {
        if !self.maps.is_done(view.remaining) {
            self.maps.assign(view)
        } else {
            self.reduces.assign(view)
        }
    }
}

fn mean(outcomes: &[suu::sim::engine::ExecOutcome]) -> f64 {
    assert!(outcomes.iter().all(|o| o.completed));
    outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / outcomes.len() as f64
}

fn main() {
    let (maps, reduces, m) = (24, 8, 8);
    let n = maps + reduces;
    let dag = mapreduce_bipartite(maps, reduces);
    let mut rng = SmallRng::seed_from_u64(99);

    // Data locality: each machine holds a shard, so it is reliable only
    // for "its" tasks (job j's shard lives on machine j mod m); off-shard
    // execution mostly fails. Affinity-blind schedules suffer badly here.
    let mut q = Vec::with_capacity(m * n);
    for i in 0..m {
        for j in 0..n {
            use rand::RngExt;
            let local = j % m == i;
            let base: f64 = if local { 0.15 } else { 0.93 };
            q.push((base + rng.random_range(-0.05..0.05)).clamp(0.01, 0.99));
        }
    }
    let inst = Arc::new(SuuInstance::new(m, n, q, Precedence::Dag(dag)).expect("valid instance"));

    println!("MapReduce workload: {maps} maps -> {reduces} reduces on {m} machines");
    println!("(complete bipartite precedence; reducers are failure-prone)\n");

    let mc = MonteCarloConfig {
        trials: 150,
        base_seed: 5,
        ..Default::default()
    };

    let two_phase = mean(&run_trials(
        &inst,
        || TwoPhaseSem::build(inst.clone(), maps),
        &mc,
    ));
    let rr = mean(&run_trials(&inst, RoundRobinPolicy::new, &mc));
    let bm = mean(&run_trials(&inst, || BestMachinePolicy::new(inst.clone()), &mc));

    println!("{:<26} {:>12}", "schedule", "E[T] (est)");
    println!("{:-<40}", "");
    println!("{:<26} {:>12.2}", "round-robin", rr);
    println!("{:<26} {:>12.2}", "best-machine greedy", bm);
    println!("{:<26} {:>12.2}", "two-phase SUU-I-SEM", two_phase);
    println!("\nThe two-phase schedule applies Theorem 4 to each phase, which");
    println!("is exactly how the paper treats MapReduce-shaped dependencies.");
}
