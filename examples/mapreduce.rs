//! MapReduce-style two-phase scheduling (paper §1's motivating example).
//!
//! ```sh
//! cargo run --release --example mapreduce
//! ```
//!
//! Google's MapReduce generates dependencies forming a complete bipartite
//! graph — equivalent to two consecutive phases of independent jobs. This
//! example registers a custom `two-phase-sem` policy (SUU-I-SEM per
//! phase, via its job-subset mode) into the standard registry — the
//! extension point any new schedule uses — and races it against the
//! naive baselines on a data-local MapReduce scenario. Prints the shared
//! `suu-results/v2` JSON document.

use std::sync::Arc;
use suu::algos::SemPolicy;
use suu::bench::runner::{run_race_with, Race};
use suu::bench::scenario::Scenario;
use suu::core::SuuInstance;
use suu::sim::{factory, Assignment, Decision, Policy, RegistryError, StateView, StructureClass};

/// Phase-aware schedule: `SUU-I-SEM` on the maps, then on the reduces.
struct TwoPhaseSem {
    maps: SemPolicy,
    reduces: SemPolicy,
}

impl TwoPhaseSem {
    fn build(inst: Arc<SuuInstance>, num_maps: usize) -> Result<Self, suu::algos::AlgoError> {
        let n = inst.num_jobs();
        let map_ids: Vec<u32> = (0..num_maps as u32).collect();
        let reduce_ids: Vec<u32> = (num_maps as u32..n as u32).collect();
        Ok(TwoPhaseSem {
            maps: SemPolicy::for_jobs(inst.clone(), Some(map_ids))?,
            reduces: SemPolicy::for_jobs(inst, Some(reduce_ids))?,
        })
    }
}

impl Policy for TwoPhaseSem {
    fn name(&self) -> &str {
        "two-phase-sem"
    }
    fn reset(&mut self) {
        self.maps.reset();
        self.reduces.reset();
    }
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        // The phase switch happens at a completion event, so the engine
        // is guaranteed to consult us exactly when the maps finish.
        if !self.maps.is_done(view.remaining) {
            self.maps.decide(view, out)
        } else {
            self.reduces.decide(view, out)
        }
    }
}

fn main() {
    let (maps, reduces, m) = (24usize, 8usize, 8usize);

    // The registry extension point: any schedule becomes raceable by name.
    let mut registry = suu::algos::standard_registry();
    registry.register(factory(
        "two-phase-sem",
        "SUU-I-SEM applied per MapReduce phase (Theorem 4 twice)",
        StructureClass::Dag,
        move |inst, spec| {
            let phase_split = spec.u64_param("maps", maps as u64)? as usize;
            let policy = TwoPhaseSem::build(inst.clone(), phase_split).map_err(|e| {
                RegistryError::BuildFailed {
                    policy: spec.name.clone(),
                    reason: e.to_string(),
                }
            })?;
            Ok(Box::new(policy) as Box<dyn Policy>)
        },
    ));

    let doc = run_race_with(
        Race {
            title: format!("mapreduce: {maps} maps -> {reduces} reduces on {m} machines"),
            generated_by: "example:mapreduce".to_string(),
            scenarios: vec![Scenario::mapreduce(maps, reduces, m, 99)],
            policies: ["round-robin", "best-machine", "two-phase-sem"]
                .map(String::from)
                .to_vec(),
            trials: 150,
            master_seed: 5,
            ratios_to_lower_bound: false,
            ..Race::default()
        },
        &registry,
    );

    println!("\nThe two-phase schedule applies Theorem 4 to each phase, which");
    println!("is exactly how the paper treats MapReduce-shaped dependencies.");
    println!("Data locality (shard-local reliability) punishes affinity-blind");
    println!("schedules like round-robin.\n");
    println!("{}", doc.to_pretty());
}
