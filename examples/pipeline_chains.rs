//! Chain-structured pipelines scheduled with `SUU-C` (paper §4).
//!
//! ```sh
//! cargo run --release --example pipeline_chains
//! ```
//!
//! A batch of processing pipelines (disjoint chains of dependent stages)
//! on a small unreliable cluster. Shows the full `SUU-C` machinery — LP2
//! rounding, random delays, superstep flattening, long-job segments — and
//! the effect of disabling the Theorem-7 random delays, all as registry
//! parameter specs. Prints the shared `suu-results/v2` JSON document.

use suu::bench::runner::{run_race, Race};
use suu::bench::scenario::Scenario;

fn main() {
    let doc = run_race(Race {
        title: "pipelines: 12 disjoint chains of 48 stages on 6 machines".to_string(),
        generated_by: "example:pipeline_chains".to_string(),
        scenarios: vec![Scenario::chains(6, 48, 12, 31)],
        policies: ["gang-sequential", "suu-c", "suu-c(delay=false)"]
            .map(String::from)
            .to_vec(),
        trials: 60,
        master_seed: 31,
        ratios_to_lower_bound: true,
        ..Race::default()
    });

    println!("\nSUU-C follows Theorems 7 & 9: LP2 + rounding, random start");
    println!("delays against congestion, superstep flattening. The");
    println!("delay=false column ablates the Theorem-7 delays.\n");
    println!("{}", doc.to_pretty());
}
