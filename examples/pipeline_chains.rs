//! Chain-structured pipelines scheduled with `SUU-C` (paper §4).
//!
//! ```sh
//! cargo run --release --example pipeline_chains
//! ```
//!
//! A batch of processing pipelines (disjoint chains of dependent stages)
//! on a small unreliable cluster. Shows the full `SUU-C` machinery —
//! LP2 rounding, random delays, superstep flattening, long-job segments —
//! and the effect of disabling the Theorem-7 random delays.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu::algos::baselines::GangSequentialPolicy;
use suu::algos::bounds::lower_bound;
use suu::algos::{ChainConfig, ChainPolicy};
use suu::core::{workload, Precedence};
use suu::dag::generators::random_chain_set;
use suu::sim::{execute, run_trials, ExecConfig, MonteCarloConfig};

fn mean(outcomes: &[suu::sim::engine::ExecOutcome]) -> f64 {
    assert!(outcomes.iter().all(|o| o.completed));
    outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / outcomes.len() as f64
}

fn main() {
    let (m, n, pipelines) = (6, 48, 12);
    let mut rng = SmallRng::seed_from_u64(31);
    let cs = random_chain_set(n, pipelines, &mut rng);
    let chains = cs.chains().to_vec();
    let inst = Arc::new(workload::uniform_unrelated(
        m,
        n,
        0.2,
        0.7,
        Precedence::Chains(cs),
        &mut rng,
    ));

    println!("{pipelines} pipelines, {n} stages total, {m} machines");
    let lb = lower_bound(&inst).expect("lower bound");
    println!("LP lower bound on E[T_OPT]: {lb:.2}\n");

    let mc = MonteCarloConfig {
        trials: 100,
        base_seed: 3,
        ..Default::default()
    };

    let suu_c = mean(&run_trials(
        &inst,
        || ChainPolicy::build(inst.clone(), chains.clone(), ChainConfig::default()).unwrap(),
        &mc,
    ));
    let gang = mean(&run_trials(&inst, GangSequentialPolicy::new, &mc));

    println!("{:<24} {:>10} {:>10}", "schedule", "E[T]", "ratio/LB");
    println!("{:-<46}", "");
    println!("{:<24} {:>10.2} {:>9.2}x", "gang-sequential", gang, gang / lb);
    println!("{:<24} {:>10.2} {:>9.2}x", "SUU-C (Theorem 9)", suu_c, suu_c / lb);

    // Peek inside one execution: congestion with and without random delay.
    println!("\n--- Theorem 7 in action (single execution) ---");
    for use_delay in [false, true] {
        let cfg = ChainConfig {
            use_random_delay: use_delay,
            ..Default::default()
        };
        let mut policy = ChainPolicy::build(inst.clone(), chains.clone(), cfg).unwrap();
        let mut erng = rand::rngs::StdRng::seed_from_u64(42);
        let out = execute(&inst, &mut policy, &ExecConfig::default(), &mut erng);
        assert!(out.completed);
        let st = policy.stats();
        println!(
            "random delay {:>5}: max congestion {:>3}, {} supersteps, {} long-job phases",
            use_delay, st.max_congestion, st.supersteps, st.long_job_phases
        );
    }
    println!("\n(γ = long-job cutoff; delays shear overlapping chains apart, paper §4.)");
}
