//! # suu — Multiprocessor Scheduling Under Uncertainty
//!
//! A from-scratch Rust implementation of
//! *"Improved Approximations for Multiprocessor Scheduling Under
//! Uncertainty"* (Crutchfield, Dzunic, Fineman, Karger, Scott — SPAA
//! 2008), including every substrate the paper's algorithms rest on: an LP
//! solver, network flow, DAG/chain machinery, a discrete-time stochastic
//! execution engine, the prior-art-style baselines, and an exact optimum
//! for tiny instances.
//!
//! ## The problem
//!
//! `n` unit-step jobs, `m` machines, and a probability `q_ij` that job `j`
//! *fails* to complete when machine `i` runs it for one step. Precedence
//! constraints form a DAG; several machines may gang on one job in the
//! same step. Minimize the **expected makespan**.
//!
//! ## Quick start
//!
//! Every schedule — the paper's algorithms, the baselines, the exact
//! optimum — is constructible by name through the policy registry, and the
//! parallel [`sim::Evaluator`] runs seed-deterministic Monte-Carlo trials
//! over it:
//!
//! ```
//! use std::sync::Arc;
//! use suu::core::{workload, Precedence};
//! use suu::sim::{Evaluator, PolicySpec};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // 16 independent jobs on 4 unreliable machines.
//! let mut rng = SmallRng::seed_from_u64(7);
//! let inst = Arc::new(workload::uniform_unrelated(
//!     4, 16, 0.2, 0.9, Precedence::Independent, &mut rng));
//!
//! // The paper's O(log log min(m,n)) semioblivious schedule, by name.
//! let registry = suu::algos::standard_registry();
//! let report = Evaluator::seeded(20, 1)
//!     .run_spec(&registry, &inst, &PolicySpec::new("suu-i-sem"))
//!     .expect("suu-i-sem builds on independent instances");
//! assert!(report.all_completed());
//! assert!(report.mean_makespan() >= 1.0);
//! ```
//!
//! Rerunning with the same master seed reproduces the outcome vector
//! bitwise, regardless of how many worker threads the evaluator uses.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `suu-core` | instances, log-mass, assignments, timetables, workloads, JSON |
//! | [`lp`] | `suu-lp` | two-phase simplex LP solver |
//! | [`flow`] | `suu-flow` | Dinic max-flow, Hopcroft–Karp matching |
//! | [`dag`] | `suu-dag` | chains, forests, rank decomposition, DAG queries |
//! | [`sim`] | `suu-sim` | execution engine (SUU & SUU* semantics), the policy registry ([`sim::PolicyRegistry`]), the parallel seed-deterministic [`sim::Evaluator`] |
//! | [`algos`] | `suu-algos` | `SUU-I-OBL`, `SUU-I-SEM`, `SUU-C`, `SUU-T`, baselines, exact OPT, bounds, and [`algos::standard_registry`] |
//! | [`stoch`] | `suu-stoch` | Appendix C: Lawler–Labetoulle, `STC-I` |
//! | [`bench`] | `suu-bench` | scenario suite, `suu-results/v2` JSON schema, race runner, request wire form, experiment binaries |
//! | [`serve`] | `suu-serve` | the `suud` evaluation daemon: HTTP/1.1 JSON API over a content-addressed, resumable result cache |
//!
//! The evaluation pipeline is layered: a
//! [`sim::PolicySpec`] names a schedule; the registry builds it (with
//! typed structure-class capability checks); the [`sim::Evaluator`] fans
//! trials across threads with per-trial RNG streams derived from one
//! master seed; [`bench::scenario::ScenarioSuite`] ×
//! [`bench::runner::Race`] sweep policies over workload families and emit
//! the shared JSON results schema ([`bench::report`]).

pub use suu_algos as algos;
pub use suu_bench as bench;
pub use suu_core as core;
pub use suu_dag as dag;
pub use suu_flow as flow;
pub use suu_lp as lp;
pub use suu_serve as serve;
pub use suu_sim as sim;
pub use suu_stoch as stoch;
