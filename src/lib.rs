//! # suu — Multiprocessor Scheduling Under Uncertainty
//!
//! A from-scratch Rust implementation of
//! *"Improved Approximations for Multiprocessor Scheduling Under
//! Uncertainty"* (Crutchfield, Dzunic, Fineman, Karger, Scott — SPAA
//! 2008), including every substrate the paper's algorithms rest on: an LP
//! solver, network flow, DAG/chain machinery, a discrete-time stochastic
//! execution engine, the prior-art-style baselines, and an exact optimum
//! for tiny instances.
//!
//! ## The problem
//!
//! `n` unit-step jobs, `m` machines, and a probability `q_ij` that job `j`
//! *fails* to complete when machine `i` runs it for one step. Precedence
//! constraints form a DAG; several machines may gang on one job in the
//! same step. Minimize the **expected makespan**.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use suu::core::{workload, Precedence};
//! use suu::algos::SemPolicy;
//! use suu::sim::{run_trials, MonteCarloConfig};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // 16 independent jobs on 4 unreliable machines.
//! let mut rng = SmallRng::seed_from_u64(7);
//! let inst = Arc::new(workload::uniform_unrelated(
//!     4, 16, 0.2, 0.9, Precedence::Independent, &mut rng));
//!
//! // The paper's O(log log min(m,n)) semioblivious schedule.
//! let outcomes = run_trials(
//!     &inst,
//!     || SemPolicy::build(inst.clone()).unwrap(),
//!     &MonteCarloConfig { trials: 20, ..Default::default() },
//! );
//! let mean: f64 = outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / 20.0;
//! assert!(mean >= 1.0);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `suu-core` | instances, log-mass, assignments, timetables, workloads |
//! | [`lp`] | `suu-lp` | two-phase simplex LP solver |
//! | [`flow`] | `suu-flow` | Dinic max-flow, Hopcroft–Karp matching |
//! | [`dag`] | `suu-dag` | chains, forests, rank decomposition, DAG queries |
//! | [`sim`] | `suu-sim` | execution engine (SUU & SUU* semantics), Monte Carlo |
//! | [`algos`] | `suu-algos` | `SUU-I-OBL`, `SUU-I-SEM`, `SUU-C`, `SUU-T`, baselines, exact OPT, bounds |
//! | [`stoch`] | `suu-stoch` | Appendix C: Lawler–Labetoulle, `STC-I` |

pub use suu_algos as algos;
pub use suu_core as core;
pub use suu_dag as dag;
pub use suu_flow as flow;
pub use suu_lp as lp;
pub use suu_sim as sim;
pub use suu_stoch as stoch;
