//! # mio (offline shim)
//!
//! The build environment cannot fetch crates.io, so this workspace ships
//! a small mio-compatible readiness-polling layer over Linux `epoll`,
//! declared directly against the C library (`epoll_create1` /
//! `epoll_ctl` / `epoll_wait` / `close`) — std already links libc, so no
//! external crate is needed.
//!
//! The surface is the subset `suu-serve`'s event loop uses:
//! [`Poll`] / [`Registry`] / [`Events`] / [`Event`] / [`Token`] /
//! [`Interest`], **level-triggered** (no `EPOLLET`): a readiness event
//! repeats until the condition is drained, so a handler that stops early
//! is re-told on the next poll rather than silently wedged.
//!
//! One deliberate deviation from real mio: sources are registered as
//! `&impl AsRawFd` (std's `TcpListener` / `TcpStream` / `UnixStream`
//! directly) instead of through mio's own wrapper types — real mio would
//! wrap the same fds in `unix::SourceFd`. Swapping the real crate back
//! in is that wrapper plus the one-line `Cargo.toml` change.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

mod sys {
    use std::os::raw::c_int;

    /// `struct epoll_event`. On x86-64 the kernel ABI packs it (no
    /// padding between the 32-bit mask and the 64-bit data word); on
    /// other Linux targets it is naturally aligned.
    #[cfg(target_arch = "x86_64")]
    #[derive(Clone, Copy)]
    #[repr(C, packed)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[derive(Clone, Copy)]
    #[repr(C)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Caller-chosen identifier attached to a registration and echoed back
/// on every readiness event for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// What readiness to wait for. Combine with `|` or [`Interest::add`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wait for the source to become readable.
    pub const READABLE: Interest = Interest(0b01);
    /// Wait for the source to become writable.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Union of two interests.
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include readability?
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include writability?
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }

    fn epoll_mask(self) -> u32 {
        // RDHUP is always requested so a peer's half-close surfaces as a
        // readiness event instead of waiting for the next read attempt.
        let mut mask = sys::EPOLLRDHUP;
        if self.is_readable() {
            mask |= sys::EPOLLIN;
        }
        if self.is_writable() {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event: a token plus the kernel's condition mask.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    mask: u32,
    token: usize,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// Data (or a listener backlog entry) can be read.
    pub fn is_readable(&self) -> bool {
        self.mask & sys::EPOLLIN != 0
    }

    /// The source can accept writes without blocking.
    pub fn is_writable(&self) -> bool {
        self.mask & sys::EPOLLOUT != 0
    }

    /// The peer closed (fully or its write half) — a read will observe
    /// EOF once the buffered bytes are drained.
    pub fn is_read_closed(&self) -> bool {
        self.mask & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }

    /// The source is in an error state (a read/write will surface it).
    pub fn is_error(&self) -> bool {
        self.mask & sys::EPOLLERR != 0
    }
}

/// Buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    capacity: usize,
}

impl Events {
    /// Room for up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        let capacity = capacity.max(1);
        Events {
            raw: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Iterate the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw.iter().map(|ev| {
            // Copy the fields out — `EpollEvent` may be packed, so no
            // references into it.
            let mask = ev.events;
            let data = ev.data;
            Event {
                mask,
                token: data as usize,
            }
        })
    }

    /// Did the last poll return no events (i.e. time out)?
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }
}

/// Handle for (de)registering event sources with a [`Poll`].
pub struct Registry {
    epfd: RawFd,
}

impl Registry {
    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        event: Option<sys::EpollEvent>,
    ) -> io::Result<()> {
        let mut ev = event.unwrap_or(sys::EpollEvent { events: 0, data: 0 });
        // DEL ignores the event argument but pre-2.6.9 kernels demanded a
        // non-null pointer, so one is always passed.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start watching `source` for `interest`, tagged with `token`.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_ADD,
            source.as_raw_fd(),
            Some(sys::EpollEvent {
                events: interest.epoll_mask(),
                data: token.0 as u64,
            }),
        )
    }

    /// Change an existing registration's interest and/or token.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_MOD,
            source.as_raw_fd(),
            Some(sys::EpollEvent {
                events: interest.epoll_mask(),
                data: token.0 as u64,
            }),
        )
    }

    /// Stop watching `source` entirely.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        unsafe {
            let _ = sys::close(self.epfd);
        }
    }
}

/// The readiness queue: an `epoll` instance.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Create a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poll {
            registry: Registry { epfd },
        })
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Block until at least one registered source is ready, the timeout
    /// elapses (`events` left empty), or — transparently retried — a
    /// signal interrupts the wait. `None` blocks indefinitely. Sub-
    /// millisecond timeouts round **up** to 1 ms so a short deadline
    /// never degenerates into a busy spin.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: std::os::raw::c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(i32::MAX as u128) as std::os::raw::c_int
                }
            }
        };
        events.raw.clear();
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.registry.epfd,
                    events.raw.as_mut_ptr(),
                    events.capacity as std::os::raw::c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                // Safety: the kernel wrote exactly `n` plain-old-data
                // entries into the buffer, and `n <= capacity`.
                unsafe { events.raw.set_len(n as usize) };
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_event_fires_for_buffered_data() {
        let mut poll = Poll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&a, Token(7), Interest::READABLE)
            .unwrap();

        // Nothing buffered yet: a short poll times out empty.
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        (&b).write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("readable event");
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());
        let mut buf = [0u8; 8];
        assert_eq!((&a).read(&mut buf).unwrap(), 4);

        // Level-triggered: once drained, the event stops repeating.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn peer_close_is_visible_and_interest_changes_apply() {
        let mut poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        poll.registry()
            .register(&server, Token(1), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.is_writable()));

        poll.registry()
            .reregister(&server, Token(2), Interest::READABLE)
            .unwrap();
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("close event");
        assert_eq!(ev.token(), Token(2));
        assert!(ev.is_readable() || ev.is_read_closed());

        poll.registry().deregister(&server).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "deregistered source must go silent");
    }
}
