//! # mio (offline shim)
//!
//! The build environment cannot fetch crates.io, so this workspace ships
//! a small mio-compatible readiness-polling layer over Linux `epoll`,
//! declared directly against the C library (`epoll_create1` /
//! `epoll_ctl` / `epoll_wait` / `close`) — std already links libc, so no
//! external crate is needed.
//!
//! The surface is the subset `suu-serve`'s event loop uses:
//! [`Poll`] / [`Registry`] / [`Events`] / [`Event`] / [`Token`] /
//! [`Interest`], **level-triggered** (no `EPOLLET`): a readiness event
//! repeats until the condition is drained, so a handler that stops early
//! is re-told on the next poll rather than silently wedged.
//!
//! One deliberate deviation from real mio: sources are registered as
//! `&impl AsRawFd` (std's `TcpListener` / `TcpStream` / `UnixStream`
//! directly) instead of through mio's own wrapper types — real mio would
//! wrap the same fds in `unix::SourceFd`. Swapping the real crate back
//! in is that wrapper plus the one-line `Cargo.toml` change.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

mod sys {
    use std::os::raw::c_int;

    /// `struct epoll_event`. On x86-64 the kernel ABI packs it (no
    /// padding between the 32-bit mask and the 64-bit data word); on
    /// other Linux targets it is naturally aligned.
    #[cfg(target_arch = "x86_64")]
    #[derive(Clone, Copy)]
    #[repr(C, packed)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[derive(Clone, Copy)]
    #[repr(C)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const AF_INET: c_int = 2;
    pub const AF_INET6: c_int = 10;
    pub const SOCK_STREAM: c_int = 1;
    pub const SOCK_NONBLOCK: c_int = 0o4000;
    pub const SOCK_CLOEXEC: c_int = 0o2000000;
    pub const EINPROGRESS: c_int = 115;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn connect(fd: c_int, addr: *const u8, len: u32) -> c_int;
    }
}

pub mod net {
    //! Upstream (client-side) connections: the subset of `mio::net` a
    //! proxy needs. [`TcpStream::connect`] starts a **nonblocking**
    //! connect — the socket is created `SOCK_NONBLOCK | SOCK_CLOEXEC`,
    //! so no window exists where it could block — and returns
    //! immediately with the connect in flight (`EINPROGRESS`).
    //! Completion is a readiness event: register the stream for
    //! [`Interest::WRITABLE`](super::Interest::WRITABLE), and when the
    //! event fires check [`TcpStream::take_error`] — `None` means the
    //! connection is established, `Some` carries the failure (e.g.
    //! `ECONNREFUSED`). This lets a caller bound connection
    //! establishment with a poll deadline instead of blocking a thread
    //! on a dead peer.

    use super::sys;
    use std::io;
    use std::net::SocketAddr;
    use std::os::fd::{AsRawFd, FromRawFd, RawFd};

    /// A TCP stream whose connect is in flight (or already complete).
    /// Wraps a std stream that is nonblocking from birth.
    pub struct TcpStream {
        inner: std::net::TcpStream,
    }

    /// `struct sockaddr_in` / `sockaddr_in6` wire bytes for `addr`.
    fn sockaddr_bytes(addr: &SocketAddr) -> (std::os::raw::c_int, Vec<u8>) {
        match addr {
            SocketAddr::V4(v4) => {
                let mut bytes = vec![0u8; 16];
                bytes[0..2].copy_from_slice(&(sys::AF_INET as u16).to_ne_bytes());
                bytes[2..4].copy_from_slice(&v4.port().to_be_bytes());
                bytes[4..8].copy_from_slice(&v4.ip().octets());
                (sys::AF_INET, bytes)
            }
            SocketAddr::V6(v6) => {
                let mut bytes = vec![0u8; 28];
                bytes[0..2].copy_from_slice(&(sys::AF_INET6 as u16).to_ne_bytes());
                bytes[2..4].copy_from_slice(&v6.port().to_be_bytes());
                bytes[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
                bytes[8..24].copy_from_slice(&v6.ip().octets());
                bytes[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                (sys::AF_INET6, bytes)
            }
        }
    }

    impl TcpStream {
        /// Begin a nonblocking connect to `addr`. An `Ok` return means
        /// the attempt is in flight (or already done); await
        /// writability, then call [`take_error`](TcpStream::take_error)
        /// for the verdict.
        pub fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
            let (family, bytes) = sockaddr_bytes(&addr);
            let fd = unsafe {
                sys::socket(
                    family,
                    sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
                    0,
                )
            };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // Owns the fd from here on — an early error drop closes it.
            let inner = unsafe { std::net::TcpStream::from_raw_fd(fd) };
            let rc = unsafe { sys::connect(fd, bytes.as_ptr(), bytes.len() as u32) };
            if rc == 0 {
                return Ok(TcpStream { inner });
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(sys::EINPROGRESS) {
                Ok(TcpStream { inner })
            } else {
                Err(err)
            }
        }

        /// `SO_ERROR`: the deferred outcome of the nonblocking connect
        /// (consumed on read). `Ok(None)` after writability fired means
        /// the stream is connected.
        pub fn take_error(&self) -> io::Result<Option<io::Error>> {
            self.inner.take_error()
        }

        /// Unwrap into a std stream (still in nonblocking mode; callers
        /// wanting blocking I/O flip it with `set_nonblocking(false)`).
        pub fn into_std(self) -> std::net::TcpStream {
            self.inner
        }
    }

    impl AsRawFd for TcpStream {
        fn as_raw_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }
}

/// Caller-chosen identifier attached to a registration and echoed back
/// on every readiness event for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// What readiness to wait for. Combine with `|` or [`Interest::add`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wait for the source to become readable.
    pub const READABLE: Interest = Interest(0b01);
    /// Wait for the source to become writable.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Union of two interests.
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include readability?
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include writability?
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }

    fn epoll_mask(self) -> u32 {
        // RDHUP is always requested so a peer's half-close surfaces as a
        // readiness event instead of waiting for the next read attempt.
        let mut mask = sys::EPOLLRDHUP;
        if self.is_readable() {
            mask |= sys::EPOLLIN;
        }
        if self.is_writable() {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event: a token plus the kernel's condition mask.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    mask: u32,
    token: usize,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// Data (or a listener backlog entry) can be read.
    pub fn is_readable(&self) -> bool {
        self.mask & sys::EPOLLIN != 0
    }

    /// The source can accept writes without blocking.
    pub fn is_writable(&self) -> bool {
        self.mask & sys::EPOLLOUT != 0
    }

    /// The peer closed (fully or its write half) — a read will observe
    /// EOF once the buffered bytes are drained.
    pub fn is_read_closed(&self) -> bool {
        self.mask & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }

    /// The source is in an error state (a read/write will surface it).
    pub fn is_error(&self) -> bool {
        self.mask & sys::EPOLLERR != 0
    }
}

/// Buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    capacity: usize,
}

impl Events {
    /// Room for up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        let capacity = capacity.max(1);
        Events {
            raw: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Iterate the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw.iter().map(|ev| {
            // Copy the fields out — `EpollEvent` may be packed, so no
            // references into it.
            let mask = ev.events;
            let data = ev.data;
            Event {
                mask,
                token: data as usize,
            }
        })
    }

    /// Did the last poll return no events (i.e. time out)?
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }
}

/// Handle for (de)registering event sources with a [`Poll`].
pub struct Registry {
    epfd: RawFd,
}

impl Registry {
    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        event: Option<sys::EpollEvent>,
    ) -> io::Result<()> {
        let mut ev = event.unwrap_or(sys::EpollEvent { events: 0, data: 0 });
        // DEL ignores the event argument but pre-2.6.9 kernels demanded a
        // non-null pointer, so one is always passed.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start watching `source` for `interest`, tagged with `token`.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_ADD,
            source.as_raw_fd(),
            Some(sys::EpollEvent {
                events: interest.epoll_mask(),
                data: token.0 as u64,
            }),
        )
    }

    /// Change an existing registration's interest and/or token.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_MOD,
            source.as_raw_fd(),
            Some(sys::EpollEvent {
                events: interest.epoll_mask(),
                data: token.0 as u64,
            }),
        )
    }

    /// Stop watching `source` entirely.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        unsafe {
            let _ = sys::close(self.epfd);
        }
    }
}

/// The readiness queue: an `epoll` instance.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Create a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poll {
            registry: Registry { epfd },
        })
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Block until at least one registered source is ready, the timeout
    /// elapses (`events` left empty), or — transparently retried — a
    /// signal interrupts the wait. `None` blocks indefinitely. Sub-
    /// millisecond timeouts round **up** to 1 ms so a short deadline
    /// never degenerates into a busy spin.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: std::os::raw::c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(i32::MAX as u128) as std::os::raw::c_int
                }
            }
        };
        events.raw.clear();
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.registry.epfd,
                    events.raw.as_mut_ptr(),
                    events.capacity as std::os::raw::c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                // Safety: the kernel wrote exactly `n` plain-old-data
                // entries into the buffer, and `n <= capacity`.
                unsafe { events.raw.set_len(n as usize) };
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_event_fires_for_buffered_data() {
        let mut poll = Poll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&a, Token(7), Interest::READABLE)
            .unwrap();

        // Nothing buffered yet: a short poll times out empty.
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        (&b).write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("readable event");
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());
        let mut buf = [0u8; 8];
        assert_eq!((&a).read(&mut buf).unwrap(), 4);

        // Level-triggered: once drained, the event stops repeating.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn peer_close_is_visible_and_interest_changes_apply() {
        let mut poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        poll.registry()
            .register(&server, Token(1), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.is_writable()));

        poll.registry()
            .reregister(&server, Token(2), Interest::READABLE)
            .unwrap();
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("close event");
        assert_eq!(ev.token(), Token(2));
        assert!(ev.is_readable() || ev.is_read_closed());

        poll.registry().deregister(&server).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "deregistered source must go silent");
    }

    #[test]
    fn nonblocking_connect_completes_via_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&stream, Token(3), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("connect completion event");
        assert_eq!(ev.token(), Token(3));
        assert!(ev.is_writable());
        assert!(stream.take_error().unwrap().is_none(), "connect succeeded");

        // The established stream carries real bytes end to end.
        poll.registry().deregister(&stream).unwrap();
        let client = stream.into_std();
        client.set_nonblocking(false).unwrap();
        (&client).write_all(b"hello").unwrap();
        let (mut accepted, _) = listener.accept().unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(accepted.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn refused_connect_surfaces_as_a_deferred_error() {
        // Bind then drop: the port is (momentarily) known-closed.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        // Loopback refusal may surface synchronously (connect() itself
        // errors) or as a deferred SO_ERROR after writability — both
        // are correct; neither may hang or succeed.
        let Ok(stream) = net::TcpStream::connect(addr) else {
            return;
        };
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&stream, Token(4), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty(), "refusal must produce an event");
        assert!(
            stream.take_error().unwrap().is_some(),
            "SO_ERROR must carry the refusal"
        );
    }
}
