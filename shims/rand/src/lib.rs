//! # rand (offline shim)
//!
//! A workspace-local, dependency-free re-implementation of the slice of the
//! `rand 0.9` API this repository uses. The build environment has no
//! network access to crates.io, so the real crate cannot be vendored; this
//! shim keeps the exact import paths (`rand::Rng`, `rand::SeedableRng`,
//! `rand::rngs::{SmallRng, StdRng}`, `rand::prelude::*`,
//! `rand::seq::SliceRandom`) so swapping the real dependency back in later
//! is a one-line `Cargo.toml` change.
//!
//! Generators:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the algorithm the real `SmallRng`
//!   uses on 64-bit targets), seeded through SplitMix64.
//! * [`rngs::StdRng`] — xoshiro256** behind a distinct seeding domain, so
//!   `SmallRng::seed_from_u64(s)` and `StdRng::seed_from_u64(s)` produce
//!   unrelated streams (the repo seeds both from small integers).
//!
//! Both are deterministic, portable, and fast; neither is cryptographic —
//! which matches how the repo uses them (Monte-Carlo simulation).

#![forbid(unsafe_code)]

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool: p = {p} out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a primitive type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Uniform `f64` in `[0, 1)` from 53 random mantissa bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, bound)` (Lemire's multiply-shift with
/// rejection). `bound` must be nonzero.
#[inline]
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Types [`Rng::random_range`] can produce. The per-type sampling logic
/// lives here so that `SampleRange` has a single blanket impl per range
/// shape — mirroring the real crate's structure, which is what lets the
/// compiler unify the range's element type with the result type during
/// inference (e.g. `base + rng.random_range(-0.02..0.02)`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "random_range: empty range");
                let width = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(uniform_below(rng, width) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "random_range: empty range");
                let width = (hi as $u).wrapping_sub(lo as $u) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, width + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "random_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + u * (hi - lo);
                // Guard the open upper bound against rounding (measure-zero
                // event; remapping it to the lower bound keeps uniformity).
                if v >= hi {
                    lo
                } else {
                    v
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "random_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Construction by drawing a seed from another RNG.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

/// SplitMix64 step — the standard seed expander for xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn expand_seed(seed: u64, domain: u64) -> [u64; 4] {
    let mut s = seed ^ domain;
    let mut out = [0u64; 4];
    for slot in &mut out {
        *slot = splitmix64(&mut s);
    }
    // xoshiro must not start from the all-zero state.
    if out == [0; 4] {
        out[0] = 0x9E3779B97F4A7C15;
    }
    out
}

/// The shipped generators.
pub mod rngs {
    use super::{expand_seed, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, statistically strong.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                s: expand_seed(seed, 0),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// xoshiro256** behind a distinct seeding domain. Deterministic and
    /// portable; *not* cryptographic (unlike the real `StdRng`), which is
    /// fine for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                s: expand_seed(seed, 0x5D41_402A_BC4B_2A76),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{uniform_below, RngCore};

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection from slices.
    pub trait IndexedRandom {
        /// Element type.
        type Output;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// The glob import the repo's generators use.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn small_and_std_streams_differ() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(2..12);
            assert!((2..12).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1000 {
            let v: u64 = rng.random_range(0..=3);
            assert!(v <= 3);
            let w: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(0.25..4.0);
            assert!((0.25..4.0).contains(&v));
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&u));
            let s: f64 = rng.random_range(-0.02..0.02);
            assert!((-0.02..0.02).contains(&s));
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mean: f64 = (0..100_000)
            .map(|_| rng.random_range(0.0..1.0))
            .sum::<f64>()
            / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn choose_is_some_iff_nonempty() {
        let mut rng = SmallRng::seed_from_u64(9);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
