//! # proptest (offline shim)
//!
//! The build environment has no crates.io access, so this workspace ships a
//! minimal re-implementation of the `proptest` surface the repo's tests
//! use: the [`proptest!`] macro, range/tuple/`Just`/`any`/`collection::vec`
//! strategies, `prop_map`/`prop_flat_map`, the `prop_assert*` macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics: each generated test runs `cases` random inputs drawn from a
//! seed derived from the test's name, so failures are reproducible
//! run-to-run. Unlike the real crate there is **no shrinking** — a failing
//! case panics with the case index; rerun under a debugger or log the
//! sampled values to investigate. That trade-off keeps the shim ~300 lines
//! and dependency-free while preserving the property coverage.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test randomness source handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG derived from a test identifier (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration (only the `cases` knob is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Box the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Whole-domain strategy for primitive types (`any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical whole-domain distribution.
pub trait Arbitrary {
    /// Draw one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length distributions accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` strategy: `size` elements of `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Property assertion: like `assert!` (no shrinking, so a plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Filter out uninteresting cases (skips to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Declare property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs (attributes,
/// including `#[test]`, are written by the caller as in real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut __proptest_rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __proptest_case in 0..cfg.cases {
                let _ = __proptest_case;
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
}

/// The glob import used by the repo's test modules.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuple_and_vec_strategies_compose(
            ops in collection::vec((0u32..50, any::<bool>()), 0..40),
            scale in 1u64..6,
        ) {
            prop_assert!(ops.len() < 40);
            for (v, _flag) in ops {
                prop_assert!(v < 50);
            }
            prop_assert!((1..6).contains(&scale));
        }

        #[test]
        fn flat_map_threads_dependent_values(
            (n, xs) in (1usize..5).prop_flat_map(|n| (Just(n), collection::vec(0.0f64..1.0, n)))
        ) {
            prop_assert_eq!(xs.len(), n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let sample = |label: &str| {
            let mut rng = crate::TestRng::deterministic(label);
            (0u32..1000).sample(&mut rng)
        };
        assert_eq!(sample("x"), sample("x"));
    }
}
