//! # rayon (offline shim)
//!
//! The build environment cannot fetch crates.io, so this workspace ships a
//! small rayon-compatible data-parallelism layer implemented on
//! `std::thread::scope`: `into_par_iter()` / `par_iter()` → `map` →
//! `collect()`/`for_each()`, plus [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`] for pinning the worker count (which the
//! simulator's determinism tests exercise).
//!
//! Work distribution is dynamic — workers pull the next item index from a
//! shared atomic counter, so uneven item costs (LP-heavy policy builds next
//! to cheap baselines) balance automatically, exactly like the crossbeam
//! channel loop this replaces. Output order is always item order, so
//! results are bitwise independent of the thread count and interleaving.
//!
//! The surface is the subset the workspace uses; swapping the real rayon
//! back in is a one-line `Cargo.toml` change.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`]
    /// (0 = use all available cores).
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|c| c.get());
    if installed != 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
}

/// Builder for a fixed-size [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder (default: all available cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the worker count (0 = all available cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Never fails in the shim; the `Result` mirrors the
    /// real rayon signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type mirroring rayon's (the shim never produces it).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle that scopes parallel operations to a fixed worker count.
///
/// The shim spawns scoped threads per operation rather than keeping
/// persistent workers; `install` only pins how many are spawned.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f`; parallel operations inside use this pool's worker count.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let out = f();
            c.set(prev);
            out
        })
    }

    /// The pinned worker count (0 = all available cores).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads != 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        }
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Make the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Borrowing conversion (`par_iter()` on slices and vectors).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// Make the parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

macro_rules! impl_into_par_iter_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_into_par_iter_range!(u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// An eager parallel iterator: the item list is materialized up front and
/// consumed by worker threads through an atomic cursor.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Map each item through `f` in parallel.
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on each item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        self.map(|t| {
            f(t);
        })
        .run();
    }

    /// Map with worker-local state: `init` runs once per worker thread and
    /// the resulting value is threaded through that worker's calls. Used to
    /// amortize expensive per-policy construction (LP solves) across the
    /// trials a worker executes.
    pub fn map_init<I, O, INIT, F>(self, init: INIT, f: F) -> ParMapInit<T, INIT, F>
    where
        I: Send,
        O: Send,
        INIT: Fn() -> I + Sync,
        F: Fn(&mut I, T) -> O + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

/// A mapped parallel iterator with worker-local state.
pub struct ParMapInit<T: Send, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
}

impl<T, I, O, INIT, F> ParMapInit<T, INIT, F>
where
    T: Send,
    I: Send,
    O: Send,
    INIT: Fn() -> I + Sync,
    F: Fn(&mut I, T) -> O + Sync,
{
    /// Execute and gather outputs **in item order**.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        self.run().into_iter().collect()
    }

    fn run(self) -> Vec<O> {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            let mut state = (self.init)();
            return self
                .items
                .into_iter()
                .map(|t| (self.f)(&mut state, t))
                .collect();
        }

        let cells: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let init = &self.init;
        let f = &self.f;

        let mut gathered: Vec<(usize, O)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cells = &cells;
                let cursor = &cursor;
                handles.push(scope.spawn(move || {
                    let mut state = init();
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= cells.len() {
                            break;
                        }
                        let item = cells[i]
                            .lock()
                            .expect("cell lock poisoned")
                            .take()
                            .expect("item claimed twice");
                        local.push((i, f(&mut state, item)));
                    }
                    local
                }));
            }
            for h in handles {
                gathered.extend(h.join().expect("worker panicked"));
            }
        });

        gathered.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(gathered.len(), n);
        gathered.into_iter().map(|(_, o)| o).collect()
    }
}

/// A mapped parallel iterator; terminal ops execute it.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> ParMap<T, F> {
    /// Execute and gather outputs **in item order**, regardless of which
    /// worker computed them.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Execute and sum the outputs.
    pub fn sum<S: std::iter::Sum<O>>(self) -> S {
        self.run().into_iter().sum()
    }

    fn run(self) -> Vec<O> {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            return self.items.into_iter().map(self.f).collect();
        }

        // Items parked in per-index cells so any worker can claim index i;
        // the mutex is uncontended (each cell is locked exactly once).
        let cells: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let f = &self.f;

        let mut gathered: Vec<(usize, O)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cells = &cells;
                let cursor = &cursor;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= cells.len() {
                            break;
                        }
                        let item = cells[i]
                            .lock()
                            .expect("cell lock poisoned")
                            .take()
                            .expect("item claimed twice");
                        local.push((i, f(item)));
                    }
                    local
                }));
            }
            for h in handles {
                gathered.extend(h.join().expect("worker panicked"));
            }
        });

        gathered.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(gathered.len(), n);
        gathered.into_iter().map(|(_, o)| o).collect()
    }
}

/// The glob import parallel call-sites use.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn order_is_thread_count_invariant() {
        let run = |threads| {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    (0..257usize)
                        .into_par_iter()
                        .map(|i| i.wrapping_mul(0x9E3779B9))
                        .collect::<Vec<_>>()
                })
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference);
        }
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn install_restores_previous_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
        });
        assert_ne!(POOL_THREADS.with(|c| c.get()), 3);
    }

    #[test]
    fn uneven_workloads_balance() {
        let out: Vec<u64> = (0..64u64)
            .into_par_iter()
            .map(|i| {
                // Spin proportional to an uneven cost profile.
                let mut acc = i;
                for _ in 0..(i % 7) * 1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc ^ i
            })
            .collect();
        assert_eq!(out.len(), 64);
    }
}
