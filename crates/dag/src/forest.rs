//! Directed forests and the rank-based chain decomposition (Appendix B).
//!
//! A *directed forest* here is a collection of rooted trees whose edges are
//! all oriented away from the roots (**out-forest**: a job precedes its
//! children) or all toward the roots (**in-forest**: a job precedes its
//! parent). Appendix B of the paper reduces SUU-T to SUU-C by decomposing
//! the forest into `O(log n)` *blocks* of vertex-disjoint chains, using the
//! technique of Kumar, Marathe, Parthasarathy and Srinivasan [7].
//!
//! **Decomposition.** For each vertex `v` let `s(v)` be the size of the
//! subtree hanging off `v` (descendants for out-trees, predecessors for
//! in-trees, both counting `v`), and `rank(v) = ⌊log₂ s(v)⌋`. A vertex can
//! have at most one child of equal rank — two children `c₁, c₂` with
//! `rank = rank(v)` would give `s(c₁) + s(c₂) ≥ 2·2^rank > s(v) − 1`,
//! a contradiction — so the equal-rank classes form vertex-disjoint paths.
//! Along any root-to-leaf path ranks are monotone, so executing rank
//! classes in monotone order (decreasing for out-forests, increasing for
//! in-forests) respects every precedence edge. Ranks live in
//! `0..=⌊log₂ n⌋`, giving at most `⌊log₂ n⌋ + 1` blocks.

use crate::{ChainSet, Dag};

/// Orientation of a forest's precedence edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestKind {
    /// Each vertex has at most one predecessor: its tree parent. The root
    /// of each tree executes first.
    Out,
    /// Each vertex has at most one successor: its tree parent. Leaves
    /// execute first, roots last.
    In,
}

/// One block of the rank decomposition: vertex-disjoint chains, each listed
/// in precedence order.
pub type ChainBlock = Vec<Vec<u32>>;

/// A directed forest over jobs `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Forest {
    n: usize,
    kind: ForestKind,
    /// Tree parent of each vertex (`None` for roots). For `Out` forests the
    /// parent *precedes* the vertex; for `In` forests the vertex precedes
    /// its parent.
    parent: Vec<Option<u32>>,
}

/// Errors constructing a [`Forest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestError {
    /// `parent[v]` referenced a vertex `>= n`.
    ParentOutOfRange(u32),
    /// A vertex was its own parent.
    SelfParent(u32),
    /// Parent pointers contain a cycle.
    Cycle(u32),
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForestError::ParentOutOfRange(v) => write!(f, "parent of {v} out of range"),
            ForestError::SelfParent(v) => write!(f, "vertex {v} is its own parent"),
            ForestError::Cycle(v) => write!(f, "parent pointers cycle through {v}"),
        }
    }
}

impl std::error::Error for ForestError {}

impl Forest {
    /// Build a forest from parent pointers.
    pub fn new(kind: ForestKind, parent: Vec<Option<u32>>) -> Result<Self, ForestError> {
        let n = parent.len();
        for (v, &p) in parent.iter().enumerate() {
            if let Some(p) = p {
                if p as usize >= n {
                    return Err(ForestError::ParentOutOfRange(v as u32));
                }
                if p as usize == v {
                    return Err(ForestError::SelfParent(v as u32));
                }
            }
        }
        // Cycle check: walk parents with a visitation stamp.
        let mut state = vec![0u32; n]; // 0 = unvisited, else stamp
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let stamp = start as u32 + 1;
            let mut v = start;
            loop {
                if state[v] == stamp {
                    return Err(ForestError::Cycle(v as u32));
                }
                if state[v] != 0 {
                    break; // reached an already-validated path
                }
                state[v] = stamp;
                match parent[v] {
                    Some(p) => v = p as usize,
                    None => break,
                }
            }
        }
        Ok(Forest { n, kind, parent })
    }

    /// An out-forest: `parent[v]` precedes `v`.
    pub fn out_forest(parent: Vec<Option<u32>>) -> Result<Self, ForestError> {
        Forest::new(ForestKind::Out, parent)
    }

    /// An in-forest: `v` precedes `parent[v]`.
    pub fn in_forest(parent: Vec<Option<u32>>) -> Result<Self, ForestError> {
        Forest::new(ForestKind::In, parent)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Orientation.
    pub fn kind(&self) -> ForestKind {
        self.kind
    }

    /// Tree parent of `v` (independent of orientation).
    pub fn parent_of(&self, v: u32) -> Option<u32> {
        self.parent[v as usize]
    }

    /// Equivalent precedence DAG.
    pub fn to_dag(&self) -> Dag {
        let mut dag = Dag::new(self.n);
        for (v, &p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                match self.kind {
                    ForestKind::Out => dag.add_edge(p, v as u32),
                    ForestKind::In => dag.add_edge(v as u32, p),
                }
            }
        }
        dag
    }

    /// Subtree sizes `s(v)` (self + all vertices whose parent-path passes
    /// through `v`).
    fn subtree_sizes(&self) -> Vec<u32> {
        let mut size = vec![1u32; self.n];
        // Children lists + topological (leaves-first) processing.
        let mut order: Vec<u32> = (0..self.n as u32).collect();
        // Sort by depth descending so children are processed before parents.
        let mut depth = vec![0u32; self.n];
        for v in 0..self.n {
            // Compute depth by walking up with memoization.
            let mut path = Vec::new();
            let mut u = v;
            while depth[u] == 0 && self.parent[u].is_some() {
                path.push(u);
                u = self.parent[u].unwrap() as usize;
            }
            let mut d = depth[u];
            for &w in path.iter().rev() {
                d += 1;
                depth[w] = d;
            }
        }
        order.sort_by(|&a, &b| depth[b as usize].cmp(&depth[a as usize]));
        for &v in &order {
            if let Some(p) = self.parent[v as usize] {
                size[p as usize] += size[v as usize];
            }
        }
        size
    }

    /// Rank of each vertex: `⌊log₂ s(v)⌋`.
    pub fn ranks(&self) -> Vec<u32> {
        self.subtree_sizes()
            .iter()
            .map(|&s| 31 - s.leading_zeros())
            .collect()
    }

    /// The rank decomposition: blocks of vertex-disjoint chains such that
    /// executing blocks in the returned order respects all precedence
    /// constraints. At most `⌊log₂ n⌋ + 1` blocks.
    pub fn rank_decomposition(&self) -> Vec<ChainBlock> {
        if self.n == 0 {
            return Vec::new();
        }
        let ranks = self.ranks();
        let max_rank = *ranks.iter().max().unwrap();

        // For each vertex, its same-rank child (at most one exists).
        let mut same_rank_child: Vec<Option<u32>> = vec![None; self.n];
        let mut has_same_rank_parent = vec![false; self.n];
        for v in 0..self.n {
            if let Some(p) = self.parent[v] {
                if ranks[p as usize] == ranks[v] {
                    debug_assert!(
                        same_rank_child[p as usize].is_none(),
                        "two same-rank children under one parent contradicts the rank lemma"
                    );
                    same_rank_child[p as usize] = Some(v as u32);
                    has_same_rank_parent[v] = true;
                }
            }
        }

        // Chains per rank: start at vertices without a same-rank parent and
        // follow same-rank children. Chain order is ancestor -> descendant.
        let mut blocks_by_rank: Vec<ChainBlock> = vec![Vec::new(); max_rank as usize + 1];
        for v in 0..self.n as u32 {
            if has_same_rank_parent[v as usize] {
                continue;
            }
            let mut chain = vec![v];
            let mut u = v;
            while let Some(c) = same_rank_child[u as usize] {
                chain.push(c);
                u = c;
            }
            blocks_by_rank[ranks[v as usize] as usize].push(chain);
        }

        // Out-forests: ranks decrease root->leaf, so execute high ranks
        // first. In-forests: the tree parent is a *successor*, ranks
        // decrease from the final root toward the first-executed leaves, so
        // execute low ranks... careful: for In, "ancestor -> descendant"
        // chain order above follows parent pointers downward, which is
        // *reverse* precedence order; flip each chain.
        let mut blocks: Vec<ChainBlock> = blocks_by_rank
            .into_iter()
            .rev() // highest rank first
            .filter(|b| !b.is_empty())
            .collect();
        if self.kind == ForestKind::In {
            blocks.reverse(); // lowest rank first
            for block in &mut blocks {
                for chain in block.iter_mut() {
                    chain.reverse();
                }
            }
        }
        blocks
    }

    /// Convenience: decomposition blocks as [`ChainSet`]s over the *full*
    /// job-id space, with jobs outside the block omitted (each block is a
    /// partial chain set; use [`ChainSet::new`] semantics per sub-instance
    /// instead when re-indexing).
    pub fn decomposition_chain_sets(&self) -> Vec<Vec<Vec<u32>>> {
        self.rank_decomposition()
    }
}

impl ChainSet {
    /// Flatten a forest block (vertex-disjoint chains over a subset of
    /// jobs) plus the remaining jobs as completed/absent into a `ChainSet`
    /// over a compact renumbering. Returns `(chain set, old-id per new-id)`.
    pub fn from_block(block: &[Vec<u32>]) -> (ChainSet, Vec<u32>) {
        let mut old_ids = Vec::new();
        let mut renumbered: Vec<Vec<u32>> = Vec::with_capacity(block.len());
        for chain in block {
            let mut new_chain = Vec::with_capacity(chain.len());
            for &j in chain {
                new_chain.push(old_ids.len() as u32);
                old_ids.push(j);
            }
            renumbered.push(new_chain);
        }
        let cs = ChainSet::new(old_ids.len(), renumbered).expect("block chains are disjoint");
        (cs, old_ids)
    }
}
