//! Seeded random precedence-structure generators.
//!
//! These produce the workload shapes used throughout the paper's
//! motivation and our experiments: disjoint chains (SUU-C), random forests
//! (SUU-T), layered DAGs, and the complete-bipartite dependency pattern of
//! a two-phase MapReduce computation (Section 1 of the paper).

use crate::{ChainSet, Dag, Forest};
use rand::prelude::*;

/// Partition jobs `0..n` into exactly `num_chains` non-empty chains with
/// random sizes (uniform composition), random job placement.
///
/// Panics if `num_chains == 0` or `num_chains > n` (with `n > 0`).
pub fn random_chain_set<R: Rng>(n: usize, num_chains: usize, rng: &mut R) -> ChainSet {
    assert!(num_chains >= 1 && num_chains <= n.max(1), "bad chain count");
    if n == 0 {
        return ChainSet::new(0, vec![]).unwrap();
    }
    let mut jobs: Vec<u32> = (0..n as u32).collect();
    jobs.shuffle(rng);
    // Random composition of n into num_chains positive parts: choose
    // num_chains-1 distinct cut points in 1..n.
    let mut cuts: Vec<usize> = (1..n).collect();
    cuts.shuffle(rng);
    let mut cuts: Vec<usize> = cuts.into_iter().take(num_chains - 1).collect();
    cuts.sort_unstable();
    cuts.push(n);
    let mut chains = Vec::with_capacity(num_chains);
    let mut start = 0;
    for &end in &cuts {
        chains.push(jobs[start..end].to_vec());
        start = end;
    }
    ChainSet::new(n, chains).expect("partition by construction")
}

/// Chains of (approximately) equal length `len`; the final chain absorbs
/// the remainder.
pub fn equal_chains(n: usize, len: usize) -> ChainSet {
    assert!(len >= 1);
    let mut chains = Vec::new();
    let mut chain = Vec::new();
    for j in 0..n as u32 {
        chain.push(j);
        if chain.len() == len {
            chains.push(std::mem::take(&mut chain));
        }
    }
    if !chain.is_empty() {
        chains.push(chain);
    }
    ChainSet::new(n, chains).expect("partition by construction")
}

/// Random out-forest via preferential-free random attachment: vertices
/// `0..num_roots` are roots; every other vertex picks a uniformly random
/// parent among lower-numbered vertices.
pub fn random_out_forest<R: Rng>(n: usize, num_roots: usize, rng: &mut R) -> Forest {
    assert!(num_roots >= 1 || n == 0, "need at least one root");
    let mut parent = vec![None; n];
    for (v, slot) in parent.iter_mut().enumerate().skip(num_roots.min(n)) {
        *slot = Some(rng.random_range(0..v) as u32);
    }
    Forest::out_forest(parent).expect("acyclic by construction")
}

/// Random in-forest: mirror of [`random_out_forest`] (leaves execute
/// first, roots last).
pub fn random_in_forest<R: Rng>(n: usize, num_roots: usize, rng: &mut R) -> Forest {
    assert!(num_roots >= 1 || n == 0, "need at least one root");
    let mut parent = vec![None; n];
    for (v, slot) in parent.iter_mut().enumerate().skip(num_roots.min(n)) {
        *slot = Some(rng.random_range(0..v) as u32);
    }
    Forest::in_forest(parent).expect("acyclic by construction")
}

/// Complete binary out-tree with `depth` levels (`2^depth - 1` vertices).
pub fn binary_out_tree(depth: u32) -> Forest {
    let n = (1usize << depth) - 1;
    let parent = (0..n)
        .map(|v| {
            if v == 0 {
                None
            } else {
                Some(((v - 1) / 2) as u32)
            }
        })
        .collect();
    Forest::out_forest(parent).expect("valid binary tree")
}

/// A "caterpillar" chain-with-leaves out-tree: a spine of length `spine`,
/// each spine vertex sprouting `leaves` leaf children. Exercises the rank
/// decomposition's unbalanced case.
pub fn caterpillar(spine: usize, leaves: usize) -> Forest {
    let n = spine + spine * leaves;
    let mut parent = vec![None; n];
    for (s, slot) in parent.iter_mut().enumerate().take(spine).skip(1) {
        *slot = Some((s - 1) as u32);
    }
    for s in 0..spine {
        for l in 0..leaves {
            parent[spine + s * leaves + l] = Some(s as u32);
        }
    }
    Forest::out_forest(parent).expect("valid caterpillar")
}

/// Layered random DAG: `layers` layers of roughly equal size; each vertex
/// in layer `k > 0` receives an edge from each vertex of layer `k-1`
/// independently with probability `density`, plus one guaranteed parent to
/// keep layers meaningful.
pub fn layered_dag<R: Rng>(n: usize, layers: usize, density: f64, rng: &mut R) -> Dag {
    assert!(layers >= 1);
    let mut dag = Dag::new(n);
    if n == 0 {
        return dag;
    }
    let per = n.div_ceil(layers);
    let layer_of = |v: usize| (v / per).min(layers - 1);
    for v in 0..n {
        let lv = layer_of(v);
        if lv == 0 {
            continue;
        }
        let prev: Vec<u32> = (0..n as u32)
            .filter(|&u| layer_of(u as usize) == lv - 1)
            .collect();
        if prev.is_empty() {
            continue;
        }
        let mut got_parent = false;
        for &u in &prev {
            if rng.random_bool(density) {
                dag.add_edge(u, v as u32);
                got_parent = true;
            }
        }
        if !got_parent {
            let u = prev[rng.random_range(0..prev.len())];
            dag.add_edge(u, v as u32);
        }
    }
    dag
}

/// The two-phase MapReduce dependency pattern from the paper's
/// introduction: `maps` independent map jobs, `reduces` reduce jobs, and a
/// complete bipartite constraint set (every reduce depends on every map).
pub fn mapreduce_bipartite(maps: usize, reduces: usize) -> Dag {
    let n = maps + reduces;
    let mut dag = Dag::new(n);
    for m in 0..maps as u32 {
        for r in 0..reduces as u32 {
            dag.add_edge(m, maps as u32 + r);
        }
    }
    dag
}
