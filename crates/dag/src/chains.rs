//! Disjoint chains: the SUU-C precedence structure.

use crate::Dag;

/// A partition of the job set `0..n` into disjoint chains.
///
/// Every job appears in exactly one chain (singletons are fine — an
/// independent job is a length-1 chain). Within a chain, each job precedes
/// the next; there are no cross-chain constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSet {
    n: usize,
    chains: Vec<Vec<u32>>,
    /// `position[j] = (chain index, index within chain)`.
    position: Vec<(u32, u32)>,
}

/// Errors constructing a [`ChainSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainSetError {
    /// A job id `>= n` appeared in a chain.
    JobOutOfRange(u32),
    /// A job appeared twice (possibly in different chains).
    DuplicateJob(u32),
    /// Some job in `0..n` appeared in no chain.
    MissingJob(u32),
}

impl std::fmt::Display for ChainSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainSetError::JobOutOfRange(j) => write!(f, "job {j} out of range"),
            ChainSetError::DuplicateJob(j) => write!(f, "job {j} appears twice"),
            ChainSetError::MissingJob(j) => write!(f, "job {j} missing from all chains"),
        }
    }
}

impl std::error::Error for ChainSetError {}

impl ChainSet {
    /// Build a chain set over jobs `0..n`, validating that `chains` is a
    /// partition. Empty chains are dropped.
    pub fn new(n: usize, chains: Vec<Vec<u32>>) -> Result<Self, ChainSetError> {
        let mut position = vec![(u32::MAX, u32::MAX); n];
        let mut seen = vec![false; n];
        let chains: Vec<Vec<u32>> = chains.into_iter().filter(|c| !c.is_empty()).collect();
        for (ci, chain) in chains.iter().enumerate() {
            for (pi, &j) in chain.iter().enumerate() {
                if j as usize >= n {
                    return Err(ChainSetError::JobOutOfRange(j));
                }
                if seen[j as usize] {
                    return Err(ChainSetError::DuplicateJob(j));
                }
                seen[j as usize] = true;
                position[j as usize] = (ci as u32, pi as u32);
            }
        }
        if let Some(j) = seen.iter().position(|&s| !s) {
            return Err(ChainSetError::MissingJob(j as u32));
        }
        Ok(ChainSet {
            n,
            chains,
            position,
        })
    }

    /// `n` singleton chains — the independent-jobs special case.
    pub fn singletons(n: usize) -> Self {
        ChainSet::new(n, (0..n as u32).map(|j| vec![j]).collect()).expect("valid by construction")
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.n
    }

    /// Number of (non-empty) chains.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// The chains, each in precedence order.
    pub fn chains(&self) -> &[Vec<u32>] {
        &self.chains
    }

    /// Length of the longest chain (the paper's `Z`).
    pub fn max_chain_len(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `(chain index, position within chain)` of job `j`.
    pub fn position_of(&self, j: u32) -> (usize, usize) {
        let (c, p) = self.position[j as usize];
        (c as usize, p as usize)
    }

    /// The job immediately preceding `j` in its chain, if any.
    pub fn predecessor_of(&self, j: u32) -> Option<u32> {
        let (c, p) = self.position_of(j);
        (p > 0).then(|| self.chains[c][p - 1])
    }

    /// Precedence DAG equivalent to this chain set.
    pub fn to_dag(&self) -> Dag {
        let mut dag = Dag::new(self.n);
        for chain in &self.chains {
            for w in chain.windows(2) {
                dag.add_edge(w[0], w[1]);
            }
        }
        dag
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;

    #[test]
    fn valid_partition() {
        let cs = ChainSet::new(5, vec![vec![0, 2, 4], vec![1], vec![3]]).unwrap();
        assert_eq!(cs.num_chains(), 3);
        assert_eq!(cs.max_chain_len(), 3);
        assert_eq!(cs.position_of(4), (0, 2));
        assert_eq!(cs.predecessor_of(4), Some(2));
        assert_eq!(cs.predecessor_of(0), None);
    }

    #[test]
    fn duplicate_rejected() {
        assert_eq!(
            ChainSet::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap_err(),
            ChainSetError::DuplicateJob(1)
        );
    }

    #[test]
    fn missing_rejected() {
        assert_eq!(
            ChainSet::new(3, vec![vec![0, 1]]).unwrap_err(),
            ChainSetError::MissingJob(2)
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(
            ChainSet::new(2, vec![vec![0, 5], vec![1]]).unwrap_err(),
            ChainSetError::JobOutOfRange(5)
        );
    }

    #[test]
    fn empty_chains_dropped() {
        let cs = ChainSet::new(2, vec![vec![], vec![0], vec![], vec![1]]).unwrap();
        assert_eq!(cs.num_chains(), 2);
    }

    #[test]
    fn to_dag_has_chain_edges() {
        let cs = ChainSet::new(4, vec![vec![0, 1, 2], vec![3]]).unwrap();
        let dag = cs.to_dag();
        assert_eq!(dag.num_edges(), 2);
        assert_eq!(dag.longest_path_len(), 3);
        assert!(dag.is_acyclic());
    }

    #[test]
    fn singletons_are_independent() {
        let cs = ChainSet::singletons(4);
        assert_eq!(cs.num_chains(), 4);
        assert_eq!(cs.to_dag().num_edges(), 0);
    }
}
