//! General DAG representation and classic queries.

use suu_flow::BipartiteMatcher;

/// A directed acyclic graph over vertices `0..n` where an edge `u -> v`
/// means "`u` precedes `v`" (job `v` becomes eligible only after `u`
/// completes).
///
/// Acyclicity is *not* enforced on construction (edges can be added
/// incrementally); call [`Dag::topo_order`] / [`Dag::is_acyclic`] to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    n: usize,
    succ: Vec<Vec<u32>>,
    pred: Vec<Vec<u32>>,
}

impl Dag {
    /// Edgeless DAG on `n` vertices (i.e. independent jobs).
    pub fn new(n: usize) -> Self {
        Dag {
            n,
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
        }
    }

    /// Build from an edge list.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut dag = Dag::new(n);
        for &(u, v) in edges {
            dag.add_edge(u, v);
        }
        dag
    }

    /// Add the precedence edge `u -> v` (`u` precedes `v`).
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "vertex out of range"
        );
        assert_ne!(u, v, "self-loop");
        self.succ[u as usize].push(v);
        self.pred[v as usize].push(u);
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Direct successors of `v`.
    pub fn successors(&self, v: u32) -> &[u32] {
        &self.succ[v as usize]
    }

    /// Direct predecessors of `v`.
    pub fn predecessors(&self, v: u32) -> &[u32] {
        &self.pred[v as usize]
    }

    /// In-degree of every vertex.
    pub fn indegrees(&self) -> Vec<u32> {
        self.pred.iter().map(|p| p.len() as u32).collect()
    }

    /// Kahn topological order, or `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<u32>> {
        let mut indeg = self.indegrees();
        let mut queue: Vec<u32> = (0..self.n as u32)
            .filter(|&v| indeg[v as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for &v in &self.succ[u as usize] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// `true` if the graph has no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Number of vertices on the longest directed path (the "dilation"
    /// lower bound for any schedule). Panics on cyclic graphs.
    pub fn longest_path_len(&self) -> usize {
        let order = self.topo_order().expect("longest_path_len on cyclic graph");
        let mut depth = vec![1usize; self.n];
        for &u in &order {
            for &v in &self.succ[u as usize] {
                depth[v as usize] = depth[v as usize].max(depth[u as usize] + 1);
            }
        }
        depth.iter().copied().max().unwrap_or(0)
    }

    /// Reachability (transitive closure) as bit rows: `closure[u]` has bit
    /// `v` set iff there is a directed path `u -> v` (u != v).
    ///
    /// `O(n * E / 64)` time, `O(n^2/64)` space — intended for the moderate
    /// `n` used in width computations and exact-OPT experiments.
    pub fn transitive_closure(&self) -> Vec<Vec<u64>> {
        let words = self.n.div_ceil(64);
        let mut closure = vec![vec![0u64; words]; self.n];
        let order = self
            .topo_order()
            .expect("transitive_closure on cyclic graph");
        // Process in reverse topological order: closure[u] = union over
        // successors v of ({v} ∪ closure[v]).
        for &u in order.iter().rev() {
            let u = u as usize;
            // Collect into a scratch row to appease the borrow checker
            // without cloning every successor row.
            let mut row = std::mem::take(&mut closure[u]);
            for &v in &self.succ[u] {
                let v = v as usize;
                row[v / 64] |= 1u64 << (v % 64);
                for (w, &bits) in row.iter_mut().zip(&closure[v]) {
                    *w |= bits;
                }
            }
            closure[u] = row;
        }
        closure
    }

    /// Width of the partial order: the maximum antichain size.
    ///
    /// By Dilworth's theorem this equals the minimum number of chains
    /// covering the order, computed as `n - max_matching` on the bipartite
    /// "reachability" graph. Malewicz proved SUU is NP-hard once width or
    /// machine count is unbounded, so experiment configs use this to stay
    /// in tractable regimes for exact baselines.
    pub fn width(&self) -> usize {
        let closure = self.transitive_closure();
        let mut matcher = BipartiteMatcher::new(self.n, self.n);
        for (u, row) in closure.iter().enumerate() {
            for v in 0..self.n {
                if row[v / 64] >> (v % 64) & 1 == 1 {
                    matcher.add_edge(u, v);
                }
            }
        }
        self.n - matcher.solve()
    }

    /// All vertices with no predecessors.
    pub fn sources(&self) -> Vec<u32> {
        (0..self.n as u32)
            .filter(|&v| self.pred[v as usize].is_empty())
            .collect()
    }

    /// All vertices with no successors.
    pub fn sinks(&self) -> Vec<u32> {
        (0..self.n as u32)
            .filter(|&v| self.succ[v as usize].is_empty())
            .collect()
    }
}
