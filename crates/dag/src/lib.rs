//! # suu-dag — precedence-graph machinery for SUU
//!
//! The SUU problem (Crutchfield et al., SPAA 2008) models precedence
//! constraints as a DAG over jobs; the paper's algorithms specialize to
//! **independent jobs**, **disjoint chains** (SUU-C) and **directed
//! forests** (SUU-T). This crate provides:
//!
//! * [`Dag`] — general DAG: topological order, cycle detection, longest
//!   path, width (maximum antichain, via Dilworth's theorem and bipartite
//!   matching on the transitive closure).
//! * [`ChainSet`] — a partition of jobs into totally ordered chains, the
//!   input shape for SUU-C.
//! * [`Forest`] — collections of in-trees or out-trees with the **rank
//!   decomposition** of Kumar et al. used by Appendix B: split a forest
//!   into at most `⌊log₂ n⌋ + 1` *blocks*, each a set of vertex-disjoint
//!   chains, such that executing blocks in order respects all precedence
//!   constraints.
//! * [`generators`] — seeded random chains, forests, layered DAGs, and the
//!   complete-bipartite "MapReduce" shape the paper's introduction cites.
//!
//! All vertex ids are `u32` job indices `0..n`.

mod chains;
mod dag;
mod forest;
pub mod generators;

pub use chains::ChainSet;
pub use dag::Dag;
pub use forest::{ChainBlock, Forest, ForestKind};

#[cfg(test)]
mod tests;
