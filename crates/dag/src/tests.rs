//! Tests for DAG queries, forests and the rank decomposition.

use crate::{generators, Dag, Forest, ForestKind};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::SmallRng;

#[test]
fn topo_order_simple() {
    let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
    let order = dag.topo_order().unwrap();
    let pos: Vec<usize> = (0..4u32)
        .map(|v| order.iter().position(|&x| x == v).unwrap())
        .collect();
    assert!(pos[0] < pos[1] && pos[1] < pos[2] && pos[0] < pos[3]);
}

#[test]
fn cycle_detected() {
    let mut dag = Dag::new(3);
    dag.add_edge(0, 1);
    dag.add_edge(1, 2);
    dag.add_edge(2, 0);
    assert!(!dag.is_acyclic());
    assert!(dag.topo_order().is_none());
}

#[test]
fn longest_path_counts_vertices() {
    let dag = Dag::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
    assert_eq!(dag.longest_path_len(), 4);
    assert_eq!(Dag::new(3).longest_path_len(), 1);
    assert_eq!(Dag::new(0).longest_path_len(), 0);
}

#[test]
fn width_of_antichain_and_chain() {
    // Independent jobs: width = n.
    assert_eq!(Dag::new(6).width(), 6);
    // A single chain: width = 1.
    let chain = Dag::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    assert_eq!(chain.width(), 1);
    // Diamond 0 -> {1,2} -> 3: width = 2.
    let diamond = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
    assert_eq!(diamond.width(), 2);
}

#[test]
fn width_of_bipartite() {
    let dag = generators::mapreduce_bipartite(3, 4);
    assert_eq!(dag.width(), 4);
    assert_eq!(dag.longest_path_len(), 2);
}

#[test]
fn transitive_closure_reaches_descendants() {
    let dag = Dag::from_edges(4, &[(0, 1), (1, 2)]);
    let tc = dag.transitive_closure();
    assert_eq!(tc[0][0] & 0b1110, 0b0110); // 0 reaches 1,2 not 3
    assert_eq!(tc[1][0], 0b0100);
    assert_eq!(tc[2][0], 0);
    assert_eq!(tc[3][0], 0);
}

#[test]
fn sources_and_sinks() {
    let dag = Dag::from_edges(4, &[(0, 1), (2, 1)]);
    assert_eq!(dag.sources(), vec![0, 2, 3]);
    assert_eq!(dag.sinks(), vec![1, 3]);
}

// ---------- forests ----------

#[test]
fn forest_rejects_cycle() {
    let err = Forest::out_forest(vec![Some(1), Some(0)]).unwrap_err();
    assert!(matches!(err, crate::forest::ForestError::Cycle(_)));
}

#[test]
fn forest_rejects_self_parent() {
    let err = Forest::out_forest(vec![Some(0)]).unwrap_err();
    assert!(matches!(err, crate::forest::ForestError::SelfParent(0)));
}

#[test]
fn out_forest_dag_orientation() {
    // 0 -> 1 -> 2 in parent terms: parent[1]=0, parent[2]=1.
    let f = Forest::out_forest(vec![None, Some(0), Some(1)]).unwrap();
    let dag = f.to_dag();
    assert!(dag.successors(0).contains(&1));
    assert!(dag.successors(1).contains(&2));
}

#[test]
fn in_forest_dag_orientation() {
    let f = Forest::in_forest(vec![None, Some(0), Some(1)]).unwrap();
    let dag = f.to_dag();
    // v precedes parent(v): 1 -> 0, 2 -> 1.
    assert!(dag.successors(1).contains(&0));
    assert!(dag.successors(2).contains(&1));
}

#[test]
fn binary_tree_ranks() {
    let f = generators::binary_out_tree(3); // 7 vertices
    let ranks = f.ranks();
    assert_eq!(ranks[0], 2); // s=7 -> rank 2
    assert_eq!(ranks[1], 1); // s=3
    assert_eq!(ranks[3], 0); // leaf
}

/// Check the three decomposition invariants on an arbitrary forest:
/// 1. every vertex appears in exactly one chain of one block;
/// 2. within a chain, consecutive vertices are precedence-adjacent
///    (parent/child in the right orientation);
/// 3. for every precedence edge (u precedes v), u's block comes no later
///    than v's block, and if equal they are adjacent in the same chain.
fn check_decomposition(f: &Forest) {
    let n = f.num_vertices();
    let blocks = f.rank_decomposition();
    assert!(
        blocks.len() <= (usize::BITS - n.max(1).leading_zeros()) as usize,
        "more than log2(n)+1 blocks: {} for n={}",
        blocks.len(),
        n
    );

    let mut block_of = vec![usize::MAX; n];
    let mut seen = vec![false; n];
    for (bi, block) in blocks.iter().enumerate() {
        for chain in block {
            for &v in chain {
                assert!(!seen[v as usize], "vertex {v} in two chains");
                seen[v as usize] = true;
                block_of[v as usize] = bi;
            }
            for w in chain.windows(2) {
                // w[0] precedes w[1]: check adjacency in the forest.
                let (pred, succ) = (w[0], w[1]);
                match f.kind() {
                    ForestKind::Out => assert_eq!(f.parent_of(succ), Some(pred)),
                    ForestKind::In => assert_eq!(f.parent_of(pred), Some(succ)),
                }
            }
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "some vertex missing from decomposition"
    );

    // Precedence edges never point from a later block to an earlier one.
    let dag = f.to_dag();
    for u in 0..n as u32 {
        for &v in dag.successors(u) {
            assert!(
                block_of[u as usize] <= block_of[v as usize],
                "edge {u}->{v} violates block order"
            );
        }
    }
}

#[test]
fn decomposition_binary_tree() {
    check_decomposition(&generators::binary_out_tree(5));
}

#[test]
fn decomposition_caterpillar() {
    check_decomposition(&generators::caterpillar(10, 3));
}

#[test]
fn decomposition_single_chain_forest() {
    // A path: decomposition must still cover everything.
    let parent = (0..20)
        .map(|v| if v == 0 { None } else { Some(v as u32 - 1) })
        .collect();
    check_decomposition(&Forest::out_forest(parent).unwrap());
}

#[test]
fn decomposition_empty_forest() {
    let f = Forest::out_forest(vec![]).unwrap();
    assert!(f.rank_decomposition().is_empty());
}

#[test]
fn decomposition_star() {
    // One root, many leaves: 2 blocks (root alone, then all leaves).
    let mut parent = vec![Some(0u32); 9];
    parent.insert(0, None);
    let f = Forest::out_forest(parent).unwrap();
    check_decomposition(&f);
    let blocks = f.rank_decomposition();
    assert_eq!(blocks.len(), 2);
    assert_eq!(blocks[0].len(), 1); // the root chain
    assert_eq!(blocks[1].len(), 9); // nine singleton leaf chains
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_out_forest_decomposition_invariants(seed in 0u64..10_000, n in 1usize..120, roots in 1usize..5) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let f = generators::random_out_forest(n, roots.min(n), &mut rng);
        check_decomposition(&f);
    }

    #[test]
    fn random_in_forest_decomposition_invariants(seed in 0u64..10_000, n in 1usize..120, roots in 1usize..5) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let f = generators::random_in_forest(n, roots.min(n), &mut rng);
        check_decomposition(&f);
    }

    #[test]
    fn random_chain_sets_are_partitions(seed in 0u64..10_000, n in 1usize..100, k in 1usize..10) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let k = k.min(n);
        let cs = generators::random_chain_set(n, k, &mut rng);
        prop_assert_eq!(cs.num_chains(), k);
        prop_assert_eq!(cs.chains().iter().map(Vec::len).sum::<usize>(), n);
        let dag = cs.to_dag();
        prop_assert!(dag.is_acyclic());
        prop_assert_eq!(dag.num_edges(), n - k);
    }

    #[test]
    fn layered_dags_are_acyclic(seed in 0u64..10_000, n in 1usize..80, layers in 1usize..6, density in 0.05f64..0.9) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dag = generators::layered_dag(n, layers, density, &mut rng);
        prop_assert!(dag.is_acyclic());
        prop_assert!(dag.longest_path_len() <= layers);
    }

    #[test]
    fn width_matches_bruteforce_on_tiny_dags(seed in 0u64..3_000, n in 1usize..9, density in 0.05f64..0.6) {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Random DAG with edges only low -> high: always acyclic.
        let mut dag = Dag::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.random_bool(density) {
                    dag.add_edge(u, v);
                }
            }
        }
        let w = dag.width();

        // Brute-force max antichain via reachability.
        let tc = dag.transitive_closure();
        let reach = |a: usize, b: usize| tc[a][b / 64] >> (b % 64) & 1 == 1;
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let verts: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
            let ok = verts.iter().all(|&a| verts.iter().all(|&b| a == b || (!reach(a, b) && !reach(b, a))));
            if ok {
                best = best.max(verts.len());
            }
        }
        prop_assert_eq!(w, best);
    }
}

#[test]
fn equal_chains_splits_evenly() {
    let cs = generators::equal_chains(10, 3);
    assert_eq!(cs.num_chains(), 4); // 3+3+3+1
    assert_eq!(cs.max_chain_len(), 3);
}

#[test]
fn mapreduce_edges_complete() {
    let dag = generators::mapreduce_bipartite(2, 3);
    assert_eq!(dag.num_edges(), 6);
    for m in 0..2u32 {
        assert_eq!(dag.successors(m).len(), 3);
    }
}
