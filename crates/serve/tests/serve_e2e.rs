//! End-to-end socket test: spawn the real `suud` binary on an ephemeral
//! loopback port and drive it over TCP.
//!
//! Proves the PR's cache semantics on the wire:
//!
//! * identical `POST /v1/race` twice ⇒ the second response **body is
//!   byte-identical** and flagged `X-Suu-Cache: hit`;
//! * the same cell at a larger trial budget ⇒ `X-Suu-Cache: extended`,
//!   `trials_used` grew, and the cell's moments *and* P² sketch state
//!   are **bitwise identical** to an equivalent cold run computed
//!   in-process (same seed derivation, fresh accumulator);
//! * `GET /v1/cell/{key}`, `/v1/healthz` and `/v1/stats` respond.
//!
//! And the event-loop front end's behavior:
//!
//! * keep-alive connections serve many requests with bodies
//!   byte-identical to fresh-connection responses;
//! * pipelined requests are answered strictly in request order;
//! * a saturated compute queue answers `429` + `Retry-After` and
//!   recovers;
//! * a tiny `--max-cache-bytes` budget evicts LRU cells, keeps the MRU
//!   ones replaying byte-identically, and recomputes evicted cells
//!   deterministically.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use suu_core::schemas;

struct Daemon {
    child: Child,
    addr: String,
    cache_dir: PathBuf,
}

impl Daemon {
    fn spawn(tag: &str) -> Daemon {
        Daemon::spawn_with(tag, &[])
    }

    /// Spawn with extra flags on a fresh cache dir named after `tag`
    /// (tests reusing a tag share — and must clean — that dir).
    fn spawn_with(tag: &str, extra_args: &[&str]) -> Daemon {
        let cache_dir = std::env::temp_dir().join(format!("suud-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let mut child = Command::new(env!("CARGO_BIN_EXE_suud"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--cache-dir",
                cache_dir.to_str().unwrap(),
            ])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn suud");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("suud prints its address")
            .expect("readable stdout");
        let addr = banner
            .strip_prefix("suud listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .trim()
            .to_string();
        // Keep draining stdout so the daemon never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon {
            child,
            addr,
            cache_dir,
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> suu_core::json::Json {
        suu_core::json::parse(&self.body)
            .unwrap_or_else(|e| panic!("unparsable body ({e}): {}", self.body))
    }
}

/// Minimal one-shot HTTP/1.1 client over a fresh connection.
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect to suud");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: suud\r\n");
    if let Some(body) = body {
        request.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    request.push_str("Connection: close\r\n\r\n");
    if let Some(body) = body {
        request.push_str(body);
    }
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn race_body(trials: u64) -> String {
    format!(
        r#"{{
            "scenarios": [{{"family": "uniform", "m": 3, "n": 6,
                            "lo": 0.3, "hi": 0.9, "seed": 7}}],
            "policies": ["greedy-lr"],
            "trials": {trials},
            "master_seed": 21
        }}"#
    )
}

#[test]
fn daemon_serves_replays_and_extends_over_a_real_socket() {
    let daemon = Daemon::spawn("main");
    let addr = daemon.addr.as_str();

    // Liveness first.
    let health = http(addr, "GET", "/v1/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(
        health
            .json()
            .get("status")
            .and_then(|s| s.as_str().map(str::to_string)),
        Some("ok".to_string())
    );

    // 1. Cold race: a miss that populates the cache.
    let first = http(addr, "POST", "/v1/race", Some(&race_body(6)));
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("X-Suu-Cache"), Some("miss"));
    assert_eq!(first.header("X-Suu-Cache-Misses"), Some("1"));
    let doc = first.json();
    assert_eq!(
        doc.get("schema")
            .and_then(|s| s.as_str().map(str::to_string)),
        Some(schemas::RESULTS_V2.to_string())
    );
    let cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
    assert_eq!(cell.get("trials_used").unwrap().as_u64(), Some(6));
    assert!(
        cell.get("wall_clock_s").is_none(),
        "bodies must be replay-deterministic"
    );
    let key = cell.get("cell_key").unwrap().as_str().unwrap().to_string();

    // 2. Identical request: byte-identical body, flagged as a hit.
    let second = http(addr, "POST", "/v1/race", Some(&race_body(6)));
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Suu-Cache"), Some("hit"));
    assert_eq!(second.header("X-Suu-Cache-Hits"), Some("1"));
    assert_eq!(
        first.body, second.body,
        "cache hit must replay the response byte-identically"
    );

    // 3. Same cell at a tighter precision: extended in place.
    let third = http(addr, "POST", "/v1/race", Some(&race_body(18)));
    assert_eq!(third.status, 200);
    assert_eq!(third.header("X-Suu-Cache"), Some("extended"));
    let third_doc = third.json();
    let cell = &third_doc.get("cells").unwrap().as_array().unwrap()[0];
    assert_eq!(
        cell.get("trials_used").unwrap().as_u64(),
        Some(18),
        "trials must grow to the requested budget"
    );
    assert_eq!(
        cell.get("cell_key").unwrap().as_str(),
        Some(key.as_str()),
        "precision is not part of the cell identity"
    );

    // 4. The extended cell is bitwise an equivalent cold run: same seed
    // derivation, fresh accumulator, computed in-process.
    let sc = suu_bench::scenario::Scenario::uniform(3, 6, 0.3, 0.9, 7);
    let registry = suu_algos::standard_registry();
    let cold = suu_sim::Evaluator::new(suu_sim::EvalConfig {
        trials: 18,
        master_seed: suu_bench::runner::scenario_master_seed(21, &sc),
        threads: 0,
        ..suu_sim::EvalConfig::default()
    })
    .run_stats_spec(
        &registry,
        &sc.instantiate(),
        &suu_sim::PolicySpec::new("greedy-lr"),
    )
    .unwrap();
    let cold_summary = cold.summary().unwrap();
    let mean = cell.get("mean_makespan").unwrap().as_f64().unwrap();
    assert_eq!(
        mean.to_bits(),
        cold_summary.mean.to_bits(),
        "extended mean must be bitwise the cold run's"
    );
    assert_eq!(
        cell.get("median").unwrap().as_f64().unwrap().to_bits(),
        cold_summary.median.to_bits()
    );
    assert_eq!(
        cell.get("p95").unwrap().as_f64().unwrap().to_bits(),
        cold_summary.p95.to_bits()
    );

    // …and the cached checkpoint's whole accumulator (moments, counters,
    // P² sketch words) matches the cold accumulator exactly.
    let stored = http(addr, "GET", &format!("/v1/cell/{key}"), None);
    assert_eq!(stored.status, 200);
    let stored = stored.json();
    assert_eq!(
        stored
            .get("schema")
            .and_then(|s| s.as_str().map(str::to_string)),
        Some(schemas::SERVE_CELL_V1.to_string())
    );
    let accumulator = stored
        .get("checkpoint")
        .and_then(|c| c.get("accumulator"))
        .expect("checkpoint carries the accumulator snapshot");
    assert_eq!(
        accumulator.to_compact(),
        cold.acc.to_json().to_compact(),
        "cached accumulator state must be bitwise the cold run's"
    );

    // 5. Observability: the stats counters saw all of the above.
    let stats = http(addr, "GET", "/v1/stats", None).json();
    assert_eq!(stats.get("races").unwrap().as_u64(), Some(3));
    assert_eq!(stats.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("extends").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("cells_on_disk").unwrap().as_u64(), Some(1));

    // Unknown cell and bad request are polite errors.
    assert_eq!(
        http(addr, "GET", "/v1/cell/0000000000000000", None).status,
        404
    );
    assert_eq!(http(addr, "POST", "/v1/race", Some("{broken")).status, 400);
}

#[test]
fn concurrent_identical_races_coalesce_onto_one_computation() {
    let daemon = Daemon::spawn("coalesce");
    let addr = daemon.addr.as_str();
    // A heavier cell so the concurrent requests genuinely overlap.
    let body = r#"{
        "scenarios": [{"family": "uniform", "m": 4, "n": 16,
                        "lo": 0.3, "hi": 0.95, "seed": 3}],
        "policies": ["greedy-lr"],
        "trials": 400,
        "master_seed": 5
    }"#;
    let (a, b) = std::thread::scope(|scope| {
        let ta = scope.spawn(|| http(addr, "POST", "/v1/race", Some(body)));
        let tb = scope.spawn(|| http(addr, "POST", "/v1/race", Some(body)));
        (ta.join().unwrap(), tb.join().unwrap())
    });
    assert_eq!(a.status, 200);
    assert_eq!(b.status, 200);
    assert_eq!(
        a.body, b.body,
        "coalesced responses must agree byte-for-byte"
    );
    // Exactly one computed; the other either waited for it (hit) or
    // arrived first — never two misses for one key.
    let stats = http(addr, "GET", "/v1/stats", None).json();
    assert_eq!(stats.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("cells_on_disk").unwrap().as_u64(), Some(1));
}

// ---------------------------------------------------------------------
// Keep-alive client (framed reads, so one connection can carry many
// responses).
// ---------------------------------------------------------------------

struct KeepAlive {
    reader: BufReader<TcpStream>,
}

impl KeepAlive {
    fn connect(addr: &str) -> KeepAlive {
        let stream = TcpStream::connect(addr).expect("connect to suud");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        KeepAlive {
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, method: &str, path: &str, body: Option<&str>) {
        let mut request = format!("{method} {path} HTTP/1.1\r\nHost: suud\r\n");
        if let Some(body) = body {
            request.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        request.push_str("\r\n");
        if let Some(body) = body {
            request.push_str(body);
        }
        self.reader.get_mut().write_all(request.as_bytes()).unwrap();
    }

    /// Read exactly one Content-Length-framed response.
    fn read_reply(&mut self) -> Reply {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {line:?}"));
        let mut headers: Vec<(String, String)> = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((k, v)) = trimmed.split_once(':') {
                headers.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .expect("framed response needs Content-Length");
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).unwrap();
        Reply {
            status,
            headers,
            body: String::from_utf8(body).expect("utf-8 body"),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> Reply {
        self.send(method, path, body);
        self.read_reply()
    }
}

#[test]
fn keep_alive_bodies_are_byte_identical_to_fresh_connection_bodies() {
    let daemon = Daemon::spawn("keepalive");
    let addr = daemon.addr.as_str();

    // Populate the cell over a throwaway connection.
    let fresh = http(addr, "POST", "/v1/race", Some(&race_body(6)));
    assert_eq!(fresh.status, 200, "{}", fresh.body);

    // One connection, many requests: every response must be flagged
    // keep-alive and every body must equal the fresh-connection body.
    let mut conn = KeepAlive::connect(addr);
    for round in 0..4 {
        let reply = conn.request("POST", "/v1/race", Some(&race_body(6)));
        assert_eq!(reply.status, 200, "round {round}");
        assert_eq!(reply.header("Connection"), Some("keep-alive"));
        assert_eq!(reply.header("X-Suu-Cache"), Some("hit"));
        assert_eq!(
            reply.body, fresh.body,
            "round {round}: keep-alive replay must be byte-identical"
        );
    }
    // Interleaved different endpoints on the same connection still work.
    assert_eq!(conn.request("GET", "/v1/healthz", None).status, 200);
    let stats = conn.request("GET", "/v1/stats", None);
    assert_eq!(stats.status, 200);
    assert_eq!(stats.json().get("hits").unwrap().as_u64(), Some(4));
}

#[test]
fn pipelined_requests_are_answered_in_request_order() {
    let daemon = Daemon::spawn("pipeline");
    let addr = daemon.addr.as_str();
    // Prime the race cell so pipelined hits are fast.
    assert_eq!(
        http(addr, "POST", "/v1/race", Some(&race_body(6))).status,
        200
    );

    // Send four requests back-to-back without reading, in one burst:
    // race (json with cells), healthz, race again, stats. The responses
    // must come back in exactly that order.
    let mut conn = KeepAlive::connect(addr);
    conn.send("POST", "/v1/race", Some(&race_body(6)));
    conn.send("GET", "/v1/healthz", None);
    conn.send("POST", "/v1/race", Some(&race_body(6)));
    conn.send("GET", "/v1/stats", None);

    let first = conn.read_reply();
    assert_eq!(first.status, 200);
    assert!(first.json().get("cells").is_some(), "1st must be the race");
    let second = conn.read_reply();
    assert_eq!(
        second
            .json()
            .get("schema")
            .and_then(|s| s.as_str().map(str::to_string)),
        Some(schemas::SERVE_HEALTH_V1.to_string()),
        "2nd must be healthz"
    );
    let third = conn.read_reply();
    assert_eq!(
        third.body, first.body,
        "3rd must be the race again, byte-identical"
    );
    let fourth = conn.read_reply();
    assert_eq!(
        fourth
            .json()
            .get("schema")
            .and_then(|s| s.as_str().map(str::to_string)),
        Some(schemas::SERVE_STATS_V1.to_string()),
        "4th must be stats"
    );
}

#[test]
fn saturated_queue_answers_429_with_retry_after_and_recovers() {
    // One worker, a one-slot queue: the third concurrent request must
    // be turned away.
    let daemon = Daemon::spawn_with("saturate", &["--workers", "1", "--queue-depth", "1"]);
    let addr = daemon.addr.as_str();

    // A deliberately heavy race: ~1 s of compute in release, several in
    // debug — far above the 300 ms send gap below, so the schedule is
    // deterministic whatever the build profile. Distinct seeds keep
    // every request a full-cost miss (no hit or coalescing shortcuts).
    let heavy = |seed: u64| {
        format!(
            r#"{{
                "scenarios": [{{"family": "uniform", "m": 4, "n": 16,
                                "lo": 0.3, "hi": 0.95, "seed": {seed}}}],
                "policies": ["greedy-lr"],
                "trials": 400000,
                "master_seed": 5
            }}"#
        )
    };

    let mut conn = KeepAlive::connect(addr);
    // r1 occupies the single worker…
    conn.send("POST", "/v1/race", Some(&heavy(3)));
    std::thread::sleep(Duration::from_millis(300));
    // …r2 fills the queue, r3 and r4 overflow it.
    conn.send("POST", "/v1/race", Some(&heavy(4)));
    conn.send("POST", "/v1/race", Some(&heavy(5)));
    conn.send("POST", "/v1/race", Some(&heavy(6)));

    let statuses: Vec<(u16, Option<String>)> = (0..4)
        .map(|_| {
            let r = conn.read_reply();
            (r.status, r.header("Retry-After").map(str::to_string))
        })
        .collect();
    assert_eq!(statuses[0].0, 200, "the computing request finishes");
    assert_eq!(statuses[1].0, 200, "the queued request runs next");
    for (status, retry_after) in &statuses[2..] {
        assert_eq!(*status, 429, "overflow must be rejected");
        assert_eq!(
            retry_after.as_deref(),
            Some("1"),
            "429 must carry Retry-After"
        );
    }

    // The rejection is backpressure, not a failure state: the very next
    // request (now a cache hit) succeeds on the same connection.
    let after = conn.request("POST", "/v1/race", Some(&heavy(3)));
    assert_eq!(after.status, 200);
    assert_eq!(after.header("X-Suu-Cache"), Some("hit"));
    let stats = conn.request("GET", "/v1/stats", None).json();
    assert_eq!(stats.get("rejected_429").unwrap().as_u64(), Some(2));
}

#[test]
fn tiny_cache_budget_evicts_lru_and_keeps_mru_replaying_byte_identically() {
    fn seeded_race(seed: u64) -> String {
        format!(
            r#"{{
                "scenarios": [{{"family": "uniform", "m": 3, "n": 6,
                                "lo": 0.3, "hi": 0.9, "seed": {seed}}}],
                "policies": ["greedy-lr"],
                "trials": 6,
                "master_seed": 21
            }}"#
        )
    }

    // Phase 1: measure one cell's size with an unbudgeted daemon.
    let cell_bytes = {
        let probe = Daemon::spawn("evict-probe");
        let addr = probe.addr.as_str();
        assert_eq!(
            http(addr, "POST", "/v1/race", Some(&seeded_race(1))).status,
            200
        );
        let stats = http(addr, "GET", "/v1/stats", None).json();
        stats.get("cache_bytes").unwrap().as_u64().unwrap()
    };
    assert!(cell_bytes > 0);

    // Phase 2: a budget that fits two cells (plus slack for per-seed
    // size jitter) but never three.
    let budget = cell_bytes * 2 + cell_bytes / 2;
    let daemon = Daemon::spawn_with("evict", &["--max-cache-bytes", &budget.to_string()]);
    let addr = daemon.addr.as_str();

    let first_a = http(addr, "POST", "/v1/race", Some(&seeded_race(1)));
    let first_b = http(addr, "POST", "/v1/race", Some(&seeded_race(2)));
    assert_eq!(first_a.header("X-Suu-Cache"), Some("miss"));
    assert_eq!(first_b.header("X-Suu-Cache"), Some("miss"));

    // Touch A (now MRU), then add C: B is LRU and must be evicted.
    let touched_a = http(addr, "POST", "/v1/race", Some(&seeded_race(1)));
    assert_eq!(touched_a.header("X-Suu-Cache"), Some("hit"));
    assert_eq!(
        touched_a.body, first_a.body,
        "budgeted cache hits still replay byte-identically"
    );
    assert_eq!(
        http(addr, "POST", "/v1/race", Some(&seeded_race(3))).status,
        200
    );

    let stats = http(addr, "GET", "/v1/stats", None).json();
    assert_eq!(stats.get("evictions").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("cells_on_disk").unwrap().as_u64(), Some(2));
    assert!(stats.get("cache_bytes").unwrap().as_u64().unwrap() <= budget);

    // The survivor (A, recently used) still replays byte-identically…
    let again_a = http(addr, "POST", "/v1/race", Some(&seeded_race(1)));
    assert_eq!(again_a.header("X-Suu-Cache"), Some("hit"));
    assert_eq!(again_a.body, first_a.body);

    // …and the evicted cell (B) is recomputed deterministically: a
    // miss, but byte-identical to its pre-eviction response.
    let recomputed_b = http(addr, "POST", "/v1/race", Some(&seeded_race(2)));
    assert_eq!(recomputed_b.header("X-Suu-Cache"), Some("miss"));
    assert_eq!(
        recomputed_b.body, first_b.body,
        "recomputed cells are bitwise their evicted selves"
    );
}
