//! End-to-end crash-safety test for the `suu-sweep` orchestrator.
//!
//! The sweep's contract is that the artifact is a pure function of the
//! spec, *including across interruption*: every evaluation flows through
//! the persistent cell cache, and the artifact records only terminal
//! per-cell state, so a sweep killed mid-grid and re-run over the same
//! `--cache-dir` must land on a document **byte-identical** to an
//! uninterrupted cold run.
//!
//! The test runs the built-in smoke grid in `--no-daemon` (library)
//! mode — SIGKILL then cannot orphan a daemon child — kills the process
//! right after it reports the first round, and replays.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};

struct SweepRun {
    out: PathBuf,
    cache: PathBuf,
}

impl SweepRun {
    fn new(tag: &str) -> SweepRun {
        let tmp = std::env::temp_dir();
        let pid = std::process::id();
        let run = SweepRun {
            out: tmp.join(format!("suu-sweep-e2e-{tag}-{pid}.json")),
            cache: tmp.join(format!("suu-sweep-e2e-{tag}-{pid}-cache")),
        };
        let _ = std::fs::remove_file(&run.out);
        let _ = std::fs::remove_dir_all(&run.cache);
        run
    }

    fn command(&self) -> Command {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_suu-sweep"));
        cmd.args([
            "--smoke",
            "--no-daemon",
            "--cache-dir",
            self.cache.to_str().unwrap(),
            "--out",
            self.out.to_str().unwrap(),
        ]);
        cmd
    }

    /// Run the smoke sweep to completion and return the artifact bytes.
    fn run_to_completion(&self) -> String {
        let status = self
            .command()
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("spawn suu-sweep");
        assert!(status.success(), "suu-sweep failed: {status}");
        std::fs::read_to_string(&self.out).expect("sweep artifact written")
    }
}

impl Drop for SweepRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.out);
        let _ = std::fs::remove_dir_all(&self.cache);
    }
}

#[test]
fn sweep_killed_mid_grid_and_rerun_is_byte_identical_to_a_cold_run() {
    // Reference: an uninterrupted cold run on its own cache.
    let reference_run = SweepRun::new("ref");
    let reference = reference_run.run_to_completion();
    let doc = suu_core::json::parse(&reference).expect("valid artifact json");
    assert_eq!(
        doc.get("schema")
            .and_then(|s| s.as_str().map(str::to_string)),
        Some(suu_core::schemas::RESULTS_SWEEP_V1.to_string())
    );

    // Interrupted: same spec on a fresh cache, SIGKILLed as soon as the
    // first refinement round lands (so later rungs are still missing).
    let victim = SweepRun::new("kill");
    let mut child = victim
        .command()
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn suu-sweep");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut saw_round = false;
    for line in BufReader::new(stderr).lines() {
        let line = line.expect("readable stderr");
        if line.contains("round 1 done") {
            saw_round = true;
            child.kill().expect("kill suu-sweep");
            break;
        }
    }
    let _ = child.wait();
    assert!(saw_round, "sweep never reported its first round");
    assert!(
        victim.cache.is_dir(),
        "the cell cache must survive the crash"
    );

    // Replay over the surviving cache: cached rungs are reused (each a
    // checkpoint the cold run also visited), missing ones computed, and
    // the artifact comes out byte-identical.
    let resumed = victim.run_to_completion();
    assert_eq!(
        resumed, reference,
        "resumed sweep artifact must be byte-identical to the cold run"
    );
}
