//! End-to-end socket tests for the sharded serving stack: spawn the
//! real `suu-router` binary (which spawns and supervises its own `suud`
//! shard fleet) on an ephemeral loopback port and drive it over TCP.
//!
//! Proves the PR's sharding contract on the wire:
//!
//! * a multi-cell race through a 2-shard router is **byte-identical**
//!   to the same race against a direct single daemon — cold, and again
//!   as a cached replay — and each shard's cache directory holds
//!   exactly the cells whose keys fall in its range;
//! * the aggregated `GET /v1/stats` document keeps the single-daemon
//!   `suu-serve/stats/v1` field order as a **byte-compatible prefix**
//!   (new fields strictly appended) and its sums equal the per-shard
//!   breakdowns;
//! * killing a shard mid-evaluation costs the in-flight request a
//!   clean, fully-framed `503`, the supervisor **restarts** the shard,
//!   and post-restart replies are byte-identical to pre-death ones
//!   (the shard's cache directory survives the crash).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use suu_bench::request::RaceRequest;
use suu_core::json::Json;
use suu_core::schemas;
use suu_serve::cache::{cell_key_fields, CellKey};
use suu_serve::router::{key_from_hex, owner_of};
use suu_serve::service::semantics_str;

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGKILL: i32 = 9;

// ---------------------------------------------------------------------
// Process harnesses
// ---------------------------------------------------------------------

struct Daemon {
    child: Child,
    addr: String,
    cache_dir: PathBuf,
}

impl Daemon {
    fn spawn(tag: &str) -> Daemon {
        let cache_dir =
            std::env::temp_dir().join(format!("suu-router-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let mut child = Command::new(env!("CARGO_BIN_EXE_suud"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--cache-dir",
                cache_dir.to_str().unwrap(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn suud");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().expect("suud banner").expect("readable stdout");
        let addr = banner
            .strip_prefix("suud listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .trim()
            .to_string();
        std::thread::spawn(move || for _ in lines {});
        Daemon {
            child,
            addr,
            cache_dir,
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

struct Shard {
    pid: i32,
}

struct RouterProc {
    child: Child,
    addr: String,
    shards: Vec<Shard>,
    cache_root: PathBuf,
}

impl RouterProc {
    /// Spawn `suu-router --shards N` on a fresh cache root and parse
    /// the banner plus the per-shard topology lines.
    fn spawn(tag: &str, shards: usize) -> RouterProc {
        let cache_root =
            std::env::temp_dir().join(format!("suu-router-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_root);
        let mut child = Command::new(env!("CARGO_BIN_EXE_suu-router"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--shards",
                &shards.to_string(),
                "--cache-dir",
                cache_root.to_str().unwrap(),
                "--workers",
                "2",
                "--shard-workers",
                "2",
                "--suud",
                env!("CARGO_BIN_EXE_suud"),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn suu-router");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("router banner")
            .expect("readable stdout");
        let addr = banner
            .strip_prefix("suu-router listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .trim()
            .to_string();
        // "suu-router shard 0 pid 123 http://127.0.0.1:456 keys [lo, hi] cache DIR"
        let shard_info: Vec<Shard> = (0..shards)
            .map(|i| {
                let line = lines.next().expect("topology line").expect("readable");
                let tok: Vec<&str> = line.split_whitespace().collect();
                assert_eq!(tok[1], "shard");
                assert_eq!(tok[2], i.to_string());
                assert!(tok[5].starts_with("http://"), "topology line: {line}");
                Shard {
                    pid: tok[4].parse().expect("shard pid"),
                }
            })
            .collect();
        std::thread::spawn(move || for _ in lines {});
        RouterProc {
            child,
            addr,
            shards: shard_info,
            cache_root,
        }
    }
}

impl Drop for RouterProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.cache_root);
    }
}

// ---------------------------------------------------------------------
// Wire helpers
// ---------------------------------------------------------------------

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        suu_core::json::parse(&self.body)
            .unwrap_or_else(|e| panic!("unparsable body ({e}): {}", self.body))
    }
}

/// Minimal one-shot HTTP/1.1 client over a fresh connection.
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: suu\r\n");
    if let Some(body) = body {
        request.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    request.push_str("Connection: close\r\n\r\n");
    if let Some(body) = body {
        request.push_str(body);
    }
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

/// The cell keys of every `(scenario, policy)` cell in a request body,
/// in scenario-major evaluation order — computed exactly as the service
/// does, so the tests can reason about shard ownership.
fn cell_keys(body: &str) -> Vec<String> {
    let race = RaceRequest::from_json(&suu_core::json::parse(body).expect("request json"))
        .expect("valid race request");
    let mut keys = Vec::new();
    for rs in &race.scenarios {
        for policy in &race.policies {
            keys.push(
                CellKey::new(&cell_key_fields(
                    &rs.params,
                    policy,
                    race.master_seed,
                    semantics_str(race.exec.semantics),
                    race.exec.max_steps,
                ))
                .hex,
            );
        }
    }
    keys
}

fn obj_keys(j: &Json) -> Vec<String> {
    match j {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
        other => panic!("expected object, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

/// An object with every `wall_clock_s` field (the one nondeterministic
/// field in a cell checkpoint) recursively removed.
fn without_wall_clocks(j: &Json) -> Json {
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "wall_clock_s")
                .map(|(k, v)| (k.clone(), without_wall_clocks(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(without_wall_clocks).collect()),
        other => other.clone(),
    }
}

/// A 4-cell race (2 scenarios × 2 policies) whose cells scatter across
/// a 2-shard fleet (two keys per shard — checked by the partition
/// assertion below).
const MULTI_CELL: &str = r#"{
    "scenarios": [{"family": "uniform", "m": 2, "n": 5,
                    "lo": 0.3, "hi": 0.9, "seed": 11},
                  {"family": "uniform", "m": 3, "n": 6,
                    "lo": 0.2, "hi": 0.8, "seed": 13}],
    "policies": ["greedy-lr", "round-robin"],
    "trials": 6,
    "master_seed": 33
}"#;

#[test]
fn router_merge_is_byte_identical_and_shards_hold_only_their_keys() {
    let direct = Daemon::spawn("merge-direct");
    let router = RouterProc::spawn("merge-router", 2);

    let via_direct = http(&direct.addr, "POST", "/v1/race", Some(MULTI_CELL));
    let via_router = http(&router.addr, "POST", "/v1/race", Some(MULTI_CELL));
    assert_eq!(via_direct.status, 200, "direct: {}", via_direct.body);
    assert_eq!(via_router.status, 200, "router: {}", via_router.body);
    assert_eq!(
        via_router.body, via_direct.body,
        "scatter/gather merge must be byte-identical to a single daemon"
    );

    // Cached replay through the merge path stays byte-identical too.
    let replay = http(&router.addr, "POST", "/v1/race", Some(MULTI_CELL));
    assert_eq!(replay.status, 200);
    assert_eq!(replay.body, via_router.body);
    assert_eq!(replay.header("X-Suu-Cache"), Some("hit"));

    // Cell fetches forward to the owning shard and match the direct
    // daemon's checkpoints (up to `wall_clock_s`, the one field that
    // records real elapsed time rather than deterministic state).
    let keys = cell_keys(MULTI_CELL);
    assert_eq!(keys.len(), 4);
    for key in &keys {
        let from_router = http(&router.addr, "GET", &format!("/v1/cell/{key}"), None);
        let from_direct = http(&direct.addr, "GET", &format!("/v1/cell/{key}"), None);
        assert_eq!(from_router.status, 200, "cell {key}: {}", from_router.body);
        assert_eq!(
            without_wall_clocks(&from_router.json()).to_canonical(),
            without_wall_clocks(&from_direct.json()).to_canonical(),
            "cell {key}"
        );
    }

    // Partitioning: each shard's cache dir holds exactly the cells
    // whose keys its range owns — nothing more, nothing missing.
    let mut seen: Vec<String> = Vec::new();
    for shard in 0..2usize {
        let dir = router.cache_root.join(format!("shard-{shard}"));
        for entry in std::fs::read_dir(&dir).expect("shard cache dir") {
            let name = entry.expect("dir entry").file_name();
            let name = name.to_str().expect("utf-8 file name");
            if name == "index.json" {
                continue;
            }
            let stem = name.strip_suffix(".json").expect("cell file");
            let key = key_from_hex(stem)
                .unwrap_or_else(|| panic!("non-key file {name} in shard {shard} cache"));
            assert_eq!(
                owner_of(key, 2),
                shard,
                "cell {stem} cached by a shard that does not own it"
            );
            seen.push(stem.to_string());
        }
    }
    let mut expected = keys.clone();
    expected.sort();
    seen.sort();
    assert_eq!(seen, expected, "shards must hold exactly the race's cells");
}

#[test]
fn aggregated_stats_keep_v1_field_order_and_sum_the_shards() {
    let direct = Daemon::spawn("stats-direct");
    let router = RouterProc::spawn("stats-router", 2);

    // Touch both stacks so the counters are nonzero.
    assert_eq!(
        http(&direct.addr, "POST", "/v1/race", Some(MULTI_CELL)).status,
        200
    );
    assert_eq!(
        http(&router.addr, "POST", "/v1/race", Some(MULTI_CELL)).status,
        200
    );

    let daemon_stats = http(&direct.addr, "GET", "/v1/stats", None).json();
    let router_stats = http(&router.addr, "GET", "/v1/stats", None).json();

    // Append-only schema compatibility: the router document begins
    // with the exact single-daemon field list, in order.
    let daemon_keys = obj_keys(&daemon_stats);
    let router_keys = obj_keys(&router_stats);
    assert_eq!(
        &router_keys[..daemon_keys.len()],
        &daemon_keys[..],
        "aggregated stats must keep the suu-serve/stats/v1 fields in order"
    );
    assert_eq!(
        &router_keys[daemon_keys.len()..],
        ["shards".to_string(), "router".to_string()],
        "new fields must be strictly appended"
    );
    assert_eq!(
        router_stats.get("schema").and_then(Json::as_str),
        Some(schemas::SERVE_STATS_V1)
    );

    // The sums are really sums: every numeric v1 field equals the total
    // over the per-shard breakdowns.
    let shards = router_stats
        .get("shards")
        .and_then(Json::as_array)
        .expect("shards[]");
    assert_eq!(shards.len(), 2);
    for field in &daemon_keys[1..] {
        let total = router_stats.get(field).and_then(Json::as_u64).unwrap();
        let summed: u64 = shards
            .iter()
            .map(|s| {
                s.get("stats")
                    .and_then(|st| st.get(field))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(total, summed, "field {field}");
    }
    // The race produced 4 cells across the fleet.
    assert_eq!(
        router_stats.get("misses").and_then(Json::as_u64),
        Some(4),
        "{}",
        router_stats.to_pretty()
    );
    // Both shards served sub-requests (the 4 cells scatter 2/2 for this
    // request — a property of the fixed seeds above).
    for shard in shards {
        let races = shard
            .get("stats")
            .and_then(|st| st.get("races"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        assert!(races > 0, "every shard should have served sub-requests");
    }
}

#[test]
fn killed_shard_restarts_and_replays_byte_identically() {
    let router = RouterProc::spawn("death", 2);

    // A slow single-cell race (cold m=4, n=16 at 500k trials takes
    // several seconds in a dev build) and a light one owned by the same
    // shard, found by scanning seeds.
    let slow_body = r#"{
        "scenarios": [{"family": "uniform", "m": 4, "n": 16,
                        "lo": 0.3, "hi": 0.95, "seed": 3}],
        "policies": ["greedy-lr"],
        "trials": 500000,
        "master_seed": 5
    }"#;
    let slow_key = key_from_hex(&cell_keys(slow_body)[0]).unwrap();
    let victim = owner_of(slow_key, 2);
    let light_body = (0..)
        .map(|seed| {
            format!(
                r#"{{"scenarios":[{{"family":"uniform","m":2,"n":4,"lo":0.3,"hi":0.9,"seed":{seed}}}],"policies":["greedy-lr"],"trials":5,"master_seed":1}}"#
            )
        })
        .find(|body| owner_of(key_from_hex(&cell_keys(body)[0]).unwrap(), 2) == victim)
        .expect("some seed lands on the victim shard");

    // Cache the light cell on the victim shard before the crash.
    let before = http(&router.addr, "POST", "/v1/race", Some(&light_body));
    assert_eq!(before.status, 200, "{}", before.body);

    // Post the slow race, then kill its shard mid-evaluation.
    let in_flight = std::thread::spawn({
        let addr = router.addr.clone();
        let body = slow_body.to_string();
        move || http(&addr, "POST", "/v1/race", Some(&body))
    });
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        unsafe { kill(router.shards[victim].pid, SIGKILL) },
        0,
        "kill shard {victim}"
    );
    let reply = in_flight.join().expect("in-flight request thread");
    assert_eq!(
        reply.status, 503,
        "an in-flight request to a dying shard gets a clean 503, got {}: {}",
        reply.status, reply.body
    );
    assert!(
        reply.header("Retry-After").is_some(),
        "503 advertises Retry-After"
    );

    // The supervisor restarts the shard (bounded backoff, ~100ms); the
    // cache dir survives, so the light cell replays byte-identically.
    let deadline = Instant::now() + Duration::from_secs(20);
    let after = loop {
        let reply = http(&router.addr, "POST", "/v1/race", Some(&light_body));
        if reply.status == 200 {
            break reply;
        }
        assert_eq!(reply.status, 503, "only clean 503s while down");
        assert!(
            Instant::now() < deadline,
            "shard should restart within the deadline"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(
        after.body, before.body,
        "post-restart replay must be byte-identical to pre-death"
    );
    assert_eq!(
        after.header("X-Suu-Cache"),
        Some("hit"),
        "the cell survived the crash on disk"
    );

    // The restart is visible in the aggregated stats.
    let stats = http(&router.addr, "GET", "/v1/stats", None).json();
    let restarts = stats
        .get("shards")
        .and_then(Json::as_array)
        .and_then(|s| s.get(victim))
        .and_then(|s| s.get("restarts"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(restarts >= 1, "stats must report the restart: {stats:?}");
}
