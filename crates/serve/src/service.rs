//! The daemon's application logic: routing, race evaluation through the
//! cache, and the observability endpoints.
//!
//! ## Determinism contract
//!
//! A `POST /v1/race` response body is a **pure function of the request
//! and the cache state it leaves behind**: cells come from
//! seed-deterministic evaluation, wall clocks are never recorded, and
//! cache status lives in response *headers* (`X-Suu-Cache`,
//! `X-Suu-Cache-Hits/-Misses/-Extended`), not the body. Hence:
//!
//! * identical request twice ⇒ the second response is served from the
//!   cache and is **byte-identical** to the first;
//! * a request for more precision on a cached cell resumes it
//!   ([`suu_sim::Evaluator::resume_adaptive`]) instead of recomputing —
//!   bitwise what a cold run at the final trial count would produce;
//! * concurrent identical requests coalesce: one computes, the rest
//!   wait on the in-flight guard and replay its checkpoint.

use crate::cache::{cell_key_fields, CellKey, CellStore};
use crate::http::{Request, Response};
use crate::server::ServerMetrics;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use suu_algos::bounds::lower_bound;
use suu_bench::report::ResultsBuilder;
use suu_bench::request::RaceRequest;
use suu_bench::runner::scenario_master_seed;
use suu_core::json::Json;
use suu_sim::{
    EvalConfig, EvalStats, Evaluator, PolicyRegistry, PolicySpec, Precision, RegistryError,
    Semantics, StopReason,
};

/// How a cell was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from disk, no new trials.
    Hit,
    /// Computed from scratch.
    Miss,
    /// Resumed from disk and grown.
    Extended,
}

/// Per-response cache accounting (the `X-Suu-Cache-*` headers).
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheCounts {
    /// Cells served from disk.
    pub hits: u64,
    /// Cells computed from scratch.
    pub misses: u64,
    /// Cells resumed and grown.
    pub extends: u64,
}

impl CacheCounts {
    fn record(&mut self, status: CacheStatus) {
        match status {
            CacheStatus::Hit => self.hits += 1,
            CacheStatus::Miss => self.misses += 1,
            CacheStatus::Extended => self.extends += 1,
        }
    }

    /// Aggregate label: `hit` when everything came from the cache,
    /// `extended` when nothing was computed cold but something grew,
    /// otherwise `miss`.
    pub fn label(&self) -> &'static str {
        if self.misses > 0 {
            "miss"
        } else if self.extends > 0 {
            "extended"
        } else {
            "hit"
        }
    }
}

/// Errors from the evaluation path, mapped to HTTP statuses.
#[derive(Debug)]
pub enum ServeError {
    /// The request was malformed (400).
    BadRequest(String),
    /// The cache or evaluator failed server-side (500).
    Internal(String),
}

/// The daemon state shared by every worker thread.
pub struct Service {
    store: CellStore,
    registry: PolicyRegistry,
    /// Total `POST /v1/race` requests accepted.
    pub races: AtomicU64,
    /// Front-end counters (queue depth, 429s), attached once the event
    /// loop exists — `/v1/stats` reports zeros until then (oneshot mode,
    /// in-process tests).
    server_metrics: OnceLock<Arc<ServerMetrics>>,
}

impl Service {
    /// Open the cache directory and build the standard policy registry
    /// (no cache size budget).
    pub fn new(cache_dir: impl Into<PathBuf>) -> std::io::Result<Service> {
        Service::with_budget(cache_dir, None)
    }

    /// Like [`Service::new`] with an optional cache size budget in
    /// bytes (LRU eviction — see [`crate::cache`]).
    pub fn with_budget(
        cache_dir: impl Into<PathBuf>,
        max_cache_bytes: Option<u64>,
    ) -> std::io::Result<Service> {
        Ok(Service {
            store: CellStore::open_with_budget(cache_dir, max_cache_bytes)?,
            registry: suu_algos::standard_registry(),
            races: AtomicU64::new(0),
            server_metrics: OnceLock::new(),
        })
    }

    /// Wire the event loop's counters into `/v1/stats`. Later calls are
    /// ignored (there is one front end per daemon).
    pub fn attach_server_metrics(&self, metrics: Arc<ServerMetrics>) {
        let _ = self.server_metrics.set(metrics);
    }

    /// The backing store (tests, stats).
    pub fn store(&self) -> &CellStore {
        &self.store
    }

    /// Route one HTTP request.
    pub fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/v1/healthz") => Response::json(
                200,
                Json::obj()
                    .field("schema", suu_core::schemas::SERVE_HEALTH_V1)
                    .field("status", "ok")
                    .to_compact(),
            ),
            ("GET", "/v1/stats") => Response::json(200, self.stats_json().to_compact()),
            ("GET", path) if path.starts_with("/v1/cell/") => {
                let key = &path["/v1/cell/".len()..];
                match self.store.raw(key) {
                    Some(doc) => Response::json(200, doc),
                    None => Response::text(404, format!("no cached cell {key}")),
                }
            }
            ("POST", "/v1/race") => {
                self.races.fetch_add(1, Ordering::Relaxed);
                let parsed = std::str::from_utf8(&req.body)
                    .map_err(|_| "body is not UTF-8".to_string())
                    .and_then(|text| suu_core::json::parse(text).map_err(|e| e.to_string()))
                    .and_then(|json| RaceRequest::from_json(&json));
                let race = match parsed {
                    Ok(race) => race,
                    Err(e) => return Response::text(400, format!("bad request: {e}")),
                };
                match self.evaluate(&race) {
                    Ok((doc, counts)) => Response::json(200, doc.to_pretty())
                        .with_header("X-Suu-Cache", counts.label())
                        .with_header("X-Suu-Cache-Hits", counts.hits.to_string())
                        .with_header("X-Suu-Cache-Misses", counts.misses.to_string())
                        .with_header("X-Suu-Cache-Extended", counts.extends.to_string()),
                    Err(ServeError::BadRequest(e)) => {
                        Response::text(400, format!("bad request: {e}"))
                    }
                    Err(ServeError::Internal(e)) => Response::text(500, format!("error: {e}")),
                }
            }
            ("GET" | "POST", _) => Response::text(404, "not found"),
            _ => Response::text(405, "method not allowed"),
        }
    }

    /// The `/v1/stats` document (live counters; `cells_on_disk` is
    /// counted from the store each call). The original v1 fields keep
    /// their exact names and order — the budget/backpressure fields are
    /// strictly appended, so pre-existing consumers parse unchanged.
    pub fn stats_json(&self) -> Json {
        let (queue_depth, rejected_429) = self
            .server_metrics
            .get()
            .map(|m| {
                (
                    m.queue_depth.load(Ordering::Relaxed),
                    m.rejected_429.load(Ordering::Relaxed),
                )
            })
            .unwrap_or((0, 0));
        Json::obj()
            .field("schema", suu_core::schemas::SERVE_STATS_V1)
            .field("races", self.races.load(Ordering::Relaxed))
            .field("hits", self.store.hits.load(Ordering::Relaxed))
            .field("misses", self.store.misses.load(Ordering::Relaxed))
            .field("extends", self.store.extends.load(Ordering::Relaxed))
            .field("coalesced", self.store.coalesced.load(Ordering::Relaxed))
            .field("inflight", self.store.inflight_count())
            .field("cells_on_disk", self.store.cells_on_disk())
            .field("evictions", self.store.evictions.load(Ordering::Relaxed))
            .field("cache_bytes", self.store.cache_bytes())
            .field("queue_depth", queue_depth)
            .field("rejected_429", rejected_429)
    }

    /// Evaluate a parsed race through the cache, producing the
    /// `suu-results/v2` response document (wall clocks off — see the
    /// module docs) and the cache accounting for the headers.
    pub fn evaluate(&self, race: &RaceRequest) -> Result<(Json, CacheCounts), ServeError> {
        let specs: Vec<PolicySpec> = race
            .policies
            .iter()
            .map(|p| {
                PolicySpec::parse(p)
                    .map_err(|e| ServeError::BadRequest(format!("bad policy spec {p:?}: {e}")))
            })
            .collect::<Result<_, _>>()?;

        let mut builder = ResultsBuilder::new("suud".to_string()).record_wall_clocks(false);
        let mut counts = CacheCounts::default();

        for rs in &race.scenarios {
            builder.add_scenario(&rs.scenario);
            let inst = rs.scenario.instantiate();
            let lb_result = race
                .ratios_to_lower_bound
                .then(|| lower_bound(&inst).map_err(|e| e.to_string()));
            let lb = lb_result.as_ref().and_then(|r| r.as_ref().ok()).copied();
            let lb_error = lb_result.as_ref().and_then(|r| r.as_ref().err()).cloned();

            let evaluator = Evaluator::new(EvalConfig {
                trials: race.precision.max_trials(),
                // Same derivation as the Race runner: identity-mixed
                // per-scenario stream, shared across the scenario's
                // policies.
                master_seed: scenario_master_seed(race.master_seed, &rs.scenario),
                threads: 0,
                exec: race.exec,
                ..EvalConfig::default()
            });

            for (spec, policy_text) in specs.iter().zip(&race.policies) {
                let key = CellKey::new(&cell_key_fields(
                    &rs.params,
                    policy_text,
                    race.master_seed,
                    semantics_str(race.exec.semantics),
                    race.exec.max_steps,
                ));
                match self.evaluate_cell(&key, &evaluator, &inst, spec, race.precision) {
                    Ok((stats, stop_reason, status)) => {
                        counts.record(status);
                        let mean = stats.mean_makespan();
                        let mut extra: Vec<(&str, Json)> = vec![
                            ("stop_reason", Json::Str(stop_reason.as_str().into())),
                            ("cell_key", Json::Str(key.hex.clone())),
                        ];
                        if let Some(lb) = lb {
                            extra.push(("lower_bound", Json::Num(lb)));
                            extra.push(("ratio_to_lb", Json::Num(mean / lb)));
                        }
                        if let Some(e) = &lb_error {
                            extra.push(("lower_bound_error", Json::Str(e.clone())));
                        }
                        builder.add_cell(&rs.scenario.id, policy_text, &stats, &extra);
                    }
                    Err(CellError::Registry(e @ RegistryError::UnsupportedStructure { .. })) => {
                        builder.add_failure(&rs.scenario.id, policy_text, "skipped", e.to_string());
                    }
                    Err(CellError::Registry(e)) => {
                        builder.add_failure(&rs.scenario.id, policy_text, "error", e.to_string());
                    }
                    Err(CellError::Cache(e)) => return Err(ServeError::Internal(e)),
                }
            }
        }

        Ok((builder.finish(), counts))
    }

    /// One cell through the cache, under the in-flight guard.
    fn evaluate_cell(
        &self,
        key: &CellKey,
        evaluator: &Evaluator,
        inst: &std::sync::Arc<suu_core::SuuInstance>,
        spec: &PolicySpec,
        precision: Precision,
    ) -> Result<(EvalStats, StopReason, CacheStatus), CellError> {
        self.store.with_inflight(key, || {
            match self.store.load(key).map_err(CellError::Cache)? {
                Some(cached) => {
                    let trials = cached.stats.trials() as usize;
                    let satisfied = {
                        let (mean, ci95) = match cached.stats.summary() {
                            Some(s) => (s.mean, s.ci95),
                            None => (0.0, f64::INFINITY),
                        };
                        precision.check(trials, mean, ci95)
                    };
                    if let Some(reason) = satisfied {
                        self.store.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((cached.stats, reason, CacheStatus::Hit));
                    }
                    // Resume with the cell's own config (seed, semantics,
                    // step cap asserted to match inside).
                    let adaptive = evaluator
                        .resume_adaptive_spec(&self.registry, inst, spec, cached.stats, precision)
                        .map_err(CellError::Registry)?;
                    self.store
                        .store(
                            key,
                            &adaptive.stats.policy,
                            &adaptive.stats,
                            adaptive.stop_reason.as_str(),
                        )
                        .map_err(CellError::Cache)?;
                    self.store.extends.fetch_add(1, Ordering::Relaxed);
                    Ok((adaptive.stats, adaptive.stop_reason, CacheStatus::Extended))
                }
                None => {
                    let adaptive = evaluator
                        .run_adaptive_spec(&self.registry, inst, spec, precision)
                        .map_err(CellError::Registry)?;
                    self.store
                        .store(
                            key,
                            &adaptive.stats.policy,
                            &adaptive.stats,
                            adaptive.stop_reason.as_str(),
                        )
                        .map_err(CellError::Cache)?;
                    self.store.misses.fetch_add(1, Ordering::Relaxed);
                    Ok((adaptive.stats, adaptive.stop_reason, CacheStatus::Miss))
                }
            }
        })
    }
}

enum CellError {
    Registry(RegistryError),
    Cache(String),
}

/// The `suu-serve/stats/v1` field names, in emission order. The router
/// aggregates shard stats by summing exactly these fields (and appending
/// its own), and the append-only regression test pins the order.
pub const STATS_FIELDS: [&str; 12] = [
    "schema",
    "races",
    "hits",
    "misses",
    "extends",
    "coalesced",
    "inflight",
    "cells_on_disk",
    "evictions",
    "cache_bytes",
    "queue_depth",
    "rejected_429",
];

/// Canonical wire spelling of a [`Semantics`] (cell-key field).
pub fn semantics_str(s: Semantics) -> &'static str {
    match s {
        Semantics::Suu => "suu",
        Semantics::SuuStar => "suu-star",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "suu-serve-service-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn smoke_request(trials: u64) -> RaceRequest {
        let text = format!(
            r#"{{
                "scenarios": [{{"family": "uniform", "m": 3, "n": 6,
                                "lo": 0.3, "hi": 0.9, "seed": 7}}],
                "policies": ["gang-sequential", "greedy-lr"],
                "trials": {trials},
                "master_seed": 21
            }}"#
        );
        RaceRequest::from_json(&suu_core::json::parse(&text).unwrap()).unwrap()
    }

    #[test]
    fn identical_requests_replay_byte_identically() {
        let service = Service::new(tempdir("replay")).unwrap();
        let (doc_a, counts_a) = service.evaluate(&smoke_request(6)).unwrap();
        let (doc_b, counts_b) = service.evaluate(&smoke_request(6)).unwrap();
        assert_eq!(doc_a.to_pretty(), doc_b.to_pretty());
        assert_eq!((counts_a.misses, counts_a.hits), (2, 0));
        assert_eq!((counts_b.misses, counts_b.hits), (0, 2));
        assert_eq!(counts_a.label(), "miss");
        assert_eq!(counts_b.label(), "hit");
        // The cells are addressed and stamped.
        let cells = doc_a.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 2);
        for cell in cells {
            let key = cell.get("cell_key").unwrap().as_str().unwrap();
            assert!(crate::cache::is_valid_key_hex(key));
            assert!(service.store().raw(key).is_some());
        }
        let _ = std::fs::remove_dir_all(service.store().dir());
    }

    #[test]
    fn tighter_precision_extends_instead_of_recomputing() {
        let service = Service::new(tempdir("extend")).unwrap();
        let (doc_small, _) = service.evaluate(&smoke_request(6)).unwrap();
        let (doc_big, counts) = service.evaluate(&smoke_request(18)).unwrap();
        assert_eq!(counts.label(), "extended");
        assert_eq!((counts.extends, counts.misses), (2, 0));
        let used = |doc: &Json, i: usize| {
            doc.get("cells").unwrap().as_array().unwrap()[i]
                .get("trials_used")
                .unwrap()
                .as_u64()
                .unwrap()
        };
        assert_eq!(used(&doc_small, 0), 6);
        assert_eq!(used(&doc_big, 0), 18);
        // The extended cell is bitwise a cold 18-trial run.
        let cold = Service::new(tempdir("extend-cold")).unwrap();
        let (doc_cold, _) = cold.evaluate(&smoke_request(18)).unwrap();
        assert_eq!(doc_big.to_pretty(), doc_cold.to_pretty());
        // A re-request at the smaller budget is a pure hit at the grown
        // count (cells never shrink) and stays deterministic.
        let (doc_rerun, counts) = service.evaluate(&smoke_request(6)).unwrap();
        assert_eq!(counts.label(), "hit");
        assert_eq!(used(&doc_rerun, 0), 18);
        let _ = std::fs::remove_dir_all(service.store().dir());
        let _ = std::fs::remove_dir_all(cold.store().dir());
    }

    #[test]
    fn capability_skips_and_unknown_policies_are_cells_not_failures() {
        let service = Service::new(tempdir("skip")).unwrap();
        let text = r#"{
            "scenarios": [{"family": "chains", "m": 3, "n": 8, "chains": 3, "seed": 4}],
            "policies": ["suu-i-sem", "greedy-lr"],
            "trials": 4
        }"#;
        let race = RaceRequest::from_json(&suu_core::json::parse(text).unwrap()).unwrap();
        let (doc, counts) = service.evaluate(&race).unwrap();
        let cells = doc.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 2);
        assert!(
            cells[0].get("skipped").is_some(),
            "suu-i-sem can't do chains"
        );
        assert!(cells[1].get("mean_makespan").is_some());
        assert_eq!(counts.misses, 1, "skipped cells never touch the cache");
        // An unknown policy is an "error" cell (the registry rejects it
        // at build time), never a cached evaluation or a crash.
        let race = RaceRequest::from_json(
            &suu_core::json::parse(
                r#"{
                    "scenarios": [{"family": "adversarial", "m": 2, "n": 4, "seed": 1}],
                    "policies": ["no-such-policy"],
                    "trials": 2
                }"#,
            )
            .unwrap(),
        )
        .unwrap();
        let (doc, counts) = service.evaluate(&race).unwrap();
        let cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
        let error = cell.get("error").unwrap().as_str().unwrap();
        assert!(error.contains("unknown policy"), "{error}");
        assert_eq!(
            (counts.hits, counts.misses, counts.extends),
            (0, 0, 0),
            "error cells never touch the cache"
        );
        let _ = std::fs::remove_dir_all(service.store().dir());
    }

    #[test]
    fn http_routing_end_to_end_in_process() {
        let service = std::sync::Arc::new(Service::new(tempdir("routing")).unwrap());
        let req = |method: &str, path: &str, body: &str| Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        let health = service.handle(&req("GET", "/v1/healthz", ""));
        assert_eq!(health.status, 200);
        assert!(String::from_utf8(health.body).unwrap().contains("\"ok\""));

        let bad = service.handle(&req("POST", "/v1/race", "{nope"));
        assert_eq!(bad.status, 400);

        let body = r#"{
            "scenarios": [{"family": "adversarial", "m": 2, "n": 4, "seed": 9}],
            "policies": ["best-machine"],
            "trials": 4
        }"#;
        let first = service.handle(&req("POST", "/v1/race", body));
        assert_eq!(first.status, 200);
        let cache_header = |r: &Response| {
            r.headers
                .iter()
                .find(|(k, _)| k == "X-Suu-Cache")
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(cache_header(&first), "miss");
        let second = service.handle(&req("POST", "/v1/race", body));
        assert_eq!(second.status, 200);
        assert_eq!(cache_header(&second), "hit");
        assert_eq!(first.body, second.body, "replay must be byte-identical");

        let doc = suu_core::json::parse(std::str::from_utf8(&second.body).unwrap()).unwrap();
        let key = doc.get("cells").unwrap().as_array().unwrap()[0]
            .get("cell_key")
            .unwrap()
            .as_str()
            .unwrap();
        let cell = service.handle(&req("GET", &format!("/v1/cell/{key}"), ""));
        assert_eq!(cell.status, 200);
        assert!(String::from_utf8(cell.body)
            .unwrap()
            .contains(crate::cache::CELL_SCHEMA));
        assert_eq!(
            service
                .handle(&req("GET", "/v1/cell/ffffffffffffffff", ""))
                .status,
            404
        );

        let stats = service.handle(&req("GET", "/v1/stats", ""));
        let stats = suu_core::json::parse(std::str::from_utf8(&stats.body).unwrap()).unwrap();
        assert_eq!(stats.get("races").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("cells_on_disk").unwrap().as_u64(), Some(1));
        // Appended budget/backpressure fields (zeros until a budget or a
        // front end exists, except cache_bytes which mirrors the store).
        assert_eq!(stats.get("evictions").unwrap().as_u64(), Some(0));
        assert!(stats.get("cache_bytes").unwrap().as_u64().unwrap() > 0);
        assert_eq!(stats.get("queue_depth").unwrap().as_u64(), Some(0));
        assert_eq!(stats.get("rejected_429").unwrap().as_u64(), Some(0));
        service.attach_server_metrics(std::sync::Arc::new(crate::server::ServerMetrics::default()));
        let stats = service.handle(&req("GET", "/v1/stats", ""));
        assert_eq!(stats.status, 200);

        assert_eq!(service.handle(&req("GET", "/nope", "")).status, 404);
        assert_eq!(service.handle(&req("DELETE", "/v1/race", "")).status, 405);
        let _ = std::fs::remove_dir_all(service.store().dir());
    }
}
