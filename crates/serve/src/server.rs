//! The nonblocking, event-loop HTTP front end.
//!
//! The host serving this daemon is small (often 1 core), so concurrency
//! comes from **I/O multiplexing, not threads**: a single event-loop
//! thread owns the listener and every connection through an epoll
//! readiness loop (the offline [`mio`] shim), and a small pool of
//! compute workers runs the [`Handler`]. The two sides meet at a
//! **bounded** job queue — the admission-control point.
//!
//! ## Connection lifecycle
//!
//! `accept` → nonblocking reads accumulate into a per-connection input
//! buffer → the incremental parser ([`crate::http::parse_request`])
//! peels off complete requests — **keep-alive with pipelining**, so one
//! buffer fill can yield several. Each request gets a sequence number
//! and is pushed to the job queue; finished responses come back on a
//! completion queue (the loop is woken through a self-pipe) and are
//! serialized **strictly in sequence order**, so pipelined responses
//! can never reorder no matter how the compute pool interleaves.
//! Writes are nonblocking with a per-connection output buffer;
//! `WRITABLE` interest exists only while that buffer is non-empty.
//!
//! ## Backpressure
//!
//! * **Admission**: when the job queue is full, the request is answered
//!   `429 Too Many Requests` + `Retry-After` *in its pipeline slot* —
//!   overflow costs a queue probe, never unbounded memory.
//! * **Pipelining cap**: a connection with [`ServerConfig::max_pipeline`]
//!   requests in flight stops being parsed (and, past a buffer soft cap,
//!   read — its readiness interest is dropped) until responses drain.
//! * **Idle deadline**: connections with no in-flight work and no
//!   activity for [`ServerConfig::idle_timeout`] are reaped by the
//!   event loop — the old blocking per-socket `set_read_timeout` has no
//!   meaning in a readiness loop, so the deadline lives here instead.
//!
//! A handler panic is caught in the worker and answered as a 500; the
//! worker, the loop, and the connection all survive it.

use crate::http::{parse_request, Handler, Parsed, Request, Response};
use crate::unpoisoned;
use mio::{Events, Interest, Poll, Token};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// Connection slot `s` registers as token `s + CONN_BASE`.
const CONN_BASE: usize = 2;
/// Read chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// Stop reading a connection whose *unparsed* input exceeds this (a
/// pipelining flood past the in-flight cap); reads resume as responses
/// drain. One max-sized request always fits.
const INBUF_SOFT_CAP: usize = crate::http::MAX_HEAD_BYTES + crate::http::MAX_BODY_BYTES + 64 * 1024;
/// `Retry-After` seconds suggested with a 429.
const RETRY_AFTER_SECS: &str = "1";

/// Tunables for [`serve_with`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Compute worker threads running the [`Handler`].
    pub workers: usize,
    /// Bounded job-queue capacity (waiting requests, not counting the
    /// ones workers are executing); overflow answers 429.
    pub queue_depth: usize,
    /// Reap a connection with no in-flight work after this much
    /// inactivity.
    pub idle_timeout: Duration,
    /// Most requests one connection may have in flight before the loop
    /// stops parsing (then reading) it.
    pub max_pipeline: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(10),
            max_pipeline: 32,
        }
    }
}

/// Live serving counters, shared with whoever wants to report them
/// (`suud` feeds these into `GET /v1/stats`).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Requests parsed off connections (including ones answered 429).
    pub requests: AtomicU64,
    /// Requests rejected with 429 because the job queue was full.
    pub rejected_429: AtomicU64,
    /// Current job-queue length (gauge, waiting jobs only).
    pub queue_depth: AtomicU64,
    /// Connections closed by the idle deadline.
    pub reaped_idle: AtomicU64,
}

struct Job {
    slot: usize,
    gen: u64,
    seq: u64,
    request: Request,
}

struct Done {
    slot: usize,
    gen: u64,
    seq: u64,
    response: Response,
}

/// The bounded compute queue: `try_push` from the event loop (never
/// blocks — full means 429), blocking `pop` from the workers.
struct JobQueue {
    cap: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
    metrics: Arc<ServerMetrics>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(cap: usize, metrics: Arc<ServerMetrics>) -> JobQueue {
        JobQueue {
            cap,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            metrics,
        }
    }

    fn try_push(&self, job: Job) -> bool {
        let mut st = unpoisoned(self.state.lock());
        if st.closed || st.jobs.len() >= self.cap {
            return false;
        }
        st.jobs.push_back(job);
        self.metrics
            .queue_depth
            .store(st.jobs.len() as u64, Ordering::Relaxed);
        drop(st);
        self.ready.notify_one();
        true
    }

    fn pop(&self) -> Option<Job> {
        let mut st = unpoisoned(self.state.lock());
        loop {
            if let Some(job) = st.jobs.pop_front() {
                self.metrics
                    .queue_depth
                    .store(st.jobs.len() as u64, Ordering::Relaxed);
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = unpoisoned(self.ready.wait(st));
        }
    }

    fn close(&self) {
        unpoisoned(self.state.lock()).closed = true;
        self.ready.notify_all();
    }
}

/// Wakes the event loop out of `poll` (self-pipe). Writes are
/// nonblocking: a full pipe already means a wakeup is pending.
struct Waker {
    tx: UnixStream,
}

impl Waker {
    fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }
}

struct Completions {
    done: Mutex<Vec<Done>>,
    waker: Arc<Waker>,
}

impl Completions {
    fn push(&self, done: Done) {
        unpoisoned(self.done.lock()).push(done);
        self.waker.wake();
    }
}

/// One live connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Distinguishes this tenancy of the slot from earlier ones, so a
    /// completion for a dead connection can never reach its successor.
    gen: u64,
    /// Unparsed input.
    inbuf: Vec<u8>,
    /// Serialized-but-unsent output.
    outbuf: Vec<u8>,
    /// Sequence number the next parsed request gets.
    next_seq: u64,
    /// Sequence number whose response must be serialized next.
    write_seq: u64,
    /// Finished responses that arrived out of order.
    done: BTreeMap<u64, Response>,
    /// Requests parsed but not yet serialized into `outbuf`.
    inflight: usize,
    /// Close once the response with this sequence number is flushed
    /// (`Connection: close` or a parse error).
    close_after: Option<u64>,
    /// Peer EOF seen, or input poisoned — stop reading/parsing.
    read_closed: bool,
    /// Current epoll registration (`None` = deregistered while stalled).
    interest: Option<Interest>,
    last_activity: Instant,
}

/// A running event-loop server. Dropping the handle does *not* stop it;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    queue: Arc<JobQueue>,
    metrics: Arc<ServerMetrics>,
    loop_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live serving counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stop the event loop, drain the worker pool, and join everything.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Bind `addr` and serve it with the default configuration at the given
/// compute-pool size.
pub fn serve(
    addr: impl ToSocketAddrs,
    workers: usize,
    handler: Arc<dyn Handler>,
) -> std::io::Result<ServerHandle> {
    serve_with(
        addr,
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
        handler,
        Arc::new(ServerMetrics::default()),
    )
}

/// Bind `addr` and serve it until [`ServerHandle::shutdown`]. `metrics`
/// is caller-supplied so the application can report the counters (pass
/// a fresh `Default` if unwanted).
pub fn serve_with(
    addr: impl ToSocketAddrs,
    cfg: ServerConfig,
    handler: Arc<dyn Handler>,
    metrics: Arc<ServerMetrics>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let poll = Poll::new()?;
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    poll.registry()
        .register(&listener, LISTENER, Interest::READABLE)?;
    poll.registry()
        .register(&wake_rx, WAKER, Interest::READABLE)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let waker = Arc::new(Waker { tx: wake_tx });
    let queue = Arc::new(JobQueue::new(cfg.queue_depth.max(1), Arc::clone(&metrics)));
    let completions = Arc::new(Completions {
        done: Mutex::new(Vec::new()),
        waker: Arc::clone(&waker),
    });

    // Spawn failures (thread exhaustion) surface as the io::Error they
    // are; any workers already running are drained via the closed queue
    // so a failed startup leaks nothing.
    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for worker in 0..cfg.workers.max(1) {
        let spawned = {
            let queue = Arc::clone(&queue);
            let completions = Arc::clone(&completions);
            let handler = Arc::clone(&handler);
            std::thread::Builder::new()
                .name(format!("suud-worker-{worker}"))
                .spawn(move || worker_loop(queue, completions, handler))
        };
        match spawned {
            Ok(handle) => workers.push(handle),
            Err(e) => {
                queue.close();
                for handle in workers {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    }

    let event_loop = EventLoop {
        poll,
        listener,
        wake_rx,
        conns: Vec::new(),
        free: Vec::new(),
        next_gen: 0,
        queue: Arc::clone(&queue),
        completions,
        metrics: Arc::clone(&metrics),
        cfg,
        shutdown: Arc::clone(&shutdown),
    };
    let loop_thread = match std::thread::Builder::new()
        .name("suud-event-loop".to_string())
        .spawn(move || event_loop.run())
    {
        Ok(handle) => handle,
        Err(e) => {
            queue.close();
            for handle in workers {
                let _ = handle.join();
            }
            return Err(e);
        }
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        waker,
        queue,
        metrics,
        loop_thread: Some(loop_thread),
        workers,
    })
}

fn worker_loop(queue: Arc<JobQueue>, completions: Arc<Completions>, handler: Arc<dyn Handler>) {
    while let Some(job) = queue.pop() {
        let Job {
            slot,
            gen,
            seq,
            request,
        } = job;
        // A panicking handler answers 500 and the worker lives on — one
        // poisoned request must not shrink the pool forever.
        let response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler.handle(&request)))
                .unwrap_or_else(|_| Response::text(500, "internal error: handler panicked"));
        completions.push(Done {
            slot,
            gen,
            seq,
            response,
        });
    }
}

struct EventLoop {
    poll: Poll,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    queue: Arc<JobQueue>,
    completions: Arc<Completions>,
    metrics: Arc<ServerMetrics>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = Events::with_capacity(256);
        loop {
            let timeout = self.poll_timeout();
            if self.poll.poll(&mut events, timeout).is_err() {
                // Only non-EINTR errors surface here; treat as transient
                // rather than killing the daemon's only front end.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            for event in events.iter() {
                match event.token() {
                    LISTENER => self.accept_ready(),
                    WAKER => self.drain_waker(),
                    Token(t) => {
                        let slot = t - CONN_BASE;
                        if event.is_readable() || event.is_read_closed() || event.is_error() {
                            self.read_conn(slot);
                        }
                        self.progress(slot);
                    }
                }
            }
            self.drain_completions();
            self.reap_idle();
        }
    }

    /// Sleep until the next idle deadline could fire (connections with
    /// work in flight will produce completions, which wake the loop via
    /// the self-pipe instead).
    fn poll_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        self.conns
            .iter()
            .flatten()
            .filter(|c| c.inflight == 0)
            .map(|c| (c.last_activity + self.cfg.idle_timeout).saturating_duration_since(now))
            .min()
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    self.next_gen += 1;
                    let conn = Conn {
                        stream,
                        gen: self.next_gen,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        next_seq: 0,
                        write_seq: 0,
                        done: BTreeMap::new(),
                        inflight: 0,
                        close_after: None,
                        read_closed: false,
                        interest: Some(Interest::READABLE),
                        last_activity: Instant::now(),
                    };
                    if self
                        .poll
                        .registry()
                        .register(&conn.stream, Token(slot + CONN_BASE), Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    self.conns[slot] = Some(conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent accept failures (fd exhaustion) must not
                    // busy-spin the loop at 100% CPU; back off briefly —
                    // level-triggered epoll will re-report the backlog.
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut scratch = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut scratch), Ok(n) if n > 0) {}
    }

    fn read_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut chunk = [0u8; READ_CHUNK];
        while !conn.read_closed && conn.inbuf.len() < INBUF_SOFT_CAP {
            match conn.stream.read(&mut chunk) {
                Ok(0) => conn.read_closed = true,
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => conn.read_closed = true,
            }
        }
    }

    /// Parse what the buffer affords, pump completed responses out in
    /// order, flush, and update registration — the one entry point after
    /// any activity on a connection. Safe on already-closed slots.
    fn progress(&mut self, slot: usize) {
        self.parse_conn(slot);
        self.pump_and_flush(slot);
    }

    fn parse_conn(&mut self, slot: usize) {
        let queue = Arc::clone(&self.queue);
        let metrics = Arc::clone(&self.metrics);
        let max_pipeline = self.cfg.max_pipeline.max(1);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        while conn.close_after.is_none() && conn.inflight < max_pipeline && !conn.inbuf.is_empty() {
            match parse_request(&conn.inbuf) {
                Parsed::Incomplete => break,
                Parsed::Bad(bad) => {
                    // The byte stream is poisoned: answer in this
                    // request's pipeline slot, then close.
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.inflight += 1;
                    metrics.requests.fetch_add(1, Ordering::Relaxed);
                    conn.done
                        .insert(seq, Response::text(bad.status(), bad.message()));
                    conn.close_after = Some(seq);
                    conn.read_closed = true;
                    conn.inbuf.clear();
                }
                Parsed::Complete { request, consumed } => {
                    conn.inbuf.drain(..consumed);
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.inflight += 1;
                    metrics.requests.fetch_add(1, Ordering::Relaxed);
                    if request.wants_close() {
                        conn.close_after = Some(seq);
                        conn.read_closed = true;
                        conn.inbuf.clear();
                    }
                    let job = Job {
                        slot,
                        gen: conn.gen,
                        seq,
                        request,
                    };
                    if !queue.try_push(job) {
                        // Admission control: full queue means an instant
                        // 429 in order, not unbounded buffered work.
                        metrics.rejected_429.fetch_add(1, Ordering::Relaxed);
                        conn.done.insert(
                            seq,
                            Response::text(429, "server busy: compute queue is full")
                                .with_header("Retry-After", RETRY_AFTER_SECS),
                        );
                    }
                }
            }
        }
    }

    fn pump_and_flush(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        // Serialize finished responses strictly in sequence order.
        while let Some(response) = conn.done.remove(&conn.write_seq) {
            let keep_alive = conn.close_after != Some(conn.write_seq);
            conn.outbuf
                .extend_from_slice(&response.to_bytes(keep_alive));
            conn.write_seq += 1;
            conn.inflight -= 1;
        }
        // Nonblocking flush.
        let mut dead = false;
        while !conn.outbuf.is_empty() {
            match conn.stream.write(&conn.outbuf) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.outbuf.drain(..n);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        let answered_last = conn.close_after.is_some_and(|last| conn.write_seq > last);
        let drained = conn.outbuf.is_empty() && conn.inflight == 0;
        if dead || (drained && (answered_last || conn.read_closed)) {
            self.close_conn(slot);
            return;
        }
        self.update_interest(slot);
    }

    fn update_interest(&mut self, slot: usize) {
        let max_pipeline = self.cfg.max_pipeline.max(1);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let want_read =
            !conn.read_closed && conn.inflight < max_pipeline && conn.inbuf.len() < INBUF_SOFT_CAP;
        let want_write = !conn.outbuf.is_empty();
        let want = match (want_read, want_write) {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            // Fully stalled (awaiting compute): deregister — with
            // level-triggered epoll an unconsumed condition would
            // otherwise busy-loop the poll.
            (false, false) => None,
        };
        if want == conn.interest {
            return;
        }
        let registry = self.poll.registry();
        let token = Token(slot + CONN_BASE);
        let ok = match (conn.interest, want) {
            (Some(_), Some(interest)) => registry.reregister(&conn.stream, token, interest).is_ok(),
            (None, Some(interest)) => registry.register(&conn.stream, token, interest).is_ok(),
            (Some(_), None) => registry.deregister(&conn.stream).is_ok(),
            (None, None) => true,
        };
        if ok {
            conn.interest = want;
        } else {
            self.close_conn(slot);
        }
    }

    fn drain_completions(&mut self) {
        let done: Vec<Done> = {
            let mut guard = unpoisoned(self.completions.done.lock());
            std::mem::take(&mut *guard)
        };
        let mut touched: Vec<usize> = Vec::with_capacity(done.len());
        for d in done {
            let Some(conn) = self.conns.get_mut(d.slot).and_then(Option::as_mut) else {
                continue; // connection died while computing
            };
            if conn.gen != d.gen {
                continue; // slot was reused; response belongs to the past
            }
            conn.done.insert(d.seq, d.response);
            touched.push(d.slot);
        }
        touched.sort_unstable();
        touched.dedup();
        for slot in touched {
            // Draining responses may free pipeline room: pump first,
            // then parse what the buffer still holds.
            self.pump_and_flush(slot);
            self.progress(slot);
        }
    }

    fn reap_idle(&mut self) {
        let now = Instant::now();
        let idle = self.cfg.idle_timeout;
        let stale: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.as_ref()
                    .is_some_and(|c| c.inflight == 0 && now.duration_since(c.last_activity) >= idle)
            })
            .map(|(slot, _)| slot)
            .collect();
        for slot in stale {
            self.metrics.reaped_idle.fetch_add(1, Ordering::Relaxed);
            self.close_conn(slot);
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
            if conn.interest.is_some() {
                let _ = self.poll.registry().deregister(&conn.stream);
            }
            drop(conn);
            self.free.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    /// Framed keep-alive test client.
    struct Client {
        reader: std::io::BufReader<TcpStream>,
    }

    struct Reply {
        status: u16,
        headers: Vec<(String, String)>,
        body: Vec<u8>,
    }

    impl Reply {
        fn header(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        }

        fn text(&self) -> &str {
            std::str::from_utf8(&self.body).unwrap()
        }
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            Client {
                reader: std::io::BufReader::new(stream),
            }
        }

        fn send_raw(&mut self, raw: &[u8]) {
            self.reader.get_mut().write_all(raw).unwrap();
        }

        fn send(&mut self, method: &str, path: &str, body: Option<&str>) {
            let mut req = format!("{method} {path} HTTP/1.1\r\nHost: t\r\n");
            if let Some(body) = body {
                req.push_str(&format!("Content-Length: {}\r\n", body.len()));
            }
            req.push_str("\r\n");
            if let Some(body) = body {
                req.push_str(body);
            }
            self.send_raw(req.as_bytes());
        }

        /// Read one framed response (keep-alive safe).
        fn read_reply(&mut self) -> Reply {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            let status: u16 = line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad status line {line:?}"));
            let mut headers = Vec::new();
            loop {
                let mut line = String::new();
                self.reader.read_line(&mut line).unwrap();
                let trimmed = line.trim_end_matches(['\r', '\n']);
                if trimmed.is_empty() {
                    break;
                }
                if let Some((k, v)) = trimmed.split_once(':') {
                    headers.push((k.trim().to_string(), v.trim().to_string()));
                }
            }
            let len: usize = headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                .and_then(|(_, v)| v.parse().ok())
                .expect("Content-Length");
            let mut body = vec![0u8; len];
            self.reader.read_exact(&mut body).unwrap();
            Reply {
                status,
                headers,
                body,
            }
        }

        /// Everything until EOF (connection closed by the server).
        fn read_to_end(&mut self) -> Vec<u8> {
            let mut out = Vec::new();
            let _ = self.reader.read_to_end(&mut out);
            out
        }
    }

    fn echo_handler() -> Arc<dyn Handler> {
        Arc::new(|req: &Request| {
            Response::json(
                200,
                format!(
                    "{{\"method\":\"{}\",\"path\":\"{}\",\"body_len\":{}}}",
                    req.method,
                    req.path,
                    req.body.len()
                ),
            )
            .with_header("X-Echo", "yes")
        })
    }

    fn echo_server(workers: usize) -> ServerHandle {
        serve("127.0.0.1:0", workers, echo_handler()).unwrap()
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = echo_server(2);
        let mut client = Client::connect(server.addr());
        for i in 0..5 {
            client.send("GET", &format!("/req/{i}"), None);
            let reply = client.read_reply();
            assert_eq!(reply.status, 200);
            assert_eq!(reply.header("Connection"), Some("keep-alive"));
            assert!(
                reply.text().contains(&format!("/req/{i}")),
                "{}",
                reply.text()
            );
        }
        client.send("POST", "/v1/x", Some("hello"));
        assert!(client.read_reply().text().contains("\"body_len\":5"));
        assert_eq!(server.metrics().accepted.load(Ordering::Relaxed), 1);
        assert_eq!(server.metrics().requests.load(Ordering::Relaxed), 6);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = echo_server(3);
        let mut client = Client::connect(server.addr());
        // All six at once; compute order is up to the pool, response
        // order must be request order.
        let mut raw = Vec::new();
        for i in 0..6 {
            raw.extend_from_slice(format!("GET /pipe/{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
        }
        client.send_raw(&raw);
        for i in 0..6 {
            let reply = client.read_reply();
            assert_eq!(reply.status, 200);
            assert!(
                reply.text().contains(&format!("/pipe/{i}")),
                "response {i} out of order: {}",
                reply.text()
            );
        }
        server.shutdown();
    }

    #[test]
    fn connection_close_is_honored() {
        let server = echo_server(1);
        let mut client = Client::connect(server.addr());
        client.send_raw(b"GET /last HTTP/1.1\r\nConnection: close\r\n\r\n");
        let reply = client.read_reply();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("Connection"), Some("close"));
        assert!(client.read_to_end().is_empty(), "server must close");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_4xx_then_close() {
        let server = echo_server(1);
        let mut client = Client::connect(server.addr());
        client.send_raw(b"garbage\r\n\r\n");
        assert_eq!(client.read_reply().status, 400);
        assert!(client.read_to_end().is_empty());

        let mut client = Client::connect(server.addr());
        let mut raw = b"GET /".to_vec();
        raw.resize(crate::http::MAX_HEAD_BYTES + 512, b'a');
        client.send_raw(&raw);
        assert_eq!(client.read_reply().status, 413);
        server.shutdown();
    }

    #[test]
    fn saturated_queue_returns_429_with_retry_after_in_order() {
        let handler: Arc<dyn Handler> = Arc::new(|req: &Request| {
            if req.path == "/slow" {
                std::thread::sleep(Duration::from_millis(400));
            }
            Response::text(200, "done")
        });
        let metrics = Arc::new(ServerMetrics::default());
        let server = serve_with(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                ..ServerConfig::default()
            },
            handler,
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut client = Client::connect(server.addr());
        // Occupy the single worker…
        client.send("GET", "/slow", None);
        std::thread::sleep(Duration::from_millis(100));
        // …then fill the queue (1 slot) and overflow it.
        client.send("GET", "/slow", None);
        client.send("GET", "/q3", None);
        client.send("GET", "/q4", None);
        let statuses: Vec<u16> = (0..4).map(|_| client.read_reply().status).collect();
        assert_eq!(statuses, vec![200, 200, 429, 429]);
        // Re-read the last two for their headers.
        client.send("GET", "/q5", None);
        let reply = client.read_reply();
        assert_eq!(reply.status, 200, "the pool must recover after a 429");
        assert_eq!(metrics.rejected_429.load(Ordering::Relaxed), 2);
        server.shutdown();
    }

    #[test]
    fn rejected_requests_carry_retry_after() {
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| {
            std::thread::sleep(Duration::from_millis(300));
            Response::text(200, "done")
        });
        let server = serve_with(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                ..ServerConfig::default()
            },
            handler,
            Arc::new(ServerMetrics::default()),
        )
        .unwrap();
        let mut client = Client::connect(server.addr());
        client.send("GET", "/a", None);
        std::thread::sleep(Duration::from_millis(80));
        client.send("GET", "/b", None);
        client.send("GET", "/c", None);
        let mut saw_429 = false;
        for _ in 0..3 {
            let reply = client.read_reply();
            if reply.status == 429 {
                saw_429 = true;
                assert_eq!(reply.header("Retry-After"), Some(RETRY_AFTER_SECS));
            }
        }
        assert!(saw_429, "overflow must be answered 429");
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_by_the_event_loop() {
        let metrics = Arc::new(ServerMetrics::default());
        let server = serve_with(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                idle_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
            echo_handler(),
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut client = Client::connect(server.addr());
        // A request keeps it alive…
        client.send("GET", "/alive", None);
        assert_eq!(client.read_reply().status, 200);
        // …then silence: the deadline closes it from the server side.
        let start = Instant::now();
        assert!(client.read_to_end().is_empty());
        assert!(
            start.elapsed() >= Duration::from_millis(100),
            "reaped too early"
        );
        assert!(metrics.reaped_idle.load(Ordering::Relaxed) >= 1);
        server.shutdown();
    }

    #[test]
    fn panicking_handler_answers_500_and_the_pool_survives() {
        let server = serve(
            "127.0.0.1:0",
            1,
            Arc::new(|req: &Request| {
                if req.path == "/boom" {
                    panic!("handler bug");
                }
                Response::text(200, "fine")
            }),
        )
        .unwrap();
        let mut client = Client::connect(server.addr());
        client.send("GET", "/boom", None);
        assert_eq!(client.read_reply().status, 500);
        client.send("GET", "/ok", None);
        assert_eq!(client.read_reply().status, 200);
        server.shutdown();
    }

    #[test]
    fn concurrent_connections_are_served() {
        let server = echo_server(2);
        let addr = server.addr();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|i| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr);
                        client.send("GET", &format!("/conn/{i}"), None);
                        let reply = client.read_reply();
                        assert_eq!(reply.status, 200);
                        assert!(reply.text().contains(&format!("/conn/{i}")));
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
        });
        server.shutdown();
    }

    #[test]
    fn serves_and_shuts_down() {
        let server = echo_server(2);
        let addr = server.addr();
        let mut client = Client::connect(addr);
        client.send("GET", "/v1/healthz", None);
        let reply = client.read_reply();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("X-Echo"), Some("yes"));
        server.shutdown();
        // The port stops answering (connect may still succeed briefly on
        // a lingering backlog entry, but a request gets no response).
        std::thread::sleep(Duration::from_millis(30));
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            let _ = s.read_to_string(&mut buf);
            assert!(buf.is_empty(), "served after shutdown: {buf}");
        }
    }
}
