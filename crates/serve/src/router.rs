//! **suu-router** — key-range sharding of the evaluation service across
//! daemon processes, with a scatter/gather proxy in front.
//!
//! The cell cache is content-addressed: every `(scenario, policy)` cell
//! is named by the FNV-1a hash of its canonical identity JSON
//! ([`crate::cache::CellKey`]), a uniform 64-bit key. That makes the
//! cache perfectly partitionable — CDN-style — into N contiguous key
//! ranges ([`shard_ranges`]), each owned by one `suud` backend with a
//! private cache directory. The router:
//!
//! * **owns the client-facing listener** (the same nonblocking
//!   `shims/mio` readiness loop every daemon uses — see
//!   [`crate::server`]); scatter/gather runs on its worker pool;
//! * **splits** each `POST /v1/race` into single-cell sub-requests
//!   ([`suu_bench::request::RaceRequest::cell_request_json`]), routes
//!   each to the shard owning its key ([`owner_of`]), **pipelines** the
//!   batch per shard over persistent keep-alive upstream connections
//!   (established nonblocking with a deadline — [`crate::client`]), and
//!   reads replies while the shards compute in parallel;
//! * **reassembles** the `suu-results/v2` document in request order
//!   ([`suu_bench::report::ResultsBuilder::add_cell_json`]). Because a
//!   cell's JSON depends only on its own scenario, policy and the
//!   race-level context (per-scenario seeds derive from `master_seed`
//!   and the scenario alone), and the workspace JSON writer is
//!   deterministic (insertion-order keys, shortest round-trip floats),
//!   the merged body is **byte-identical** to a single-daemon run — the
//!   router checks each spliced cell's provenance in-binary and answers
//!   502 on any drift;
//! * **supervises** its shard fleet ([`Fleet`]): spawns `--shards N`
//!   daemons on ephemeral ports, probes `/v1/healthz`, restarts crashed
//!   shards with bounded exponential backoff, and kills the fleet when
//!   it dies (`PR_SET_PDEATHSIG`, so even `SIGKILL` on the router leaks
//!   no children);
//! * **aggregates** `GET /v1/stats` by summing every `suu-serve/stats/v1`
//!   counter across shards in the exact v1 field order
//!   ([`crate::service::STATS_FIELDS`]), strictly appending `shards[]`
//!   (per-shard breakdowns, key ranges, restart counts) and `router`
//!   (front-end counters);
//! * **forwards** `GET /v1/cell/{key}` to the owning shard.
//!
//! Failure semantics: a shard that dies mid-request costs the in-flight
//! requests touching it a clean, fully-framed `503` (the merged body is
//! buffered before the event loop frames it, so a client never sees a
//! mid-body reset); the monitor restarts the shard, whose cache dir
//! survives, so post-restart replies are byte-identical to pre-death
//! ones. A shard answering `429` turns the whole race into a `429` with
//! `Retry-After`.

use crate::cache::{cell_key_fields, is_valid_key_hex, CellKey};
use crate::client::Client;
use crate::http::{Request, Response};
use crate::server::ServerMetrics;
use crate::service::{semantics_str, CacheCounts, STATS_FIELDS};
use crate::unpoisoned;
use std::io::{self, BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};
use suu_bench::report::ResultsBuilder;
use suu_bench::request::RaceRequest;
use suu_core::json::Json;
use suu_sim::PolicySpec;

/// Upstream connect deadline (loopback shards answer in microseconds; a
/// dead one must not wedge a worker).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(3);
/// Upstream read timeout (covers large cold cells).
const READ_TIMEOUT: Duration = Duration::from_secs(120);
/// First restart delay after a shard crash.
const BACKOFF_INITIAL: Duration = Duration::from_millis(100);
/// Restart delay ceiling (bounded backoff).
const BACKOFF_MAX: Duration = Duration::from_secs(2);
/// Supervision poll cadence.
const MONITOR_TICK: Duration = Duration::from_millis(25);

mod sys {
    extern "C" {
        pub fn prctl(option: i32, arg2: u64, arg3: u64, arg4: u64, arg5: u64) -> i32;
    }
    pub const PR_SET_PDEATHSIG: i32 = 1;
    pub const SIGKILL: u64 = 9;
}

// ---------------------------------------------------------------------
// Key-range plan
// ---------------------------------------------------------------------

/// One shard's contiguous, inclusive slice of the u64 key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// Smallest owned key.
    pub lo: u64,
    /// Largest owned key.
    pub hi: u64,
}

/// The N contiguous ranges covering the whole u64 key space: shard `i`
/// owns `[ceil(i·2^64/N), ceil((i+1)·2^64/N) − 1]` (u128 arithmetic, so
/// the plan is exact — no end-of-space remainder shard).
pub fn shard_ranges(shards: usize) -> Vec<KeyRange> {
    assert!(shards > 0, "need at least one shard");
    let n = shards as u128;
    // suu-lint: allow(narrowing-cast, "exact by construction: ceil(i*2^64/n) < 2^64 for every i < n, and the i == n endpoint is never evaluated (the last range is pinned to u64::MAX below)")
    let lo = |i: u128| -> u64 { (i << 64).div_ceil(n) as u64 };
    (0..shards as u128)
        .map(|i| KeyRange {
            lo: lo(i),
            hi: if i + 1 == n { u64::MAX } else { lo(i + 1) - 1 },
        })
        .collect()
}

/// The shard owning `key` under an N-shard plan: `⌊key·N / 2^64⌋` —
/// exactly the index whose [`shard_ranges`] range contains `key`.
pub fn owner_of(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    // suu-lint: allow(narrowing-cast, "bounded by construction: key*N/2^64 < N <= usize::MAX, so the cast never truncates")
    ((key as u128 * shards as u128) >> 64) as usize
}

/// Parse a 16-hex-char cell key into its u64 (routing) form.
pub fn key_from_hex(hex: &str) -> Option<u64> {
    if !is_valid_key_hex(hex) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

// ---------------------------------------------------------------------
// The shard fleet
// ---------------------------------------------------------------------

/// How to spawn and size the backend daemons.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (key ranges).
    pub shards: usize,
    /// Path to the `suud` binary.
    pub suud: PathBuf,
    /// Cache root; shard `i` caches under `<root>/shard-<i>`.
    pub cache_root: PathBuf,
    /// `--workers` per shard.
    pub shard_workers: usize,
    /// `--queue-depth` per shard.
    pub shard_queue_depth: usize,
    /// `--max-cache-bytes` per shard (None: unbounded).
    pub max_cache_bytes: Option<u64>,
}

struct ShardSlot {
    child: Option<Child>,
    /// Keeps the shard's stdout pipe open for its whole life.
    stdout: Option<BufReader<ChildStdout>>,
    /// `None` while the shard is down / restarting.
    addr: Option<String>,
    pid: u32,
    /// Bumped on every (re)spawn; pooled connections to older
    /// generations are stale and dropped at checkout.
    generation: u64,
    restarts: u64,
    backoff: Duration,
    next_attempt: Instant,
}

/// A point-in-time view of one shard (banner, stats, tests).
#[derive(Debug, Clone)]
pub struct ShardInfo {
    /// Shard index (also its key-range index).
    pub index: usize,
    /// Bound address, when up.
    pub addr: Option<String>,
    /// Daemon pid of the current generation.
    pub pid: u32,
    /// Completed restarts.
    pub restarts: u64,
    /// Owned key range.
    pub range: KeyRange,
    /// Cache directory.
    pub cache_dir: PathBuf,
}

/// The supervised set of backend daemons.
pub struct Fleet {
    cfg: FleetConfig,
    ranges: Vec<KeyRange>,
    slots: Vec<Mutex<ShardSlot>>,
    shutdown: AtomicBool,
}

impl Fleet {
    /// Spawn all shards (synchronously — a shard that cannot start is a
    /// startup error) and the supervision thread (which holds only a
    /// `Weak`, so dropping the last `Arc` tears the fleet down).
    pub fn spawn(cfg: FleetConfig) -> io::Result<Arc<Fleet>> {
        assert!(cfg.shards > 0, "need at least one shard");
        let ranges = shard_ranges(cfg.shards);
        let mut slots = Vec::with_capacity(cfg.shards);
        for index in 0..cfg.shards {
            let (child, stdout, addr, pid) = spawn_shard(&cfg, index)?;
            slots.push(Mutex::new(ShardSlot {
                child: Some(child),
                stdout: Some(stdout),
                addr: Some(addr),
                pid,
                generation: 1,
                restarts: 0,
                backoff: BACKOFF_INITIAL,
                next_attempt: Instant::now(),
            }));
        }
        let fleet = Arc::new(Fleet {
            cfg,
            ranges,
            slots,
            shutdown: AtomicBool::new(false),
        });
        let weak: Weak<Fleet> = Arc::downgrade(&fleet);
        std::thread::Builder::new()
            .name("suu-router-monitor".into())
            .spawn(move || loop {
                std::thread::sleep(MONITOR_TICK);
                let Some(fleet) = weak.upgrade() else { return };
                if fleet.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                fleet.tick();
            })?;
        Ok(fleet)
    }

    /// Number of shards (the N of the key-range plan).
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// Shard `i`'s key range.
    pub fn range(&self, index: usize) -> KeyRange {
        self.ranges[index]
    }

    /// Shard `i`'s current address and generation, when it is up.
    pub fn shard_addr(&self, index: usize) -> Option<(String, u64)> {
        let slot = unpoisoned(self.slots[index].lock());
        slot.addr.clone().map(|a| (a, slot.generation))
    }

    /// Point-in-time view of every shard.
    pub fn snapshot(&self) -> Vec<ShardInfo> {
        (0..self.cfg.shards)
            .map(|index| {
                let slot = unpoisoned(self.slots[index].lock());
                ShardInfo {
                    index,
                    addr: slot.addr.clone(),
                    pid: slot.pid,
                    restarts: slot.restarts,
                    range: self.ranges[index],
                    cache_dir: shard_cache_dir(&self.cfg, index),
                }
            })
            .collect()
    }

    /// One supervision pass: reap dead shards, respawn past backoff.
    fn tick(&self) {
        for index in 0..self.cfg.shards {
            let mut slot = unpoisoned(self.slots[index].lock());
            if let Some(child) = slot.child.as_mut() {
                match child.try_wait() {
                    Ok(None) => continue, // alive
                    Ok(Some(_)) | Err(_) => {
                        // Crashed (or unreachable): mark down, back off.
                        slot.child = None;
                        slot.stdout = None;
                        slot.addr = None;
                        slot.restarts += 1;
                        slot.next_attempt = Instant::now() + slot.backoff;
                        slot.backoff = (slot.backoff * 2).min(BACKOFF_MAX);
                        continue;
                    }
                }
            }
            if Instant::now() < slot.next_attempt {
                continue;
            }
            match spawn_shard(&self.cfg, index) {
                Ok((child, stdout, addr, pid)) => {
                    slot.child = Some(child);
                    slot.stdout = Some(stdout);
                    slot.addr = Some(addr);
                    slot.pid = pid;
                    slot.generation += 1;
                    slot.backoff = BACKOFF_INITIAL;
                }
                Err(_) => {
                    slot.next_attempt = Instant::now() + slot.backoff;
                    slot.backoff = (slot.backoff * 2).min(BACKOFF_MAX);
                }
            }
        }
    }

    /// Stop supervising and kill every shard.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for slot in &self.slots {
            let mut slot = unpoisoned(slot.lock());
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            slot.stdout = None;
            slot.addr = None;
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn shard_cache_dir(cfg: &FleetConfig, index: usize) -> PathBuf {
    cfg.cache_root.join(format!("shard-{index}"))
}

/// Spawn one `suud` on an ephemeral port, parse its banner for the
/// bound address, and probe `/v1/healthz` before declaring it up.
fn spawn_shard(
    cfg: &FleetConfig,
    index: usize,
) -> io::Result<(Child, BufReader<ChildStdout>, String, u32)> {
    let cache_dir = shard_cache_dir(cfg, index);
    let mut cmd = Command::new(&cfg.suud);
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--cache-dir",
        cache_dir
            .to_str()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "non-UTF-8 cache dir"))?,
        "--workers",
        &cfg.shard_workers.to_string(),
        "--queue-depth",
        &cfg.shard_queue_depth.to_string(),
        // The router's keep-alive pool parks between races; don't let
        // the shard reap its upstream connections mid-run.
        "--idle-timeout-ms",
        "600000",
    ]);
    if let Some(bytes) = cfg.max_cache_bytes {
        cmd.args(["--max-cache-bytes", &bytes.to_string()]);
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
    // The shard must die with the router, even a SIGKILLed router: ask
    // the kernel to deliver SIGKILL when the spawning thread exits.
    unsafe {
        use std::os::unix::process::CommandExt as _;
        cmd.pre_exec(|| {
            sys::prctl(sys::PR_SET_PDEATHSIG, sys::SIGKILL, 0, 0, 0);
            Ok(())
        });
    }
    let mut child = cmd.spawn()?;
    let pid = child.id();
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            format!("shard {index}: spawned without a piped stdout"),
        ));
    };
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    if reader.read_line(&mut banner)? == 0 {
        let _ = child.kill();
        let _ = child.wait();
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("shard {index}: daemon exited before printing its banner"),
        ));
    }
    let addr = banner
        .trim()
        .strip_prefix("suud listening on http://")
        .map(str::to_string)
        .ok_or_else(|| {
            let _ = child.kill();
            let _ = child.wait();
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shard {index}: unparsable banner {banner:?}"),
            )
        })?;
    // Liveness probe: the event loop must answer before the shard is
    // routed to.
    let probe = Client::connect_deadline(&addr, CONNECT_TIMEOUT, Duration::from_secs(10))
        .and_then(|mut c| c.request("GET", "/v1/healthz", None));
    match probe {
        Ok(reply) if reply.status == 200 => Ok((child, reader, addr, pid)),
        other => {
            let _ = child.kill();
            let _ = child.wait();
            Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("shard {index}: health probe failed: {other:?}"),
            ))
        }
    }
}

// ---------------------------------------------------------------------
// The router service
// ---------------------------------------------------------------------

struct PooledConn {
    generation: u64,
    client: Client,
}

/// The scatter/gather proxy state shared by every worker thread.
pub struct Router {
    fleet: Arc<Fleet>,
    /// Per-shard pools of persistent upstream connections.
    pools: Vec<Mutex<Vec<PooledConn>>>,
    /// Total `POST /v1/race` requests accepted by the router.
    pub races: AtomicU64,
    server_metrics: OnceLock<Arc<ServerMetrics>>,
}

/// Why a scatter/gather pass could not produce a 200.
enum GatherError {
    /// A shard is down or its connection died mid-exchange (503).
    Unavailable(String),
    /// A shard shed load (429 → relayed with Retry-After).
    Busy,
    /// A shard answered an unexpected status or malformed body (502),
    /// or a spliced cell failed its provenance check.
    Upstream(String),
    /// A shard relayed a request-level error verbatim.
    Relay(u16, Vec<u8>),
}

impl Router {
    /// A router over an already-spawned fleet.
    pub fn new(fleet: Arc<Fleet>) -> Router {
        let pools = (0..fleet.shards())
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        Router {
            fleet,
            pools,
            races: AtomicU64::new(0),
            server_metrics: OnceLock::new(),
        }
    }

    /// The supervised fleet (banner, tests).
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// Wire the event loop's counters into the aggregated `/v1/stats`.
    pub fn attach_server_metrics(&self, metrics: Arc<ServerMetrics>) {
        let _ = self.server_metrics.set(metrics);
    }

    /// Route one HTTP request (the same surface as a single daemon).
    pub fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/v1/healthz") => Response::json(
                200,
                Json::obj()
                    .field("schema", suu_core::schemas::SERVE_HEALTH_V1)
                    .field("status", "ok")
                    .field("role", "router")
                    .field(
                        "shards",
                        u64::try_from(self.fleet.shards()).unwrap_or(u64::MAX),
                    )
                    .to_compact(),
            ),
            ("GET", "/v1/stats") => Response::json(200, self.stats_json().to_compact()),
            ("GET", path) if path.starts_with("/v1/cell/") => {
                self.forward_cell(&path["/v1/cell/".len()..])
            }
            ("POST", "/v1/race") => self.race(req),
            ("GET" | "POST", _) => Response::text(404, "not found"),
            _ => Response::text(405, "method not allowed"),
        }
    }

    /// Check out a live upstream connection to `shard` (pool hit or a
    /// fresh deadline-bounded connect), with its generation tag.
    fn checkout(&self, shard: usize) -> Result<(Client, u64), GatherError> {
        let (addr, generation) = self.fleet.shard_addr(shard).ok_or_else(|| {
            GatherError::Unavailable(format!("shard {shard} is down (restarting)"))
        })?;
        let mut pool = unpoisoned(self.pools[shard].lock());
        // Stale generations (pre-restart sockets) are dropped, not reused.
        while let Some(conn) = pool.pop() {
            if conn.generation == generation {
                return Ok((conn.client, generation));
            }
        }
        drop(pool);
        match Client::connect_deadline(&addr, CONNECT_TIMEOUT, READ_TIMEOUT) {
            Ok(client) => Ok((client, generation)),
            Err(e) => Err(GatherError::Unavailable(format!(
                "shard {shard} ({addr}): connect failed: {e}"
            ))),
        }
    }

    /// Return a healthy connection to the pool.
    fn checkin(&self, shard: usize, generation: u64, client: Client) {
        unpoisoned(self.pools[shard].lock()).push(PooledConn { generation, client });
    }

    /// `POST /v1/race`: scatter per-cell sub-requests, gather, merge.
    fn race(&self, req: &Request) -> Response {
        self.races.fetch_add(1, Ordering::Relaxed);
        let parsed = std::str::from_utf8(&req.body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(|text| suu_core::json::parse(text).map_err(|e| e.to_string()))
            .and_then(|json| RaceRequest::from_json(&json));
        let race = match parsed {
            Ok(race) => race,
            Err(e) => return Response::text(400, format!("bad request: {e}")),
        };
        // Same-shaped 400 as a backend would give, without scattering.
        for p in &race.policies {
            if let Err(e) = PolicySpec::parse(p) {
                return Response::text(400, format!("bad request: bad policy spec {p:?}: {e}"));
            }
        }
        match self.scatter_gather(&race) {
            Ok((doc, counts)) => Response::json(200, doc.to_pretty())
                .with_header("X-Suu-Cache", counts.label())
                .with_header("X-Suu-Cache-Hits", counts.hits.to_string())
                .with_header("X-Suu-Cache-Misses", counts.misses.to_string())
                .with_header("X-Suu-Cache-Extended", counts.extends.to_string()),
            Err(GatherError::Unavailable(e)) => {
                Response::text(503, format!("shard unavailable: {e}"))
                    .with_header("Retry-After", "1")
            }
            Err(GatherError::Busy) => {
                Response::text(429, "shard queue full").with_header("Retry-After", "1")
            }
            Err(GatherError::Upstream(e)) => Response::text(502, format!("shard error: {e}")),
            Err(GatherError::Relay(status, body)) => Response::text(status, body),
        }
    }

    fn scatter_gather(&self, race: &RaceRequest) -> Result<(Json, CacheCounts), GatherError> {
        let shards = self.fleet.shards();
        let policies = race.policies.len();
        // Plan: global cell order is scenario-major, like a single
        // daemon's evaluation loop; each shard's batch preserves it.
        let mut batches: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shards];
        for si in 0..race.scenarios.len() {
            for pi in 0..policies {
                let key = CellKey::new(&cell_key_fields(
                    &race.scenarios[si].params,
                    &race.policies[pi],
                    race.master_seed,
                    semantics_str(race.exec.semantics),
                    race.exec.max_steps,
                ));
                // suu-lint: allow(serve-unwrap, "CellKey::hex is fnv1a_hex output — 16 lowercase hex digits by construction — so this parse cannot fail")
                let routing = key_from_hex(&key.hex).expect("own keys are valid hex");
                batches[owner_of(routing, shards)].push((si, pi));
            }
        }

        // Scatter: pipeline each shard's whole batch before reading
        // anything, so shards compute concurrently. A send failure gets
        // one fresh-connection retry (sub-requests are idempotent).
        let mut conns: Vec<Option<(Client, u64)>> = (0..shards).map(|_| None).collect();
        for shard in 0..shards {
            if batches[shard].is_empty() {
                continue;
            }
            let mut attempt = 0;
            loop {
                let (mut client, generation) = self.checkout(shard)?;
                let sent = batches[shard].iter().try_for_each(|&(si, pi)| {
                    let body = race.cell_request_json(si, pi).to_compact();
                    client.send("POST", "/v1/race", Some(body.as_bytes()))
                });
                match sent {
                    Ok(()) => {
                        conns[shard] = Some((client, generation));
                        break;
                    }
                    Err(e) if attempt == 0 => {
                        // Likely a reaped pooled socket; retry once on a
                        // fresh connect before declaring the shard down.
                        attempt = 1;
                        drop(e);
                    }
                    Err(e) => {
                        return Err(GatherError::Unavailable(format!(
                            "shard {shard}: send failed: {e}"
                        )))
                    }
                }
            }
        }

        // Gather, in the same per-shard order the batches were sent.
        let mut cells: Vec<Option<Json>> =
            (0..race.scenarios.len() * policies).map(|_| None).collect();
        let mut counts = CacheCounts::default();
        for shard in 0..shards {
            let Some((mut client, generation)) = conns[shard].take() else {
                continue;
            };
            for &(si, pi) in &batches[shard] {
                let reply = client.read_reply().map_err(|e| {
                    GatherError::Unavailable(format!("shard {shard}: read failed: {e}"))
                })?;
                match reply.status {
                    200 => {
                        let header = |name: &str| -> u64 {
                            reply.header(name).and_then(|v| v.parse().ok()).unwrap_or(0)
                        };
                        counts.hits += header("x-suu-cache-hits");
                        counts.misses += header("x-suu-cache-misses");
                        counts.extends += header("x-suu-cache-extended");
                        let body = std::str::from_utf8(&reply.body).map_err(|_| {
                            GatherError::Upstream(format!("shard {shard}: non-UTF-8 body"))
                        })?;
                        let doc = suu_core::json::parse(body).map_err(|e| {
                            GatherError::Upstream(format!("shard {shard}: bad JSON: {e}"))
                        })?;
                        let cell = doc
                            .get("cells")
                            .and_then(Json::as_array)
                            .and_then(|cells| cells.first())
                            .ok_or_else(|| {
                                GatherError::Upstream(format!(
                                    "shard {shard}: sub-response has no cell"
                                ))
                            })?;
                        cells[si * policies + pi] = Some(cell.clone());
                    }
                    429 => return Err(GatherError::Busy),
                    status => {
                        return Err(GatherError::Relay(status, reply.body));
                    }
                }
            }
            self.checkin(shard, generation, client);
        }

        // Merge, in request order — provenance-checked in-binary, so a
        // routing or drift bug can never ship a silently-wrong document.
        let mut builder = ResultsBuilder::new("suud").record_wall_clocks(false);
        for (si, rs) in race.scenarios.iter().enumerate() {
            builder.add_scenario(&rs.scenario);
            for (pi, policy) in race.policies.iter().enumerate() {
                let cell = cells[si * policies + pi].take().ok_or_else(|| {
                    GatherError::Upstream(format!("missing cell for ({si}, {pi})"))
                })?;
                let field = |k: &str| cell.get(k).and_then(Json::as_str).unwrap_or("");
                if field("scenario") != rs.scenario.id || field("policy") != *policy {
                    return Err(GatherError::Upstream(format!(
                        "cell provenance mismatch: expected ({}, {policy}), got ({}, {})",
                        rs.scenario.id,
                        field("scenario"),
                        field("policy"),
                    )));
                }
                builder.add_cell_json(policy, cell);
            }
        }
        Ok((builder.finish(), counts))
    }

    /// `GET /v1/cell/{key}`: forward to the owning shard.
    fn forward_cell(&self, key: &str) -> Response {
        let Some(routing) = key_from_hex(key) else {
            return Response::text(404, format!("no cached cell {key}"));
        };
        let shard = owner_of(routing, self.fleet.shards());
        match self.checkout(shard) {
            Ok((mut client, generation)) => {
                match client.request("GET", &format!("/v1/cell/{key}"), None) {
                    Ok(reply) => {
                        let response = if reply.status == 200 {
                            Response::json(200, reply.body)
                        } else {
                            Response::text(reply.status, reply.body)
                        };
                        self.checkin(shard, generation, client);
                        response
                    }
                    Err(e) => Response::text(503, format!("shard {shard} unavailable: {e}"))
                        .with_header("Retry-After", "1"),
                }
            }
            Err(_) => Response::text(503, format!("shard {shard} is down (restarting)"))
                .with_header("Retry-After", "1"),
        }
    }

    /// The aggregated `/v1/stats` document: every `suu-serve/stats/v1`
    /// field summed across shards in the exact single-daemon order, then
    /// strictly-appended `shards[]` and `router` breakdowns.
    pub fn stats_json(&self) -> Json {
        let mut sums: Vec<u64> = vec![0; STATS_FIELDS.len()];
        let mut shard_entries = Vec::with_capacity(self.fleet.shards());
        for info in self.fleet.snapshot() {
            let mut entry = Json::obj()
                .field("shard", u64::try_from(info.index).unwrap_or(u64::MAX))
                .field("range_lo", format!("{:016x}", info.range.lo))
                .field("range_hi", format!("{:016x}", info.range.hi))
                .field("restarts", info.restarts);
            // A shard reply with a missing or non-numeric counter is a
            // protocol mismatch, not a zero: folding `unwrap_or(0)` into
            // the sums silently undercounted the fleet. Treat it exactly
            // like a fetch failure — `healthy: false` plus an `error`
            // naming the bad field, nothing folded into the totals.
            match self
                .fetch_shard_stats(info.index)
                .and_then(|stats| Ok((stat_counters(&stats)?, stats)))
            {
                Ok((counters, stats)) => {
                    for (sum, counter) in sums.iter_mut().skip(1).zip(&counters) {
                        *sum += counter;
                    }
                    entry = entry
                        .field("addr", info.addr.unwrap_or_default())
                        .field("healthy", true)
                        .field("stats", stats);
                }
                Err(e) => {
                    entry = entry.field("healthy", false).field("error", e);
                }
            }
            shard_entries.push(entry);
        }
        let mut doc = Json::obj().field("schema", suu_core::schemas::SERVE_STATS_V1);
        for (i, field) in STATS_FIELDS.iter().enumerate().skip(1) {
            doc = doc.field(*field, sums[i]);
        }
        let (accepted, requests, queue_depth, rejected_429) = self
            .server_metrics
            .get()
            .map(|m| {
                (
                    m.accepted.load(Ordering::Relaxed),
                    m.requests.load(Ordering::Relaxed),
                    m.queue_depth.load(Ordering::Relaxed),
                    m.rejected_429.load(Ordering::Relaxed),
                )
            })
            .unwrap_or((0, 0, 0, 0));
        doc.field("shards", Json::Arr(shard_entries)).field(
            "router",
            Json::obj()
                .field("races", self.races.load(Ordering::Relaxed))
                .field("accepted", accepted)
                .field("requests", requests)
                .field("queue_depth", queue_depth)
                .field("rejected_429", rejected_429),
        )
    }

    fn fetch_shard_stats(&self, shard: usize) -> Result<Json, String> {
        let (mut client, generation) = match self.checkout(shard) {
            Ok(conn) => conn,
            Err(_) => return Err("down (restarting)".to_string()),
        };
        let reply = client
            .request("GET", "/v1/stats", None)
            .map_err(|e| format!("stats fetch failed: {e}"))?;
        if reply.status != 200 {
            return Err(format!("stats fetch answered {}", reply.status));
        }
        let doc = suu_core::json::parse(&String::from_utf8_lossy(&reply.body))
            .map_err(|e| format!("bad stats JSON: {e}"))?;
        self.checkin(shard, generation, client);
        Ok(doc)
    }
}

/// Strictly extract every `suu-serve/stats/v1` counter (each
/// [`STATS_FIELDS`] entry after `schema`, in order) from one shard's
/// stats document. A missing or non-numeric counter is an error naming
/// the field, so [`Router::stats_json`] marks that shard
/// `healthy: false` instead of folding a silent zero into the fleet
/// totals.
pub fn stat_counters(stats: &Json) -> Result<Vec<u64>, String> {
    STATS_FIELDS
        .iter()
        .skip(1)
        .map(|field| {
            stats
                .get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stats field {field:?} missing or non-numeric"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_key_space_exactly() {
        for shards in 1..=9usize {
            let ranges = shard_ranges(shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].lo, 0);
            assert_eq!(ranges[shards - 1].hi, u64::MAX);
            for w in ranges.windows(2) {
                assert_eq!(
                    w[0].hi.checked_add(1),
                    Some(w[1].lo),
                    "{shards} shards: ranges must be contiguous"
                );
            }
            for (i, r) in ranges.iter().enumerate() {
                assert!(r.lo <= r.hi, "{shards} shards: empty range {i}");
            }
        }
    }

    #[test]
    fn owner_agrees_with_range_containment() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            let ranges = shard_ranges(shards);
            let mut probes = vec![0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX];
            for r in &ranges {
                probes.extend([r.lo, r.hi, r.lo.saturating_sub(1), r.hi.saturating_add(1)]);
            }
            // A deterministic spray across the space.
            let mut x = 0x9E37_79B9u64;
            for _ in 0..512 {
                x = x
                    .wrapping_mul(0x5851_F42D_4C95_7F2D)
                    .wrapping_add(0x14057B7E);
                probes.push(x);
            }
            for key in probes {
                let owner = owner_of(key, shards);
                assert!(owner < shards);
                let r = ranges[owner];
                assert!(
                    r.lo <= key && key <= r.hi,
                    "{shards} shards: key {key:#x} owner {owner} range {r:?}"
                );
            }
        }
    }

    /// A well-formed single-daemon stats document, counters valued by
    /// position so order mistakes would show.
    fn stub_shard_stats() -> Json {
        let mut doc = Json::obj().field("schema", suu_core::schemas::SERVE_STATS_V1);
        for (i, field) in STATS_FIELDS.iter().enumerate().skip(1) {
            doc = doc.field(*field, 10 + i as u64);
        }
        doc
    }

    #[test]
    fn stat_counters_extracts_in_field_order() {
        let counters = stat_counters(&stub_shard_stats()).expect("well-formed stats");
        let expect: Vec<u64> = (1..STATS_FIELDS.len()).map(|i| 10 + i as u64).collect();
        assert_eq!(counters, expect);
    }

    #[test]
    fn stat_counters_rejects_malformed_shard_replies() {
        // Regression: each of these used to fold into the sums as a
        // silent zero; now the shard is reported unhealthy instead.
        let missing = match stub_shard_stats() {
            Json::Obj(fields) => {
                Json::Obj(fields.into_iter().filter(|(k, _)| k != "misses").collect())
            }
            other => other,
        };
        let err = stat_counters(&missing).expect_err("missing counter");
        assert!(err.contains("misses"), "error should name the field: {err}");

        let non_numeric = stub_shard_stats().field("extends", "lots");
        let err = stat_counters(&non_numeric).expect_err("non-numeric counter");
        assert!(
            err.contains("extends"),
            "error should name the field: {err}"
        );

        let negative = stub_shard_stats().field("races", Json::Num(-3.0));
        assert!(stat_counters(&negative).is_err(), "non-integer counter");

        assert!(stat_counters(&Json::obj()).is_err(), "empty reply");
    }

    #[test]
    fn key_hex_parses_only_canonical_cell_keys() {
        assert_eq!(key_from_hex("0000000000000000"), Some(0));
        assert_eq!(key_from_hex("ffffffffffffffff"), Some(u64::MAX));
        assert_eq!(key_from_hex("00ff00ff00ff00ff"), Some(0x00ff00ff00ff00ff));
        for bad in [
            "",
            "123",
            "FFFFFFFFFFFFFFFF",
            "zzzzzzzzzzzzzzzz",
            "0123456789abcdef0",
        ] {
            assert_eq!(key_from_hex(bad), None, "{bad:?}");
        }
    }
}
