//! **suu-sweep** — adaptive frontier-map orchestrator over the cell
//! cache.
//!
//! Explores a declarative parameter grid (scenario family × m × n ×
//! q-range, see `suu_bench::sweep`) and *actively refines*: each round
//! every unresolved grid point races all policies at the current rung
//! of the trial-budget ladder, and only points whose conservative
//! paired-CRN 95% CI still straddles zero are granted the next rung.
//! Evaluations flow through the serving tier's content-addressed cell
//! cache — either a spawned sibling `suud` (`POST /v1/race`, the
//! default) or the in-process service (`--no-daemon`) — so a re-run or
//! a tighter re-sweep **extends** cached cells instead of recomputing
//! them, and an interrupted sweep resumed over the same `--cache-dir`
//! lands on a byte-identical artifact.
//!
//! The output is a `suu-results/sweep/v1` document: per-point winner,
//! margin, trials spent, `cell_key` provenance, a phase-diagram section
//! (winner regions + frontier edges), and the adaptive-vs-fixed trial
//! accounting. It is a pure function of the spec (master seed
//! included): no wall clocks, byte-identical replay — CI runs the smoke
//! sweep twice and `cmp`s the artifacts.
//!
//! ```sh
//! suu-sweep --smoke                      # built-in 2×2×2 uniform grid
//! suu-sweep --spec sweep_spec.json --out BENCH_sweep.json
//! suu-sweep --smoke --no-daemon          # library path, no child proc
//! ```

use std::path::{Path, PathBuf};
use std::time::Duration;
use suu_bench::request::RaceRequest;
use suu_bench::sweep::{run_sweep, RaceEvaluator, SweepSpec};
use suu_core::json::Json;
use suu_serve::client::{retry_after_ms, Client};
use suu_serve::elog;
use suu_serve::spawn::ServerProc;
use suu_serve::{ServeError, Service};

/// Upstream read timeout for the daemon client.
const READ_TIMEOUT: Duration = Duration::from_secs(120);
/// Most retries one cell evaluation spends on 429 backoff.
const MAX_RETRIES_429: u64 = 50;

struct Config {
    smoke: bool,
    spec: Option<String>,
    out: Option<String>,
    cache_dir: Option<String>,
    no_daemon: bool,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        smoke: false,
        spec: None,
        out: None,
        cache_dir: None,
        no_daemon: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                elog!("suu-sweep: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => cfg.smoke = true,
            "--spec" => cfg.spec = Some(value("--spec")),
            "--out" => cfg.out = Some(value("--out")),
            "--cache-dir" => cfg.cache_dir = Some(value("--cache-dir")),
            "--no-daemon" => cfg.no_daemon = true,
            "--help" | "-h" => {
                elog!(
                    "usage: suu-sweep (--smoke | --spec FILE) [--out FILE] \
                     [--cache-dir DIR] [--no-daemon]"
                );
                std::process::exit(2);
            }
            other => {
                elog!("suu-sweep: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if cfg.smoke == cfg.spec.is_some() {
        elog!("suu-sweep: give exactly one of --smoke or --spec FILE");
        std::process::exit(2);
    }
    cfg
}

fn load_spec(cfg: &Config) -> SweepSpec {
    let result = match &cfg.spec {
        None => Ok(SweepSpec::smoke()),
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| suu_core::json::parse(&text).map_err(|e| format!("{path}: {e}")))
            .and_then(|doc| SweepSpec::from_json(&doc).map_err(|e| format!("{path}: {e}"))),
    };
    result.unwrap_or_else(|e| {
        elog!("suu-sweep: {e}");
        std::process::exit(2);
    })
}

/// Daemon mode: single-cell races posted to a spawned sibling `suud`
/// over keep-alive HTTP, with the shared hardened `Retry-After`
/// backoff on 429.
struct DaemonEval {
    client: Client,
}

impl RaceEvaluator for DaemonEval {
    fn race(&mut self, request: &Json) -> Result<Json, String> {
        let body = request.to_compact();
        let mut rejected = 0u64;
        loop {
            let reply = self
                .client
                .request("POST", "/v1/race", Some(body.as_bytes()))
                .map_err(|e| format!("race request failed: {e}"))?;
            if reply.status == 429 && rejected < MAX_RETRIES_429 {
                rejected += 1;
                let backoff = retry_after_ms(reply.header("retry-after"));
                std::thread::sleep(Duration::from_millis((25 * rejected).min(backoff)));
                continue;
            }
            if reply.status != 200 {
                return Err(format!(
                    "race answered {}: {}",
                    reply.status,
                    String::from_utf8_lossy(&reply.body)
                ));
            }
            return suu_core::json::parse(&String::from_utf8_lossy(&reply.body))
                .map_err(|e| format!("bad race response: {e}"));
        }
    }
}

/// Library mode (`--no-daemon`): the same requests evaluated through
/// the in-process [`Service`] — the identical code path the daemon
/// serves, against the identical cache layout, so both modes produce
/// (and reuse) the same cells and the same artifact.
struct LocalEval {
    service: Service,
}

impl RaceEvaluator for LocalEval {
    fn race(&mut self, request: &Json) -> Result<Json, String> {
        let race = RaceRequest::from_json(request)?;
        match self.service.evaluate(&race) {
            Ok((doc, _counts)) => Ok(doc),
            Err(ServeError::BadRequest(e)) => Err(format!("bad request: {e}")),
            Err(ServeError::Internal(e)) => Err(format!("evaluation failed: {e}")),
        }
    }
}

fn main() {
    let cfg = parse_args();
    let spec = load_spec(&cfg);
    let out = cfg.out.clone().unwrap_or_else(|| {
        if cfg.smoke {
            "BENCH_sweep_smoke.json".to_string()
        } else {
            "BENCH_sweep.json".to_string()
        }
    });
    // The cache root persists across runs by default: that is what
    // makes a re-run (or a tighter re-sweep) incremental.
    let cache_dir = cfg
        .cache_dir
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("suu-sweep-{}", spec.name)));
    elog!(
        "suu-sweep: '{}': {} point(s) x {} policies, budget {}..{}, cache {} ({})",
        spec.name,
        spec.points.len(),
        spec.policies.len(),
        spec.ladder.initial,
        spec.ladder.max,
        cache_dir.display(),
        if cfg.no_daemon {
            "library mode"
        } else {
            "daemon mode"
        }
    );

    // All fallible work happens inside `run` so that an error path
    // still drops — and therefore kills — the spawned daemon before the
    // process exits (`std::process::exit` runs no destructors).
    if let Err(e) = run(&cfg, &spec, &cache_dir, &out) {
        elog!("suu-sweep: {e}");
        std::process::exit(1);
    }
}

fn run(cfg: &Config, spec: &SweepSpec, cache_dir: &Path, out: &str) -> Result<(), String> {
    // Keep the daemon proc alive for the whole sweep; dropped (and
    // killed) when this frame unwinds, while the cache dir stays.
    let mut daemon_guard: Option<ServerProc> = None;
    let mut evaluator: Box<dyn RaceEvaluator> = if cfg.no_daemon {
        let service = Service::new(cache_dir)
            .map_err(|e| format!("cannot open cache {}: {e}", cache_dir.display()))?;
        Box::new(LocalEval { service })
    } else {
        let server = ServerProc::spawn_with_cache("suud", cache_dir, &[])?;
        let client = server
            .client(READ_TIMEOUT)
            .map_err(|e| format!("connect to {} failed: {e}", server.addr()))?;
        elog!("suu-sweep: daemon at {}", server.addr());
        daemon_guard = Some(server);
        Box::new(DaemonEval { client })
    };

    let artifact = run_sweep(spec, evaluator.as_mut(), &mut |msg| {
        elog!("suu-sweep: {msg}");
    })?;
    drop(daemon_guard);

    std::fs::write(out, artifact.to_pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
    let totals = artifact.get("totals").cloned().unwrap_or(Json::obj());
    let total = |key: &str| totals.get(key).and_then(Json::as_u64).unwrap_or(0);
    elog!(
        "suu-sweep: wrote {out}: {} point(s), {} resolved, {} open; \
         trials {} adaptive vs {} fixed-equivalent",
        total("points"),
        total("resolved"),
        total("open"),
        total("trials_adaptive"),
        total("trials_fixed_equivalent"),
    );
    Ok(())
}
