//! **suud** — the SUU evaluation service daemon.
//!
//! ```sh
//! # Serve (prints the bound address; port 0 picks an ephemeral port):
//! suud --addr 127.0.0.1:8787 --cache-dir ./suud-cache --workers 4
//!
//! # One-shot: evaluate a request document through the same cache and
//! # print the suu-results/v2 response to stdout (CI's schema gate):
//! suud --oneshot request.json --cache-dir ./suud-cache
//! ```

use std::sync::Arc;
use std::time::Duration;
use suu_serve::service::ServeError;
use suu_serve::{http, serve_with, ServerConfig, ServerMetrics, Service};

use suu_serve::elog;

struct Args {
    addr: String,
    cache_dir: String,
    workers: usize,
    queue_depth: usize,
    idle_timeout_ms: u64,
    max_cache_bytes: Option<u64>,
    oneshot: Option<String>,
}

fn usage() -> ! {
    elog!(
        "usage: suud [--addr HOST:PORT] [--cache-dir DIR] [--workers N] \
         [--queue-depth N] [--idle-timeout-ms MS] [--max-cache-bytes BYTES] \
         [--oneshot REQUEST.json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8787".to_string(),
        cache_dir: "./suud-cache".to_string(),
        workers: 4,
        queue_depth: 64,
        idle_timeout_ms: 10_000,
        max_cache_bytes: None,
        oneshot: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                elog!("suud: {name} needs a value");
                usage()
            })
        };
        fn number<T: std::str::FromStr>(name: &str, raw: String) -> T {
            raw.parse().unwrap_or_else(|_| {
                elog!("suud: {name} must be a non-negative integer");
                usage()
            })
        }
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--cache-dir" => args.cache_dir = value("--cache-dir"),
            "--workers" => args.workers = number("--workers", value("--workers")),
            "--queue-depth" => args.queue_depth = number("--queue-depth", value("--queue-depth")),
            "--idle-timeout-ms" => {
                args.idle_timeout_ms = number("--idle-timeout-ms", value("--idle-timeout-ms"))
            }
            "--max-cache-bytes" => {
                args.max_cache_bytes = Some(number("--max-cache-bytes", value("--max-cache-bytes")))
            }
            "--oneshot" => args.oneshot = Some(value("--oneshot")),
            "--help" | "-h" => usage(),
            other => {
                elog!("suud: unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.workers == 0 {
        elog!("suud: --workers must be at least 1");
        usage()
    }
    if args.queue_depth == 0 || args.idle_timeout_ms == 0 {
        elog!("suud: --queue-depth and --idle-timeout-ms must be at least 1");
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    let service = Service::with_budget(&args.cache_dir, args.max_cache_bytes).unwrap_or_else(|e| {
        elog!("suud: cannot open cache dir {}: {e}", args.cache_dir);
        std::process::exit(1);
    });

    if let Some(path) = &args.oneshot {
        oneshot(&service, path);
        return;
    }

    let service = Arc::new(service);
    let handler = Arc::clone(&service);
    let metrics = Arc::new(ServerMetrics::default());
    service.attach_server_metrics(Arc::clone(&metrics));
    let server = serve_with(
        args.addr.as_str(),
        ServerConfig {
            workers: args.workers,
            queue_depth: args.queue_depth,
            idle_timeout: Duration::from_millis(args.idle_timeout_ms),
            ..ServerConfig::default()
        },
        Arc::new(move |req: &http::Request| handler.handle(req)),
        Arc::clone(&metrics),
    )
    .unwrap_or_else(|e| {
        elog!("suud: cannot bind {}: {e}", args.addr);
        std::process::exit(1);
    });

    // The e2e harness (and humans with port 0) read the bound address
    // from this line — keep its shape stable. Writes are EPIPE-tolerant:
    // a supervisor that stops reading our stdout must not kill the
    // daemon (Rust turns SIGPIPE into a write error, and a plain
    // `println!` would panic the main thread on it).
    use std::io::Write as _;
    let _ = writeln!(
        std::io::stdout(),
        "suud listening on http://{}",
        server.addr()
    );
    let _ = writeln!(
        std::io::stdout(),
        "suud cache dir {} ({} cells), {} workers",
        args.cache_dir,
        service.store().cells_on_disk(),
        args.workers
    );

    // Serve until killed. Workers run forever; park the main thread.
    loop {
        std::thread::park();
    }
}

fn oneshot(service: &Service, path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        elog!("suud: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let race = suu_core::json::parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|json| suu_bench::request::RaceRequest::from_json(&json))
        .unwrap_or_else(|e| {
            elog!("suud: bad request {path}: {e}");
            std::process::exit(1);
        });
    match service.evaluate(&race) {
        Ok((doc, counts)) => {
            elog!(
                "suud oneshot: cache {} ({} hits, {} misses, {} extended)",
                counts.label(),
                counts.hits,
                counts.misses,
                counts.extends
            );
            // suu-lint: allow(serve-print, "oneshot mode's contract is the result document on stdout; CI pipes it to a file and cmp's bytes")
            print!("{}", doc.to_pretty());
        }
        Err(ServeError::BadRequest(e)) => {
            elog!("suud: bad request: {e}");
            std::process::exit(1);
        }
        Err(ServeError::Internal(e)) => {
            elog!("suud: error: {e}");
            std::process::exit(1);
        }
    }
}
