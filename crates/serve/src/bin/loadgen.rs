//! **suu-loadgen** — deterministic load generator for the `suud` daemon.
//!
//! Spawns a fresh daemon (sibling `suud` binary, ephemeral port, private
//! cache dir) and replays a seeded mix of traffic over keep-alive
//! connections:
//!
//! * **hits** (~84%) — requests whose cells a prime phase already
//!   cached; every hit body is byte-compared against the primed body,
//!   so the run *proves* replay determinism, not just speed;
//! * **misses** (~8%) — unique seeds, each computing a fresh cell;
//! * **extends** (~8%) — a per-connection cell requested at escalating
//!   trial counts, exercising the resume path;
//! * **coalescing storms** — barrier-synchronized rounds where every
//!   connection posts the *same* new request at once; all responses
//!   must be byte-identical (one computes, the rest coalesce).
//!
//! The schedule is pure splitmix64 — same flags, same traffic. Latency
//! percentiles (exact, from the sorted sample) and throughput land in a
//! `suu-serve/loadgen/v1` document (default `BENCH_serve.json`),
//! which CI gates through `validate_results`. Exit is nonzero on any
//! failed request or replay mismatch.
//!
//! ```sh
//! suu-loadgen                  # full run (~5k requests), BENCH_serve.json
//! suu-loadgen --smoke --out smoke.json   # CI-sized run
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};
use suu_core::json::Json;

/// Benchmark document schema.
const SCHEMA: &str = "suu-serve/loadgen/v1";

struct Config {
    smoke: bool,
    out: String,
    /// Keep-alive client connections.
    conns: usize,
    /// Scheduled requests per connection (before storms).
    per_conn: usize,
    /// Coalescing-storm rounds (each is one request per connection).
    storm_rounds: usize,
    /// Cells created by the prime phase (the hot set).
    hot_set: usize,
}

fn parse_args() -> Config {
    let mut smoke = false;
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("suu-loadgen: --out needs a value");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                eprintln!("usage: suu-loadgen [--smoke] [--out FILE]");
                std::process::exit(2);
            }
            other => {
                eprintln!("suu-loadgen: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        Config {
            smoke,
            out: out.unwrap_or_else(|| "BENCH_serve_smoke.json".to_string()),
            conns: 2,
            per_conn: 14,
            storm_rounds: 2,
            hot_set: 3,
        }
    } else {
        // 8 × 640 + 6 prime + 2 × 8 storm = 5,150 requests ≥ the 5k floor.
        Config {
            smoke,
            out: out.unwrap_or_else(|| "BENCH_serve.json".to_string()),
            conns: 8,
            per_conn: 640,
            storm_rounds: 2,
            hot_set: 6,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The race body for one cell: tiny scenario so a miss costs
/// milliseconds, unique per `seed`, deterministic per `trials`.
fn race_body(seed: u64, trials: u64) -> String {
    format!(
        r#"{{"scenarios":[{{"family":"uniform","m":2,"n":4,"lo":0.3,"hi":0.9,"seed":{seed}}}],"policies":["greedy-lr"],"trials":{trials},"master_seed":1}}"#
    )
}

// ---------------------------------------------------------------------
// Minimal keep-alive HTTP client
// ---------------------------------------------------------------------

struct Client {
    reader: BufReader<TcpStream>,
}

struct Reply {
    status: u16,
    body: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> std::io::Result<Reply> {
        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: loadgen\r\n");
        if let Some(body) = body {
            req.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        req.push_str("\r\n");
        if let Some(body) = body {
            req.push_str(body);
        }
        self.reader.get_mut().write_all(req.as_bytes())?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> std::io::Result<Reply> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut content_length = None;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((k, v)) = trimmed.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse::<usize>().ok();
                }
            }
        }
        let len = content_length.ok_or_else(|| bad("missing Content-Length"))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(Reply { status, body })
    }
}

// ---------------------------------------------------------------------
// Daemon under test
// ---------------------------------------------------------------------

/// The spawned daemon; killed (and its cache dir removed) on drop, so a
/// panicking run doesn't leak processes.
struct Daemon {
    child: Child,
    addr: String,
    cache_dir: std::path::PathBuf,
    /// Keeps the daemon's stdout pipe open for its whole life — closing
    /// it early would hand the daemon an EPIPE on its next print.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn() -> Daemon {
        let suud = std::env::current_exe()
            .expect("own path")
            .with_file_name("suud");
        let cache_dir =
            std::env::temp_dir().join(format!("suu-loadgen-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let mut child = Command::new(&suud)
            .args([
                "--addr",
                "127.0.0.1:0",
                "--cache-dir",
                cache_dir.to_str().expect("utf-8 temp dir"),
                "--workers",
                "4",
                "--queue-depth",
                "256",
                // No idle reaping / 429s during a latency measurement:
                // those paths have their own e2e tests.
                "--idle-timeout-ms",
                "120000",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("suu-loadgen: cannot spawn {}: {e}", suud.display());
                std::process::exit(1);
            });
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut banner = String::new();
        if reader.read_line(&mut banner).unwrap_or(0) == 0 {
            eprintln!("suu-loadgen: daemon produced no banner");
            std::process::exit(1);
        }
        let addr = banner
            .rsplit("http://")
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        if addr.is_empty() {
            eprintln!("suu-loadgen: unparsable banner {banner:?}");
            std::process::exit(1);
        }
        Daemon {
            child,
            addr,
            cache_dir,
            _stdout: reader,
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Hit,
    Miss,
    Extend,
    Storm,
}

struct Sample {
    class: Class,
    latency: Duration,
    ok: bool,
    mismatch: bool,
}

/// Exact percentile of a sorted sample (nearest-rank).
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

fn latency_obj(samples: &[&Sample]) -> Json {
    let mut sorted: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
    sorted.sort_unstable();
    Json::obj()
        .field("count", sorted.len())
        .field("p50_ms", percentile_ms(&sorted, 0.50))
        .field("p95_ms", percentile_ms(&sorted, 0.95))
        .field("p99_ms", percentile_ms(&sorted, 0.99))
        .field(
            "max_ms",
            sorted.last().map_or(0.0, |d| d.as_secs_f64() * 1e3),
        )
}

fn main() {
    let cfg = parse_args();
    let daemon = Daemon::spawn();
    eprintln!(
        "suu-loadgen: daemon at {} ({} conns × {} requests + {} storm rounds)",
        daemon.addr, cfg.conns, cfg.per_conn, cfg.storm_rounds
    );

    // ---- Prime the hot set (its responses are the replay oracle). ----
    let mut prime = Client::connect(&daemon.addr).unwrap_or_else(|e| {
        eprintln!("suu-loadgen: connect failed: {e}");
        std::process::exit(1);
    });
    let mut hot_bodies: Vec<Vec<u8>> = Vec::with_capacity(cfg.hot_set);
    let mut prime_failed = 0u64;
    for i in 0..cfg.hot_set {
        let body = race_body(1000 + i as u64, 6);
        let reply = prime
            .request("POST", "/v1/race", Some(&body))
            .expect("prime request");
        if reply.status != 200 {
            prime_failed += 1;
        }
        hot_bodies.push(reply.body);
    }
    let hot_bodies = &hot_bodies;

    // ---- Timed phase: per-connection deterministic schedules. ----
    let storm_bodies: Vec<Mutex<Vec<Vec<u8>>>> = (0..cfg.storm_rounds)
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    let storm_bodies = &storm_bodies;
    let barrier = Barrier::new(cfg.conns);
    let barrier = &barrier;
    let addr = daemon.addr.clone();
    let addr = &addr;
    let cfg_ref = &cfg;

    let started = Instant::now();
    let per_thread: Vec<Vec<Sample>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|thread| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connect");
                    let mut rng: u64 = 0xC0FF_EE00 + thread as u64;
                    let mut samples = Vec::with_capacity(cfg_ref.per_conn + cfg_ref.storm_rounds);
                    // This connection's private extend cell grows a
                    // little with every extend request.
                    let extend_seed = 3000 + thread as u64;
                    let mut extend_trials = 4u64;
                    let mut miss_counter = 0u64;
                    for _ in 0..cfg_ref.per_conn {
                        let roll = splitmix64(&mut rng) % 100;
                        let (class, body) = if roll < 84 {
                            let pick = splitmix64(&mut rng) as usize % cfg_ref.hot_set;
                            (Class::Hit, (race_body(1000 + pick as u64, 6), pick))
                        } else if roll < 92 {
                            miss_counter += 1;
                            let seed = 2_000_000 + thread as u64 * 100_000 + miss_counter;
                            (Class::Miss, (race_body(seed, 4), usize::MAX))
                        } else {
                            extend_trials += 2;
                            (
                                Class::Extend,
                                (race_body(extend_seed, extend_trials), usize::MAX),
                            )
                        };
                        let (body, hot_idx) = body;
                        let t0 = Instant::now();
                        let reply = client
                            .request("POST", "/v1/race", Some(&body))
                            .expect("race request");
                        let latency = t0.elapsed();
                        let ok = reply.status == 200;
                        // Replay proof: a hit must be byte-identical to
                        // the primed response body.
                        let mismatch =
                            class == Class::Hit && ok && reply.body != hot_bodies[hot_idx];
                        samples.push(Sample {
                            class,
                            latency,
                            ok,
                            mismatch,
                        });
                    }
                    // Coalescing storms: everyone posts the same fresh
                    // cell at the same instant.
                    for (round, bucket) in
                        storm_bodies.iter().enumerate().take(cfg_ref.storm_rounds)
                    {
                        let body = race_body(4_000_000 + round as u64, 6);
                        barrier.wait();
                        let t0 = Instant::now();
                        let reply = client
                            .request("POST", "/v1/race", Some(&body))
                            .expect("storm request");
                        samples.push(Sample {
                            class: Class::Storm,
                            latency: t0.elapsed(),
                            ok: reply.status == 200,
                            mismatch: false,
                        });
                        bucket.lock().expect("storm lock").push(reply.body);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    // ---- Aggregate. ----
    let samples: Vec<Sample> = per_thread.into_iter().flatten().collect();
    let mut failed = prime_failed;
    let mut mismatches = 0u64;
    for s in &samples {
        if !s.ok {
            failed += 1;
        }
        if s.mismatch {
            mismatches += 1;
        }
    }
    // Cross-connection coalescing proof: within a storm round every
    // response body is identical.
    for (round, bodies) in storm_bodies.iter().enumerate() {
        let bodies = bodies.lock().expect("storm lock");
        if let Some(first) = bodies.first() {
            let diverged = bodies.iter().filter(|b| *b != first).count() as u64;
            if diverged > 0 {
                eprintln!("suu-loadgen: storm round {round}: {diverged} divergent bodies");
            }
            mismatches += diverged;
        }
    }

    let count = |class: Class| samples.iter().filter(|s| s.class == class).count();
    let of =
        |class: Class| -> Vec<&Sample> { samples.iter().filter(|s| s.class == class).collect() };
    let total = samples.len() + cfg.hot_set;
    let throughput = samples.len() as f64 / elapsed.as_secs_f64();

    let mut final_stats = Json::Null;
    if let Ok(mut client) = Client::connect(&daemon.addr) {
        if let Ok(reply) = client.request("GET", "/v1/stats", None) {
            if let Ok(doc) = suu_core::json::parse(&String::from_utf8_lossy(&reply.body)) {
                final_stats = doc;
            }
        }
    }
    drop(daemon);

    let doc = Json::obj()
        .field("schema", SCHEMA)
        .field("mode", if cfg.smoke { "smoke" } else { "full" })
        .field("connections", cfg.conns)
        .field(
            "requests",
            Json::obj()
                .field("total", total)
                .field("primed", cfg.hot_set)
                .field("hit", count(Class::Hit))
                .field("miss", count(Class::Miss))
                .field("extend", count(Class::Extend))
                .field("storm", count(Class::Storm)),
        )
        .field("failed", failed)
        .field("replay_mismatches", mismatches)
        .field("elapsed_ms", elapsed.as_secs_f64() * 1e3)
        .field("throughput_rps", throughput)
        .field(
            "latency",
            Json::obj()
                .field("all", latency_obj(&samples.iter().collect::<Vec<_>>()))
                .field("hit", latency_obj(&of(Class::Hit)))
                .field("miss", latency_obj(&of(Class::Miss)))
                .field("extend", latency_obj(&of(Class::Extend)))
                .field("storm", latency_obj(&of(Class::Storm))),
        )
        .field("daemon_stats", final_stats);
    if let Err(e) = std::fs::write(&cfg.out, doc.to_pretty()) {
        eprintln!("suu-loadgen: cannot write {}: {e}", cfg.out);
        std::process::exit(1);
    }

    eprintln!(
        "suu-loadgen: {} requests in {:.1}s ({:.0} rps), {} failed, {} mismatches → {}",
        total,
        elapsed.as_secs_f64(),
        throughput,
        failed,
        mismatches,
        cfg.out
    );
    if failed > 0 || mismatches > 0 {
        std::process::exit(1);
    }
}
