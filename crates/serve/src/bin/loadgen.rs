//! **suu-loadgen** — deterministic load generator and scaling harness
//! for the sharded serving stack.
//!
//! For each shard count in the run plan, spawns a fresh `suu-router`
//! fleet (sibling binaries, ephemeral ports, private cache dirs) plus a
//! *direct* single `suud` as the byte-identity oracle, and replays a
//! seeded mix of traffic over keep-alive connections:
//!
//! * **hits** (~84%) — requests whose cells a prime phase already
//!   cached; every hit body is byte-compared against the primed body,
//!   so the run *proves* replay determinism through the router, not
//!   just speed;
//! * **misses** (~8%) — unique seeds, each computing a fresh cell;
//! * **extends** (~8%) — a per-connection cell requested at escalating
//!   trial counts, exercising the resume path;
//! * **coalescing storms** — barrier-synchronized rounds where every
//!   connection posts the *same* new request at once; all responses
//!   must be byte-identical (one shard computes, the rest coalesce);
//! * **identity probes** — multi-cell races (2 scenarios × 2 policies,
//!   so the cells scatter across shards) posted to both the router and
//!   the direct daemon; the merged document must be **byte-identical**
//!   to the single-daemon one.
//!
//! A `429 Too Many Requests` is not a failure: the generator honors
//! `Retry-After` with bounded backoff, retries, and reports the count
//! as `rejected_429` (the latency sample is the successful attempt).
//!
//! The schedule is pure splitmix64 — same flags, same traffic. Latency
//! percentiles (exact, from the sorted sample) and throughput land as
//! one entry per shard count in a `suu-serve/loadgen/v2` document
//! (default `BENCH_serve.json`) together with `host_cores`, which CI
//! gates through `validate_results`. Exit is nonzero on any failed
//! request, replay mismatch, or router-vs-direct divergence.
//!
//! ```sh
//! suu-loadgen                  # full scaling run (shards 1, 2, 4)
//! suu-loadgen --smoke          # CI-sized run (shards 1)
//! suu-loadgen --smoke --shards 2 --out smoke.json   # one topology
//! ```

use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};
use suu_core::json::Json;
use suu_serve::client::{retry_after_ms, Client, Reply};
use suu_serve::elog;
use suu_serve::spawn::ServerProc;

/// Benchmark document schema.
const SCHEMA: &str = suu_core::schemas::SERVE_LOADGEN_V2;
/// Upstream read timeout for generator connections.
const READ_TIMEOUT: Duration = Duration::from_secs(120);
/// Most retries one request spends on 429 backoff before counting as
/// failed.
const MAX_RETRIES_429: u32 = 50;

struct Config {
    smoke: bool,
    out: String,
    /// Shard counts to measure, one document entry each.
    shard_counts: Vec<usize>,
    /// Keep-alive client connections.
    conns: usize,
    /// Scheduled requests per connection (before storms).
    per_conn: usize,
    /// Coalescing-storm rounds (each is one request per connection).
    storm_rounds: usize,
    /// Cells created by the prime phase (the hot set).
    hot_set: usize,
    /// Multi-cell router-vs-direct byte-identity probes.
    identity_probes: usize,
}

fn parse_args() -> Config {
    let mut smoke = false;
    let mut out = None;
    let mut shards = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                elog!("suu-loadgen: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(value("--out")),
            "--shards" => {
                let raw = value("--shards");
                shards = Some(
                    raw.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| {
                            elog!("suu-loadgen: --shards must be a positive integer");
                            std::process::exit(2);
                        }),
                )
            }
            "--help" | "-h" => {
                elog!("usage: suu-loadgen [--smoke] [--shards N] [--out FILE]");
                std::process::exit(2);
            }
            other => {
                elog!("suu-loadgen: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let shard_counts = match shards {
        Some(n) => vec![n],
        // The scaling curve: full runs sweep the shard counts the
        // committed BENCH_serve.json documents; smoke stays tiny.
        None if smoke => vec![1],
        None => vec![1, 2, 4],
    };
    if smoke {
        Config {
            smoke,
            out: out.unwrap_or_else(|| "BENCH_serve_smoke.json".to_string()),
            shard_counts,
            conns: 2,
            per_conn: 14,
            storm_rounds: 2,
            hot_set: 3,
            identity_probes: 2,
        }
    } else {
        // Per entry: 8 × 256 + 6 prime + 2 × 8 storm + 3 probes ≈ 2.1k
        // requests; the default three-entry sweep is ~6.3k total.
        Config {
            smoke,
            out: out.unwrap_or_else(|| "BENCH_serve.json".to_string()),
            shard_counts,
            conns: 8,
            per_conn: 256,
            storm_rounds: 2,
            hot_set: 6,
            identity_probes: 3,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The race body for one cell: tiny scenario so a miss costs
/// milliseconds, unique per `seed`, deterministic per `trials`.
fn race_body(seed: u64, trials: u64) -> String {
    format!(
        r#"{{"scenarios":[{{"family":"uniform","m":2,"n":4,"lo":0.3,"hi":0.9,"seed":{seed}}}],"policies":["greedy-lr"],"trials":{trials},"master_seed":1}}"#
    )
}

/// A multi-cell race (2 scenarios × 2 policies = 4 cells) whose cells
/// hash to different shards — the scatter/gather identity probe.
fn multi_cell_body(seed: u64) -> String {
    format!(
        r#"{{"scenarios":[{{"family":"uniform","m":2,"n":4,"lo":0.3,"hi":0.9,"seed":{seed}}},{{"family":"uniform","m":2,"n":5,"lo":0.2,"hi":0.8,"seed":{}}}],"policies":["greedy-lr","round-robin"],"trials":5,"master_seed":7}}"#,
        seed + 1
    )
}

/// POST a race with bounded `Retry-After` backoff on 429. Returns the
/// terminal reply, the latency of the successful attempt, and how many
/// 429s were absorbed along the way.
fn post_race(client: &mut Client, body: &str) -> (Reply, Duration, u64) {
    let mut rejected = 0u64;
    loop {
        let t0 = Instant::now();
        let reply = client
            .request("POST", "/v1/race", Some(body.as_bytes()))
            // suu-lint: allow(serve-unwrap, "benchmark driver: a dead server under test invalidates the run, so aborting loudly is the contract")
            .expect("race request");
        if reply.status == 429 && rejected < MAX_RETRIES_429 as u64 {
            rejected += 1;
            // Hardened parse (saturating, capped): the header crosses a
            // trust boundary and must not overflow or stall the run.
            let backoff = retry_after_ms(reply.header("retry-after"));
            // Ramp toward the server's suggestion instead of stampeding.
            std::thread::sleep(Duration::from_millis((25 * rejected).min(backoff)));
            continue;
        }
        return (reply, t0.elapsed(), rejected);
    }
}

// ---------------------------------------------------------------------
// Servers under test
// ---------------------------------------------------------------------

/// Spawn a sibling server through the shared [`suu_serve::spawn`]
/// helper, exiting loudly on failure — a server that cannot start
/// invalidates the whole measurement.
fn spawn_server(bin: &str, tag: &str, extra: &[&str]) -> ServerProc {
    ServerProc::spawn(bin, tag, extra).unwrap_or_else(|e| {
        elog!("suu-loadgen: {e}");
        std::process::exit(1);
    })
}

/// Fresh keep-alive connection to a spawned server, exit-on-failure.
fn server_client(server: &ServerProc) -> Client {
    server.client(READ_TIMEOUT).unwrap_or_else(|e| {
        elog!("suu-loadgen: connect to {} failed: {e}", server.addr());
        std::process::exit(1);
    })
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Hit,
    Miss,
    Extend,
    Storm,
    Identity,
}

struct Sample {
    class: Class,
    latency: Duration,
    ok: bool,
    mismatch: bool,
}

/// Exact percentile of a sorted sample (nearest-rank).
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

fn latency_obj(samples: &[&Sample]) -> Json {
    let mut sorted: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
    sorted.sort_unstable();
    Json::obj()
        .field("count", sorted.len())
        .field("p50_ms", percentile_ms(&sorted, 0.50))
        .field("p95_ms", percentile_ms(&sorted, 0.95))
        .field("p99_ms", percentile_ms(&sorted, 0.99))
        .field(
            "max_ms",
            sorted.last().map_or(0.0, |d| d.as_secs_f64() * 1e3),
        )
}

/// One scaling-curve entry: run the whole workload against a fresh
/// `--shards N` router fleet (plus a direct daemon for the identity
/// oracle). Returns the document entry and whether it was clean.
fn run_entry(cfg: &Config, shards: usize) -> (Json, bool) {
    let shards_flag = shards.to_string();
    let router = spawn_server(
        "suu-router",
        &format!("loadgen-router{shards}"),
        &[
            "--shards",
            &shards_flag,
            "--shard-workers",
            "2",
            "--shard-queue-depth",
            "256",
        ],
    );
    let direct = spawn_server("suud", &format!("loadgen-direct{shards}"), &[]);
    elog!(
        "suu-loadgen: shards={shards}: router at {} (direct oracle at {}), {} conns × {} requests + {} storm rounds",
        router.addr(), direct.addr(), cfg.conns, cfg.per_conn, cfg.storm_rounds
    );

    // ---- Prime the hot set (its responses are the replay oracle). ----
    let mut prime = server_client(&router);
    let mut hot_bodies: Vec<Vec<u8>> = Vec::with_capacity(cfg.hot_set);
    let mut failed_outside = 0u64;
    let mut rejected_429 = 0u64;
    for i in 0..cfg.hot_set {
        let body = race_body(1000 + i as u64, 6);
        let (reply, _, rejected) = post_race(&mut prime, &body);
        rejected_429 += rejected;
        if reply.status != 200 {
            failed_outside += 1;
        }
        hot_bodies.push(reply.body);
    }
    let hot_bodies = &hot_bodies;

    // ---- Timed phase: per-connection deterministic schedules. ----
    let storm_bodies: Vec<Mutex<Vec<Vec<u8>>>> = (0..cfg.storm_rounds)
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    let storm_bodies = &storm_bodies;
    let barrier = Barrier::new(cfg.conns);
    let barrier = &barrier;
    let addr = router.addr().to_string();
    let addr = &addr;

    let started = Instant::now();
    let per_thread: Vec<(Vec<Sample>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|thread| {
                scope.spawn(move || {
                    // suu-lint: allow(serve-unwrap, "benchmark driver: a generator thread that cannot connect invalidates the run; abort loudly")
                    let mut client = Client::connect(addr, READ_TIMEOUT).expect("client connect");
                    let mut rng: u64 = 0xC0FF_EE00 + thread as u64;
                    let mut samples = Vec::with_capacity(cfg.per_conn + cfg.storm_rounds);
                    let mut rejected = 0u64;
                    // This connection's private extend cell grows a
                    // little with every extend request.
                    let extend_seed = 3000 + thread as u64;
                    let mut extend_trials = 4u64;
                    let mut miss_counter = 0u64;
                    for _ in 0..cfg.per_conn {
                        let roll = splitmix64(&mut rng) % 100;
                        let (class, body, hot_idx) = if roll < 84 {
                            let pick = splitmix64(&mut rng) as usize % cfg.hot_set;
                            (Class::Hit, race_body(1000 + pick as u64, 6), pick)
                        } else if roll < 92 {
                            miss_counter += 1;
                            let seed = 2_000_000 + thread as u64 * 100_000 + miss_counter;
                            (Class::Miss, race_body(seed, 4), usize::MAX)
                        } else {
                            extend_trials += 2;
                            (
                                Class::Extend,
                                race_body(extend_seed, extend_trials),
                                usize::MAX,
                            )
                        };
                        let (reply, latency, r429) = post_race(&mut client, &body);
                        rejected += r429;
                        let ok = reply.status == 200;
                        // Replay proof: a hit must be byte-identical to
                        // the primed response body — through the router.
                        let mismatch =
                            class == Class::Hit && ok && reply.body != hot_bodies[hot_idx];
                        samples.push(Sample {
                            class,
                            latency,
                            ok,
                            mismatch,
                        });
                    }
                    // Coalescing storms: everyone posts the same fresh
                    // cell at the same instant (all routed to one
                    // shard, which must coalesce the computation).
                    for (round, bucket) in storm_bodies.iter().enumerate() {
                        let body = race_body(4_000_000 + round as u64, 6);
                        barrier.wait();
                        let (reply, latency, r429) = post_race(&mut client, &body);
                        rejected += r429;
                        samples.push(Sample {
                            class: Class::Storm,
                            latency,
                            ok: reply.status == 200,
                            mismatch: false,
                        });
                        // suu-lint: allow(serve-unwrap, "a poisoned storm bucket means a sibling generator thread already panicked; propagating is the right outcome for the run")
                        bucket.lock().expect("storm lock").push(reply.body);
                    }
                    (samples, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            // suu-lint: allow(serve-unwrap, "re-raising a generator thread's panic on the main thread is the benchmark's failure path")
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    // ---- Identity probes: the merged document must be byte-identical
    // to the direct daemon's, cold and cached. ----
    let mut router_client = server_client(&router);
    let mut direct_client = server_client(&direct);
    let mut identity_samples = Vec::new();
    let mut identity_mismatches = 0u64;
    for probe in 0..cfg.identity_probes {
        // The last probe re-requests the first one's cells, so the
        // cached-replay path through the router is compared too.
        let fresh = if probe + 1 == cfg.identity_probes && cfg.identity_probes > 1 {
            0
        } else {
            probe as u64
        };
        let body = multi_cell_body(5_000_000 + 10 * fresh);
        let (via_router, latency, r429) = post_race(&mut router_client, &body);
        let (via_direct, _, _) = post_race(&mut direct_client, &body);
        let ok = via_router.status == 200 && via_direct.status == 200;
        let mismatch = ok && via_router.body != via_direct.body;
        if !ok {
            failed_outside += 1;
        }
        if mismatch {
            identity_mismatches += 1;
            elog!("suu-loadgen: shards={shards}: identity probe {probe} diverged from direct");
        }
        identity_samples.push(Sample {
            class: Class::Identity,
            latency,
            ok,
            mismatch,
        });
        rejected_429 += r429;
    }

    // ---- Aggregate. ----
    rejected_429 += per_thread.iter().map(|(_, r)| r).sum::<u64>();
    let mut samples: Vec<Sample> = per_thread.into_iter().flat_map(|(s, _)| s).collect();
    let timed_requests = samples.len();
    samples.extend(identity_samples);
    let mut failed = failed_outside;
    let mut mismatches = 0u64;
    for s in &samples {
        if !s.ok {
            failed += 1;
        }
        if s.mismatch && s.class != Class::Identity {
            mismatches += 1;
        }
    }
    // Cross-connection coalescing proof: within a storm round every
    // response body is identical.
    for (round, bodies) in storm_bodies.iter().enumerate() {
        // suu-lint: allow(serve-unwrap, "a poisoned storm bucket means a generator thread already panicked; propagating is the right outcome for the run")
        let bodies = bodies.lock().expect("storm lock");
        if let Some(first) = bodies.first() {
            let diverged = bodies.iter().filter(|b| *b != first).count() as u64;
            if diverged > 0 {
                elog!(
                    "suu-loadgen: shards={shards}: storm round {round}: {diverged} divergent bodies"
                );
            }
            mismatches += diverged;
        }
    }

    let count = |class: Class| samples.iter().filter(|s| s.class == class).count();
    let of =
        |class: Class| -> Vec<&Sample> { samples.iter().filter(|s| s.class == class).collect() };
    let total = samples.len() + cfg.hot_set;
    let throughput = timed_requests as f64 / elapsed.as_secs_f64();

    // The aggregated fleet stats (sums + per-shard breakdown).
    let mut final_stats = Json::Null;
    if let Ok(reply) = server_client(&router).request("GET", "/v1/stats", None) {
        if let Ok(doc) = suu_core::json::parse(&String::from_utf8_lossy(&reply.body)) {
            final_stats = doc;
        }
    }
    drop(direct);
    drop(router);

    let entry = Json::obj()
        .field("shards", shards)
        .field("connections", cfg.conns)
        .field(
            "requests",
            Json::obj()
                .field("total", total)
                .field("primed", cfg.hot_set)
                .field("hit", count(Class::Hit))
                .field("miss", count(Class::Miss))
                .field("extend", count(Class::Extend))
                .field("storm", count(Class::Storm))
                .field("identity", count(Class::Identity)),
        )
        .field("failed", failed)
        .field("replay_mismatches", mismatches)
        .field("router_vs_direct_mismatches", identity_mismatches)
        .field("rejected_429", rejected_429)
        .field("elapsed_ms", elapsed.as_secs_f64() * 1e3)
        .field("throughput_rps", throughput)
        .field(
            "latency",
            Json::obj()
                // "all" is the timed phase — identity probes run after
                // the clock stops and would skew the curve.
                .field(
                    "all",
                    latency_obj(
                        &samples
                            .iter()
                            .filter(|s| s.class != Class::Identity)
                            .collect::<Vec<_>>(),
                    ),
                )
                .field("hit", latency_obj(&of(Class::Hit)))
                .field("miss", latency_obj(&of(Class::Miss)))
                .field("extend", latency_obj(&of(Class::Extend)))
                .field("storm", latency_obj(&of(Class::Storm))),
        )
        .field("stats", final_stats);
    elog!(
        // suu-lint: allow(float-format, "human console summary on stderr; never enters a schema document")
        "suu-loadgen: shards={shards}: {total} requests in {:.1}s ({throughput:.0} rps), \
         {failed} failed, {mismatches} replay + {identity_mismatches} identity mismatches, \
         {rejected_429} × 429",
        elapsed.as_secs_f64(),
    );
    (
        entry,
        failed == 0 && mismatches == 0 && identity_mismatches == 0,
    )
}

fn main() {
    let cfg = parse_args();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries = Vec::with_capacity(cfg.shard_counts.len());
    let mut clean = true;
    for &shards in &cfg.shard_counts {
        let (entry, entry_clean) = run_entry(&cfg, shards);
        entries.push(entry);
        clean &= entry_clean;
    }

    let doc = Json::obj()
        .field("schema", SCHEMA)
        .field("mode", if cfg.smoke { "smoke" } else { "full" })
        .field("host_cores", host_cores as u64)
        .field("entries", Json::Arr(entries));
    if let Err(e) = std::fs::write(&cfg.out, doc.to_pretty()) {
        elog!("suu-loadgen: cannot write {}: {e}", cfg.out);
        std::process::exit(1);
    }
    elog!("suu-loadgen: wrote {}", cfg.out);
    if !clean {
        std::process::exit(1);
    }
}
