//! **suu-router** — key-range sharded serving front end.
//!
//! Spawns and supervises a fleet of `suud` backends (one per key range),
//! owns the client-facing listener, scatters each `POST /v1/race` into
//! per-cell sub-requests routed by cache-key ownership, and reassembles
//! the response byte-identically to a single-daemon run. See
//! [`suu_serve::router`] for the full design.
//!
//! ```sh
//! # Four shards over ./suud-cache/shard-{0..3}; prints the bound
//! # address and the per-shard topology:
//! suu-router --addr 127.0.0.1:8788 --shards 4 --cache-dir ./suud-cache
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use suu_serve::router::{Fleet, FleetConfig, Router};
use suu_serve::{http, serve_with, ServerConfig, ServerMetrics};

use suu_serve::elog;

struct Args {
    addr: String,
    shards: usize,
    cache_dir: String,
    workers: usize,
    queue_depth: usize,
    idle_timeout_ms: u64,
    shard_workers: usize,
    shard_queue_depth: usize,
    max_cache_bytes: Option<u64>,
    suud: Option<String>,
}

fn usage() -> ! {
    elog!(
        "usage: suu-router [--addr HOST:PORT] [--shards N] [--cache-dir DIR] \
         [--workers N] [--queue-depth N] [--idle-timeout-ms MS] \
         [--shard-workers N] [--shard-queue-depth N] \
         [--max-cache-bytes BYTES] [--suud PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8788".to_string(),
        shards: 2,
        cache_dir: "./suud-cache".to_string(),
        workers: 4,
        queue_depth: 64,
        idle_timeout_ms: 10_000,
        shard_workers: 2,
        shard_queue_depth: 64,
        max_cache_bytes: None,
        suud: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                elog!("suu-router: {name} needs a value");
                usage()
            })
        };
        fn number<T: std::str::FromStr>(name: &str, raw: String) -> T {
            raw.parse().unwrap_or_else(|_| {
                elog!("suu-router: {name} must be a non-negative integer");
                usage()
            })
        }
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--shards" => args.shards = number("--shards", value("--shards")),
            "--cache-dir" => args.cache_dir = value("--cache-dir"),
            "--workers" => args.workers = number("--workers", value("--workers")),
            "--queue-depth" => args.queue_depth = number("--queue-depth", value("--queue-depth")),
            "--idle-timeout-ms" => {
                args.idle_timeout_ms = number("--idle-timeout-ms", value("--idle-timeout-ms"))
            }
            "--shard-workers" => {
                args.shard_workers = number("--shard-workers", value("--shard-workers"))
            }
            "--shard-queue-depth" => {
                args.shard_queue_depth = number("--shard-queue-depth", value("--shard-queue-depth"))
            }
            "--max-cache-bytes" => {
                args.max_cache_bytes = Some(number("--max-cache-bytes", value("--max-cache-bytes")))
            }
            "--suud" => args.suud = Some(value("--suud")),
            "--help" | "-h" => usage(),
            other => {
                elog!("suu-router: unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.shards == 0 {
        elog!("suu-router: --shards must be at least 1");
        usage()
    }
    if args.workers == 0 || args.shard_workers == 0 {
        elog!("suu-router: --workers and --shard-workers must be at least 1");
        usage()
    }
    if args.queue_depth == 0 || args.shard_queue_depth == 0 || args.idle_timeout_ms == 0 {
        elog!(
            "suu-router: --queue-depth, --shard-queue-depth and \
             --idle-timeout-ms must be at least 1"
        );
        usage()
    }
    args
}

/// Default backend binary: the `suud` sitting next to this executable.
fn sibling_suud() -> PathBuf {
    std::env::current_exe()
        .map(|p| p.with_file_name("suud"))
        .unwrap_or_else(|_| PathBuf::from("suud"))
}

fn main() {
    let args = parse_args();
    let fleet = Fleet::spawn(FleetConfig {
        shards: args.shards,
        suud: args
            .suud
            .as_ref()
            .map(PathBuf::from)
            .unwrap_or_else(sibling_suud),
        cache_root: PathBuf::from(&args.cache_dir),
        shard_workers: args.shard_workers,
        shard_queue_depth: args.shard_queue_depth,
        max_cache_bytes: args.max_cache_bytes,
    })
    .unwrap_or_else(|e| {
        elog!("suu-router: cannot start shard fleet: {e}");
        std::process::exit(1);
    });

    let router = Arc::new(Router::new(Arc::clone(&fleet)));
    let handler = Arc::clone(&router);
    let metrics = Arc::new(ServerMetrics::default());
    router.attach_server_metrics(Arc::clone(&metrics));
    let server = serve_with(
        args.addr.as_str(),
        ServerConfig {
            workers: args.workers,
            queue_depth: args.queue_depth,
            idle_timeout: Duration::from_millis(args.idle_timeout_ms),
            ..ServerConfig::default()
        },
        Arc::new(move |req: &http::Request| handler.handle(req)),
        Arc::clone(&metrics),
    )
    .unwrap_or_else(|e| {
        elog!("suu-router: cannot bind {}: {e}", args.addr);
        std::process::exit(1);
    });

    // Same banner contract as suud (harnesses parse the first line for
    // the bound address), then one topology line per shard. All writes
    // are EPIPE-tolerant — see the macro above.
    use std::io::Write as _;
    let _ = writeln!(
        std::io::stdout(),
        "suu-router listening on http://{}",
        server.addr()
    );
    for info in fleet.snapshot() {
        let _ = writeln!(
            std::io::stdout(),
            "suu-router shard {} pid {} http://{} keys [{:016x}, {:016x}] cache {}",
            info.index,
            info.pid,
            info.addr.as_deref().unwrap_or("<down>"),
            info.range.lo,
            info.range.hi,
            info.cache_dir.display()
        );
    }

    // Serve until killed; the fleet monitor restarts crashed shards.
    loop {
        std::thread::park();
    }
}
