//! Minimal HTTP/1.1 plumbing over `std::net` — no crates, no async.
//!
//! The daemon's traffic is small JSON documents on a loopback or
//! datacenter-internal port, so the server is deliberately simple: a
//! fixed pool of worker threads, each blocking on `accept` against its
//! own clone of one shared [`TcpListener`] (the kernel load-balances
//! accepts), one request per connection (`Connection: close`). Requests
//! are parsed strictly enough to be safe against hostile input: the
//! header block and body are size-capped, `Content-Length` is required
//! for bodies, and every read runs under a socket timeout so a stalled
//! client can never wedge a worker for good.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Most bytes accepted for the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Most bytes accepted for a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Per-socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path with query string, exactly as sent (e.g. `/v1/healthz`).
    pub path: String,
    /// Headers, lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (name, value); `Content-Type`, `Content-Length` and
    /// `Connection: close` are emitted automatically.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (errors).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// Attach a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        head.push_str(&format!("Content-Type: {}\r\n", self.content_type));
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// What went wrong while reading a request (mapped to 4xx).
#[derive(Debug)]
pub struct BadRequest {
    status: u16,
    message: String,
}

impl BadRequest {
    fn new(status: u16, message: impl Into<String>) -> BadRequest {
        BadRequest {
            status,
            message: message.into(),
        }
    }
}

/// Read one head line into `line`, refusing to buffer past `budget`
/// bytes: an endless unterminated line (hostile input) must produce a
/// 413, never unbounded allocation — `read_line` alone keeps growing
/// its buffer until a newline arrives.
fn read_head_line<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    budget: usize,
) -> Result<Option<BadRequest>, std::io::Error> {
    line.clear();
    let n = reader.take(budget as u64 + 1).read_line(line)?;
    if n > budget {
        return Ok(Some(BadRequest::new(413, "headers too large")));
    }
    Ok(None)
}

fn read_request(stream: &mut TcpStream) -> Result<Result<Request, BadRequest>, std::io::Error> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut head_bytes = 0usize;

    if let Some(bad) = read_head_line(&mut reader, &mut line, MAX_HEAD_BYTES)? {
        return Ok(Err(bad));
    }
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_uppercase(), p.to_string(), v),
        _ => return Ok(Err(BadRequest::new(400, "malformed request line"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Err(BadRequest::new(400, "unsupported HTTP version")));
    }

    let mut headers = Vec::new();
    loop {
        if let Some(bad) = read_head_line(&mut reader, &mut line, MAX_HEAD_BYTES - head_bytes)? {
            return Ok(Err(bad));
        }
        head_bytes += line.len();
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        match trimmed.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_lowercase(), value.trim().to_string()))
            }
            None => return Ok(Err(BadRequest::new(400, "malformed header"))),
        }
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>());
    match content_length {
        None => {}
        Some(Err(_)) => return Ok(Err(BadRequest::new(400, "bad Content-Length"))),
        Some(Ok(len)) if len > MAX_BODY_BYTES => {
            return Ok(Err(BadRequest::new(413, "body too large")))
        }
        Some(Ok(len)) => {
            body.resize(len, 0);
            reader.read_exact(&mut body)?;
        }
    }

    Ok(Ok(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// The application side of the server: one call per request. Must be
/// callable from any worker thread.
pub trait Handler: Send + Sync + 'static {
    /// Produce the response for one request.
    fn handle(&self, request: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// A running worker-pool server. Dropping the handle does *not* stop the
/// workers; call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake every worker, and join the pool.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Each worker is parked in `accept`; poke one connection per
        // worker to wake them all.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Bind `addr` and serve it with `workers` threads until
/// [`ServerHandle::shutdown`].
pub fn serve(
    addr: impl ToSocketAddrs,
    workers: usize,
    handler: Arc<dyn Handler>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = workers.max(1);
    let pool = (0..workers)
        .map(|worker| {
            let listener = listener.try_clone()?;
            let shutdown = Arc::clone(&shutdown);
            let handler = Arc::clone(&handler);
            Ok(std::thread::Builder::new()
                .name(format!("suud-worker-{worker}"))
                .spawn(move || worker_loop(listener, shutdown, handler))
                .expect("spawn worker"))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    Ok(ServerHandle {
        addr,
        shutdown,
        workers: pool,
    })
}

fn worker_loop(listener: TcpListener, shutdown: Arc<AtomicBool>, handler: Arc<dyn Handler>) {
    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                // Persistent accept failures (fd exhaustion) must not
                // busy-spin a worker at 100% CPU; back off briefly.
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_nodelay(true);
        let response = match read_request(&mut stream) {
            // A panicking handler answers 500 and the worker lives on —
            // one poisoned request must not shrink the pool forever.
            Ok(Ok(request)) => {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler.handle(&request)))
                    .unwrap_or_else(|_| Response::text(500, "internal error: handler panicked"))
            }
            Ok(Err(bad)) => Response::text(bad.status, bad.message),
            Err(_) => continue, // socket died mid-read; nothing to answer
        };
        let _ = response.write_to(&mut stream);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-shot test client: send raw bytes, return the raw response.
    fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn echo_server(workers: usize) -> ServerHandle {
        serve(
            "127.0.0.1:0",
            workers,
            Arc::new(|req: &Request| {
                Response::json(
                    200,
                    format!(
                        "{{\"method\":\"{}\",\"path\":\"{}\",\"body_len\":{}}}",
                        req.method,
                        req.path,
                        req.body.len()
                    ),
                )
                .with_header("X-Echo", "yes")
            }),
        )
        .unwrap()
    }

    #[test]
    fn serves_and_shuts_down() {
        let server = echo_server(2);
        let addr = server.addr();
        let reply = roundtrip(addr, b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("X-Echo: yes"), "{reply}");
        assert!(reply.contains(r#""path":"/v1/healthz""#), "{reply}");
        let reply = roundtrip(
            addr,
            b"POST /v1/race HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert!(reply.contains(r#""body_len":5"#), "{reply}");
        server.shutdown();
        // The port stops answering (connect may still succeed briefly on
        // the listener backlog, but a request gets no response).
        std::thread::sleep(Duration::from_millis(30));
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            let _ = s.read_to_string(&mut buf);
            assert!(buf.is_empty(), "served after shutdown: {buf}");
        }
    }

    #[test]
    fn malformed_requests_get_4xx() {
        let server = echo_server(1);
        let addr = server.addr();
        let reply = roundtrip(addr, b"garbage\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = roundtrip(addr, b"GET / SPDY/9\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = roundtrip(addr, b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        let reply = roundtrip(
            addr,
            format!(
                "GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn unterminated_request_line_is_capped_not_buffered_forever() {
        let server = echo_server(1);
        // MAX_HEAD_BYTES + change of request line with no newline at all:
        // the server must answer 413 from the line cap rather than
        // buffering until the client gives up.
        let mut raw = b"GET /".to_vec();
        raw.resize(MAX_HEAD_BYTES + 512, b'a');
        let reply = roundtrip(server.addr(), &raw);
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn panicking_handler_answers_500_and_the_worker_survives() {
        let server = serve(
            "127.0.0.1:0",
            1,
            Arc::new(|req: &Request| {
                if req.path == "/boom" {
                    panic!("handler bug");
                }
                Response::text(200, "fine")
            }),
        )
        .unwrap();
        let reply = roundtrip(server.addr(), b"GET /boom HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 500"), "{reply}");
        // The single worker must still be alive to serve this.
        let reply = roundtrip(server.addr(), b"GET /ok HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_across_the_pool() {
        let server = echo_server(3);
        let addr = server.addr();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|i| {
                    scope.spawn(move || {
                        roundtrip(addr, format!("GET /req/{i} HTTP/1.1\r\n\r\n").as_bytes())
                    })
                })
                .collect();
            for (i, handle) in handles.into_iter().enumerate() {
                let reply = handle.join().unwrap();
                assert!(reply.contains(&format!("/req/{i}")), "{reply}");
            }
        });
        server.shutdown();
    }
}
