//! HTTP/1.1 message types and an **incremental** request parser.
//!
//! This module is pure — bytes in, [`Request`] out — so the transport
//! can be anything; the nonblocking event loop in [`crate::server`]
//! feeds it the per-connection input buffer and acts on the verdict:
//!
//! * [`Parsed::Incomplete`] — keep reading; nothing is consumed.
//! * [`Parsed::Complete`] — one full request; `consumed` bytes are
//!   done, and the rest of the buffer may already hold the next
//!   **pipelined** request.
//! * [`Parsed::Bad`] — the byte stream is poisoned (malformed head,
//!   oversized declared body, …); answer the 4xx and close, because
//!   resynchronizing a framing error is guesswork.
//!
//! Parsing is strict enough to be safe against hostile input: the head
//! is capped at [`MAX_HEAD_BYTES`] even when no terminator ever
//! arrives, bodies need a `Content-Length` no larger than
//! [`MAX_BODY_BYTES`], and nothing is buffered beyond those caps.

/// Most bytes accepted for the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Most bytes accepted for a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path with query string, exactly as sent (e.g. `/v1/healthz`).
    pub path: String,
    /// Headers, lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask for this to be the connection's last request
    /// (`Connection: close`)? Anything else keeps the connection alive —
    /// HTTP/1.1's default.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.to_ascii_lowercase().contains("close"))
    }
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (name, value); `Content-Type`, `Content-Length` and
    /// `Connection` are emitted automatically.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (errors).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// Attach a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize the full wire form. `keep_alive` decides the
    /// `Connection` header — the event loop passes `false` for the last
    /// response before it closes the connection.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

/// What went wrong while parsing a request (mapped to 4xx).
#[derive(Debug)]
pub struct BadRequest {
    status: u16,
    message: &'static str,
}

impl BadRequest {
    fn new(status: u16, message: &'static str) -> BadRequest {
        BadRequest { status, message }
    }

    /// The HTTP status to answer with.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Human-readable reason (the response body).
    pub fn message(&self) -> &'static str {
        self.message
    }
}

/// Verdict of one [`parse_request`] attempt.
#[derive(Debug)]
pub enum Parsed {
    /// Not enough bytes yet; read more and retry with the grown buffer.
    Incomplete,
    /// One complete request; the first `consumed` buffer bytes are its
    /// wire form (pipelined successors may follow them).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// The byte stream is malformed; answer and close.
    Bad(BadRequest),
}

/// Index one past the blank line terminating the head, accepting both
/// `\r\n` and bare `\n` line endings (the blocking parser this replaces
/// was `read_line`-based and equally lenient).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        if buf[i + 1..].starts_with(b"\r\n") {
            return Some(i + 3);
        }
        if buf.get(i + 1) == Some(&b'\n') {
            return Some(i + 2);
        }
    }
    None
}

/// Try to parse one request from the front of `buf`.
pub fn parse_request(buf: &[u8]) -> Parsed {
    let head_end = match find_head_end(buf) {
        Some(end) if end > MAX_HEAD_BYTES => {
            return Parsed::Bad(BadRequest::new(413, "headers too large"))
        }
        Some(end) => end,
        // An endless unterminated head (hostile input) must produce a
        // 413, never unbounded buffering.
        None if buf.len() > MAX_HEAD_BYTES => {
            return Parsed::Bad(BadRequest::new(413, "headers too large"))
        }
        None => return Parsed::Incomplete,
    };

    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(head) => head,
        Err(_) => return Parsed::Bad(BadRequest::new(400, "head is not UTF-8")),
    };
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));

    let mut parts = lines.next().unwrap_or("").split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => return Parsed::Bad(BadRequest::new(400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Parsed::Bad(BadRequest::new(400, "unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        // Only the head terminator (and the split's trailing remnant)
        // can be empty: `find_head_end` stopped at the FIRST blank line.
        if line.is_empty() {
            continue;
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_lowercase(), value.trim().to_string()))
            }
            None => return Parsed::Bad(BadRequest::new(400, "malformed header")),
        }
    }

    let body_len = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
    {
        None => 0,
        Some(Err(_)) => return Parsed::Bad(BadRequest::new(400, "bad Content-Length")),
        Some(Ok(len)) if len > MAX_BODY_BYTES => {
            return Parsed::Bad(BadRequest::new(413, "body too large"))
        }
        Some(Ok(len)) => len,
    };
    let total = head_end + body_len;
    if buf.len() < total {
        return Parsed::Incomplete;
    }

    Parsed::Complete {
        request: Request {
            method: method.to_uppercase(),
            path: path.to_string(),
            headers,
            body: buf[head_end..total].to_vec(),
        },
        consumed: total,
    }
}

/// The application side of the server: one call per request. Must be
/// callable from any worker thread.
pub trait Handler: Send + Sync + 'static {
    /// Produce the response for one request.
    fn handle(&self, request: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            Parsed::Complete { request, consumed } => (request, consumed),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    fn bad(buf: &[u8]) -> BadRequest {
        match parse_request(buf) {
            Parsed::Bad(bad) => bad,
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_request_with_body_and_reports_consumed() {
        let raw = b"POST /v1/race HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhelloGET /next";
        let (req, consumed) = complete(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/race");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert_eq!(&raw[consumed..], b"GET /next");
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let raw: Vec<u8> =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nokGET /c HTTP/1.1\r\n\r\n"
                .to_vec();
        let (first, n1) = complete(&raw);
        assert_eq!(first.path, "/a");
        let (second, n2) = complete(&raw[n1..]);
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"ok");
        let (third, n3) = complete(&raw[n1 + n2..]);
        assert_eq!(third.path, "/c");
        assert_eq!(n1 + n2 + n3, raw.len());
    }

    #[test]
    fn incomplete_until_the_last_byte_arrives() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        for cut in 0..raw.len() {
            assert!(
                matches!(parse_request(&raw[..cut]), Parsed::Incomplete),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let (req, consumed) = complete(raw);
        assert_eq!(req.body, b"abc");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn bare_newline_line_endings_are_accepted() {
        let (req, _) = complete(b"GET /x HTTP/1.1\nHost: y\n\n");
        assert_eq!(req.path, "/x");
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn malformed_inputs_are_bad_not_incomplete() {
        assert_eq!(bad(b"garbage\r\n\r\n").status(), 400);
        assert_eq!(bad(b"GET / SPDY/9\r\n\r\n").status(), 400);
        assert_eq!(
            bad(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").status(),
            400
        );
        assert_eq!(
            bad(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").status(),
            400
        );
        let oversized = format!(
            "GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(bad(oversized.as_bytes()).status(), 413);
    }

    #[test]
    fn unterminated_head_is_capped_not_buffered_forever() {
        let mut raw = b"GET /".to_vec();
        raw.resize(MAX_HEAD_BYTES + 1, b'a');
        assert_eq!(bad(&raw).status(), 413);
        // A terminated head that is simply too big also 413s.
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.resize(MAX_HEAD_BYTES + 8, b'b');
        raw.extend_from_slice(b"\r\n\r\n");
        assert_eq!(bad(&raw).status(), 413);
    }

    #[test]
    fn wants_close_reads_the_connection_header() {
        let (req, _) = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(req.wants_close());
        let (req, _) = complete(b"GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(!req.wants_close());
        let (req, _) = complete(b"GET / HTTP/1.1\r\n\r\n");
        assert!(!req.wants_close());
    }

    #[test]
    fn to_bytes_frames_and_labels_the_connection() {
        let resp = Response::json(200, "{}").with_header("X-Extra", "1");
        let keep = String::from_utf8(resp.to_bytes(true)).unwrap();
        assert!(keep.starts_with("HTTP/1.1 200 OK\r\n"), "{keep}");
        assert!(keep.contains("Content-Length: 2\r\n"), "{keep}");
        assert!(keep.contains("X-Extra: 1\r\n"), "{keep}");
        assert!(keep.contains("Connection: keep-alive\r\n\r\n{}"), "{keep}");
        let close = String::from_utf8(resp.to_bytes(false)).unwrap();
        assert!(close.contains("Connection: close\r\n\r\n{}"), "{close}");
        let busy = Response::text(429, "busy").to_bytes(true);
        assert!(String::from_utf8(busy)
            .unwrap()
            .starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
    }
}
