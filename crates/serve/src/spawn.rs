//! Spawning sibling serving binaries (`suud`, `suu-router`) as child
//! processes — shared by `suu-loadgen` (private throwaway cache per
//! measurement) and `suu-sweep` (persistent cache root that later runs
//! extend incrementally), and usable from e2e tests.
//!
//! The contract is the banner handshake every serving binary honors:
//! spawn with `--addr 127.0.0.1:0`, read one stdout line of the form
//! `... listening on http://<addr>`, and keep the stdout pipe open for
//! the child's lifetime (closing it early would hand the child an EPIPE
//! on its next print). The child is killed on drop; router shards carry
//! `PDEATHSIG`, so dropping a router proc reaps its whole fleet.

use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use crate::client::Client;

/// A spawned serving process (a direct daemon or a router fleet).
///
/// Killed on drop. The cache directory is removed on drop only when
/// this proc created it ([`ServerProc::spawn`]); a caller-provided
/// directory ([`ServerProc::spawn_with_cache`]) is left in place — that
/// is what makes a daemon-mode sweep incremental across runs.
pub struct ServerProc {
    child: Child,
    addr: String,
    cache_dir: PathBuf,
    owns_cache: bool,
    /// Keeps the child's stdout pipe open for its whole life.
    _stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl ServerProc {
    /// Spawn a sibling binary with a private temp cache dir tagged
    /// `tag` (removed on drop), `--addr 127.0.0.1:0` plus `extra`
    /// flags, and parse the banner for the bound address.
    pub fn spawn(bin: &str, tag: &str, extra: &[&str]) -> Result<ServerProc, String> {
        let cache_dir =
            std::env::temp_dir().join(format!("suu-spawn-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        ServerProc::spawn_inner(bin, &cache_dir, true, extra)
    }

    /// Spawn against a caller-provided cache directory, which survives
    /// the proc: re-spawning over the same directory serves the cells
    /// earlier runs persisted.
    pub fn spawn_with_cache(
        bin: &str,
        cache_dir: &Path,
        extra: &[&str],
    ) -> Result<ServerProc, String> {
        ServerProc::spawn_inner(bin, cache_dir, false, extra)
    }

    fn spawn_inner(
        bin: &str,
        cache_dir: &Path,
        owns_cache: bool,
        extra: &[&str],
    ) -> Result<ServerProc, String> {
        let path = std::env::current_exe()
            .map_err(|e| format!("cannot locate own binary: {e}"))?
            .with_file_name(bin);
        let cache_str = cache_dir
            .to_str()
            .ok_or_else(|| format!("cache dir {} is not UTF-8", cache_dir.display()))?;
        let mut child = Command::new(&path)
            .args([
                "--addr",
                "127.0.0.1:0",
                "--cache-dir",
                cache_str,
                "--workers",
                "4",
                "--queue-depth",
                "256",
                // No idle reaping under a driver: that path has its own
                // e2e tests, and a reaped keep-alive connection would
                // read as a spurious failure here.
                "--idle-timeout-ms",
                "120000",
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", path.display()))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| "spawned child has no piped stdout".to_string())?;
        let mut reader = std::io::BufReader::new(stdout);
        let mut banner = String::new();
        if reader.read_line(&mut banner).unwrap_or(0) == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("{bin} produced no banner"));
        }
        let addr = banner
            .rsplit("http://")
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        if addr.is_empty() {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("unparsable banner {banner:?}"));
        }
        Ok(ServerProc {
            child,
            addr,
            cache_dir: cache_dir.to_path_buf(),
            owns_cache,
            _stdout: reader,
        })
    }

    /// The bound `host:port` parsed from the banner.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Open a fresh keep-alive connection to the child.
    pub fn client(&self, read_timeout: Duration) -> std::io::Result<Client> {
        Client::connect(&self.addr, read_timeout)
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if self.owns_cache {
            let _ = std::fs::remove_dir_all(&self.cache_dir);
        }
    }
}
