//! # suu-serve — the evaluation service daemon (`suud`)
//!
//! The workspace's Monte-Carlo evaluations are deterministic, resumable
//! and content-addressable — properties PR 1–4 built into the evaluator
//! ([`suu_sim::Evaluator`]) and its snapshot machinery
//! ([`suu_sim::EvalStats::to_json`]). This crate puts a long-running
//! service in front of them: a hand-rolled HTTP/1.1 JSON API
//! ([`http`]) behind an epoll readiness loop ([`server`], built on the
//! workspace `mio` shim), serving race evaluations from a
//! **content-addressed, resumable result cache** ([`cache`]).
//!
//! The front end is a single nonblocking event-loop thread that owns
//! every connection: keep-alive by default, pipelined requests answered
//! strictly in order, compute handed to a worker pool through a
//! **bounded queue** (overflow → immediate `429` + `Retry-After`), idle
//! connections reaped on a deadline, and an optional LRU **cache size
//! budget** with recency persisted in `index.json`.
//!
//! * `POST /v1/race` — a [`suu_bench::request::RaceRequest`] (scenarios
//!   by family + normalized parameters, policy specs, a stopping rule).
//!   Every `(scenario, policy)` cell is addressed by the FNV-1a hash of
//!   its canonical identity JSON; cached cells replay byte-identically,
//!   tighter-precision requests **extend** the cached cell (`n → n+k`,
//!   bitwise a cold `n+k` run), and concurrent identical requests
//!   coalesce onto one computation. Responses are `suu-results/v2`
//!   documents; cache status rides in `X-Suu-Cache*` headers so the
//!   body stays replay-deterministic.
//! * `GET /v1/cell/{key}` — the raw cached checkpoint
//!   (`suu-serve/cell/v1`: key provenance + the
//!   `suu-sim/evalstats/v1` accumulator snapshot).
//! * `GET /v1/healthz`, `GET /v1/stats` — liveness, cache counters
//!   (hits / misses / extends / coalesced / inflight / cells on disk)
//!   and serving counters (evictions / cache_bytes / queue_depth /
//!   rejected_429).
//!
//! The service also **shards across processes** ([`router`]): because
//! every cell is content-addressed by a uniform 64-bit key, the cache
//! partitions exactly into N contiguous key ranges, each owned by one
//! daemon. The `suu-router` binary supervises a `--shards N` fleet of
//! `suud` backends (ephemeral ports, health probes, restart-on-crash
//! with bounded backoff), scatters each race into per-cell sub-requests
//! pipelined over persistent upstream connections ([`client`]), and
//! reassembles the response **byte-identically** to a single-daemon
//! run, with provenance checked in-binary.
//!
//! The `suud` binary serves the API (`--addr`, `--workers`,
//! `--queue-depth`, `--idle-timeout-ms`, `--max-cache-bytes`,
//! `--cache-dir`), or evaluates one request from a file in `--oneshot`
//! mode (used by CI to gate daemon-produced documents without holding a
//! port open). The `suu-loadgen` binary spawns a daemon — or a router
//! fleet per shard count — and drives a deterministic mixed workload
//! against it, proving byte-identical replay under load and emitting
//! the `suu-serve/loadgen/v2` benchmark document (`BENCH_serve.json`)
//! with per-shard-count scaling curves. See the README's "Serving
//! evaluations" section for curl examples and the cache-key derivation.

/// EPIPE-tolerant stderr line: a supervisor (the router, a harness, a
/// shell pipeline) that closed our stderr must not kill the process
/// mid-serve (Rust maps SIGPIPE to write errors; a bare `eprintln!`
/// panics on them). Every serve-tier binary logs through this — the
/// `serve-print` rule of `suu-lint` enforces it.
#[macro_export]
macro_rules! elog {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stderr(), $($arg)*);
    }};
}

/// Recover a guard from a poisoned lock. Serving state guarded this way
/// stays consistent across a panic (every critical section is a single
/// insert/remove/push/take), and the serving tier must keep answering —
/// and its drop guards must keep releasing — after one worker panicked;
/// propagating poison would wedge every future request instead.
pub(crate) fn unpoisoned<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub mod cache;
pub mod client;
pub mod http;
pub mod router;
pub mod server;
pub mod service;
pub mod spawn;

pub use cache::{cell_key_fields, CellKey, CellStore, CELL_KEY_SCHEMA, CELL_SCHEMA};
pub use client::{retry_after_ms, Client, Reply, DEFAULT_RETRY_AFTER_MS, MAX_RETRY_AFTER_MS};
pub use http::{Handler, Request, Response};
pub use router::{owner_of, shard_ranges, Fleet, FleetConfig, KeyRange, Router};
pub use server::{serve, serve_with, ServerConfig, ServerHandle, ServerMetrics};
pub use service::{CacheCounts, CacheStatus, ServeError, Service};
pub use spawn::ServerProc;
