//! The content-addressed, resumable result cache.
//!
//! A **cell** is one `(scenario, policy, master seed, semantics, step
//! cap)` evaluation. Its identity is the canonical JSON of those fields
//! ([`cell_key_fields`]) — note what is *excluded*: engine kind, thread
//! count, batch size and the stopping rule, none of which affect
//! results (the engine by the differential guarantee, threads/batch by
//! the evaluator's determinism contract, the stopping rule because it
//! only decides *how far* to grow the cell, never what any trial
//! contains). The FNV-1a hash of the canonical bytes
//! ([`CellKey::hex`]) is the cell's file name and its `GET
//! /v1/cell/{key}` address.
//!
//! Each cache file stores an [`EvalStats`] checkpoint
//! (`suu-sim/evalstats/v1`) wrapped in a [`CELL_SCHEMA`] envelope. A
//! cell is never recomputed: a request the cached trial count already
//! satisfies replays it byte-identically, and a request for more
//! precision *extends* it via the evaluator's resume path — bitwise
//! what a cold run at the final trial count would produce.
//!
//! Writes go through a temp file + atomic rename, so a crashed daemon
//! leaves either the old or the new checkpoint, never a torn one.
//! In-process, [`InflightTable`] serializes work per key: concurrent
//! identical requests coalesce onto one computation and the latecomer
//! reads the winner's checkpoint from disk.
//!
//! ## Size budget and LRU eviction
//!
//! A store opened with [`CellStore::open_with_budget`] keeps total cell
//! bytes under the budget: every `store` that would exceed it evicts
//! least-recently-*used* cells first (loads count as use, not just
//! writes). Recency survives restarts through `index.json` — an
//! [`INDEX_SCHEMA`] document rewritten atomically on every access, so a
//! crash leaves at worst slightly-stale recency, never a torn index.
//! Cells whose key is currently in flight are never evicted (a resume
//! in progress must find its checkpoint), and the cell just written is
//! always kept even when it alone exceeds the budget — a budget too
//! small for one cell degrades to "cache of one", not a failure.

use crate::unpoisoned;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use suu_core::fnv1a_hex;
use suu_core::json::Json;
use suu_sim::EvalStats;

/// Schema stamped on every cache file.
pub const CELL_SCHEMA: &str = suu_core::schemas::SERVE_CELL_V1;
/// Schema of the key-fields object that gets hashed.
pub const CELL_KEY_SCHEMA: &str = suu_core::schemas::SERVE_CELLKEY_V1;
/// Schema of the persisted LRU recency index (`index.json`).
pub const INDEX_SCHEMA: &str = suu_core::schemas::SERVE_INDEX_V1;

/// The canonical identity of a cell, pre-hash. `scenario_params` must be
/// the *normalized* parameter object from
/// [`suu_bench::request::RequestScenario`] so spelling variants
/// collapse; `master_seed` is the race master (the per-scenario
/// evaluation seed derives from it deterministically, so hashing either
/// is equivalent — the race master keeps the key auditable).
pub fn cell_key_fields(
    scenario_params: &Json,
    policy: &str,
    master_seed: u64,
    semantics: &str,
    max_steps: u64,
) -> Json {
    Json::obj()
        .field("schema", CELL_KEY_SCHEMA)
        .field("scenario", scenario_params.clone())
        .field("policy", policy)
        .field("master_seed", master_seed)
        .field("semantics", semantics)
        .field("max_steps", max_steps)
}

/// A computed cell address: the canonical bytes and their hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellKey {
    /// Canonical JSON the hash covers (stored in the cache file for
    /// auditability and collision detection).
    pub canonical: String,
    /// 16-hex-char FNV-1a content address.
    pub hex: String,
}

impl CellKey {
    /// Address a cell.
    pub fn new(fields: &Json) -> CellKey {
        let canonical = fields.to_canonical();
        let hex = fnv1a_hex(canonical.as_bytes());
        CellKey { canonical, hex }
    }
}

/// `true` iff `key` is a plausible cell address — the shared
/// [`suu_core::is_fnv1a_hex`] shape, so this cache and the
/// `validate_results` CI gate agree by construction.
pub fn is_valid_key_hex(key: &str) -> bool {
    suu_core::is_fnv1a_hex(key)
}

/// A loaded cache entry.
#[derive(Debug)]
pub struct CachedCell {
    /// The restored, resumable statistics.
    pub stats: EvalStats,
    /// Stop reason recorded when the cell last grew.
    pub stop_reason: String,
}

/// The on-disk store plus its counters.
pub struct CellStore {
    dir: PathBuf,
    /// Cells served entirely from disk.
    pub hits: AtomicU64,
    /// Cells computed from scratch.
    pub misses: AtomicU64,
    /// Cells resumed to a higher trial count.
    pub extends: AtomicU64,
    /// Requests that waited for an identical in-flight computation.
    pub coalesced: AtomicU64,
    /// Cells deleted to stay under the size budget.
    pub evictions: AtomicU64,
    inflight: InflightTable,
    /// Total-cell-bytes ceiling (`None` = unbounded).
    budget: Option<u64>,
    lru: Mutex<LruState>,
}

/// In-memory mirror of cell recency and sizes, persisted to
/// `index.json`. `order` runs least- to most-recently-used.
#[derive(Debug, Default)]
struct LruState {
    order: Vec<String>,
    sizes: BTreeMap<String, u64>,
}

impl LruState {
    fn total_bytes(&self) -> u64 {
        self.sizes.values().sum()
    }

    /// Move (or insert) `hex` at the most-recently-used end.
    fn touch(&mut self, hex: &str) {
        self.order.retain(|k| k != hex);
        self.order.push(hex.to_string());
    }
}

impl CellStore {
    /// Open (creating the directory if needed) with no size budget.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<CellStore> {
        CellStore::open_with_budget(dir, None)
    }

    /// Open with an optional total-cell-bytes budget. Recency is seeded
    /// from `index.json` when present (keys no longer on disk are
    /// dropped; cells the index missed count as least recently used).
    pub fn open_with_budget(
        dir: impl Into<PathBuf>,
        budget: Option<u64>,
    ) -> std::io::Result<CellStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let lru = load_lru(&dir);
        Ok(CellStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            extends: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inflight: InflightTable::new(),
            budget,
            lru: Mutex::new(lru),
        })
    }

    /// Directory backing the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured size budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Total bytes of cached cells (from the in-memory size mirror).
    pub fn cache_bytes(&self) -> u64 {
        self.lru_lock().total_bytes()
    }

    /// Cells currently on disk (counted fresh; the store is the
    /// authority, not an in-memory mirror). `index.json` and temp files
    /// don't count — only valid content addresses.
    pub fn cells_on_disk(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| {
                        let path = e.path();
                        path.extension().is_some_and(|x| x == "json")
                            && path
                                .file_stem()
                                .and_then(|s| s.to_str())
                                .is_some_and(is_valid_key_hex)
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Rewrite `index.json` (temp + rename) from the current LRU state.
    /// Best-effort: recency is an optimization, losing it must never
    /// fail a request.
    fn persist_index(&self, lru: &LruState) {
        let doc = Json::obj().field("schema", INDEX_SCHEMA).field(
            "order",
            Json::Arr(lru.order.iter().map(|k| Json::Str(k.clone())).collect()),
        );
        let tmp = self.dir.join(format!("index.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, doc.to_pretty()).is_ok() {
            let _ = std::fs::rename(&tmp, self.dir.join("index.json"));
        }
    }

    /// The LRU mirror, recovered from poison: a panic elsewhere while
    /// holding the lock leaves at worst stale recency, which the next
    /// touch repairs — recency is an optimization, never worth wedging
    /// the store over.
    fn lru_lock(&self) -> std::sync::MutexGuard<'_, LruState> {
        unpoisoned(self.lru.lock())
    }

    /// Record a use of `hex` (cache hit / extend base).
    fn lru_touch(&self, hex: &str) {
        let mut lru = self.lru_lock();
        lru.touch(hex);
        self.persist_index(&lru);
    }

    /// Record a write of `hex` at `size` bytes, then evict LRU-first
    /// until the budget holds. In-flight keys and the cell just written
    /// are exempt.
    fn lru_record(&self, hex: &str, size: u64) {
        let mut lru = self.lru_lock();
        lru.sizes.insert(hex.to_string(), size);
        lru.touch(hex);
        if let Some(budget) = self.budget {
            let mut idx = 0;
            while lru.total_bytes() > budget && idx < lru.order.len() {
                let victim = lru.order[idx].clone();
                if victim == hex || self.inflight.contains(&victim) {
                    idx += 1; // exempt; try the next-least-recent
                    continue;
                }
                // Remove the file first: an eviction that fails to
                // delete must not be forgotten by the index.
                match std::fs::remove_file(self.path_for(&victim)) {
                    Ok(()) => {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    // Already gone (external cleanup): reconcile the
                    // index, but it wasn't our eviction.
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(_) => {
                        idx += 1;
                        continue;
                    }
                }
                lru.order.remove(idx);
                lru.sizes.remove(&victim);
            }
        }
        self.persist_index(&lru);
    }

    fn path_for(&self, hex: &str) -> PathBuf {
        self.dir.join(format!("{hex}.json"))
    }

    /// Raw cache document for `GET /v1/cell/{key}` (None when absent or
    /// the key is malformed).
    pub fn raw(&self, hex: &str) -> Option<String> {
        if !is_valid_key_hex(hex) {
            return None;
        }
        std::fs::read_to_string(self.path_for(hex)).ok()
    }

    /// Load a cell if cached. A file that exists but fails validation
    /// (schema drift, truncation despite atomic writes, key collision)
    /// is reported as an error — the daemon refuses to guess.
    pub fn load(&self, key: &CellKey) -> Result<Option<CachedCell>, String> {
        let path = self.path_for(&key.hex);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cache read {}: {e}", path.display())),
        };
        let doc = suu_core::json::parse(&text)
            .map_err(|e| format!("cache parse {}: {e}", path.display()))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(CELL_SCHEMA) => {}
            other => return Err(format!("cache {}: bad schema {other:?}", path.display())),
        }
        // Detect FNV collisions / foreign files: the stored canonical key
        // must be exactly ours.
        match doc.get("cell_key_canonical").and_then(Json::as_str) {
            Some(canonical) if canonical == key.canonical => {}
            Some(_) => {
                return Err(format!(
                    "cache {}: content-address collision (stored key differs)",
                    path.display()
                ))
            }
            None => return Err(format!("cache {}: missing canonical key", path.display())),
        }
        let stop_reason = doc
            .get("stop_reason")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cache {}: missing stop_reason", path.display()))?
            .to_string();
        let checkpoint = doc
            .get("checkpoint")
            .ok_or_else(|| format!("cache {}: missing checkpoint", path.display()))?;
        let stats = EvalStats::from_json(checkpoint)
            .map_err(|e| format!("cache {}: {e}", path.display()))?;
        // A read is a use: hits must refresh recency or a hot cell gets
        // evicted under write pressure.
        self.lru_touch(&key.hex);
        Ok(Some(CachedCell { stats, stop_reason }))
    }

    /// Persist a cell checkpoint (temp file + rename, atomic on POSIX).
    pub fn store(
        &self,
        key: &CellKey,
        policy: &str,
        stats: &EvalStats,
        stop_reason: &str,
    ) -> Result<(), String> {
        let doc = Json::obj()
            .field("schema", CELL_SCHEMA)
            .field("cell_key", key.hex.as_str())
            .field("cell_key_canonical", key.canonical.as_str())
            .field("policy", policy)
            .field("stop_reason", stop_reason)
            .field("checkpoint", stats.to_json());
        let path = self.path_for(&key.hex);
        let tmp = self
            .dir
            .join(format!("{}.tmp.{}", key.hex, std::process::id()));
        let bytes = doc.to_pretty();
        let size = u64::try_from(bytes.len()).unwrap_or(u64::MAX);
        std::fs::write(&tmp, bytes).map_err(|e| format!("cache write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cache rename {}: {e}", path.display()))?;
        self.lru_record(&key.hex, size);
        Ok(())
    }

    /// Run `work` while holding the per-key in-flight guard: concurrent
    /// callers with the same key run strictly one at a time (the
    /// `coalesced` counter records each wait). The caller re-checks the
    /// store once inside, so a latecomer finds the winner's checkpoint.
    /// The key is released through a drop guard, so a panicking `work`
    /// (poisoned checkpoint, evaluator bug) unwinds without wedging
    /// every future request for the cell.
    pub fn with_inflight<T>(&self, key: &CellKey, work: impl FnOnce() -> T) -> T {
        struct Released<'a> {
            table: &'a InflightTable,
            key: &'a str,
        }
        impl Drop for Released<'_> {
            fn drop(&mut self) {
                self.table.release(self.key);
            }
        }
        if self.inflight.acquire(&key.hex) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        let _guard = Released {
            table: &self.inflight,
            key: &key.hex,
        };
        work()
    }

    /// Keys currently being computed.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }
}

/// Per-key mutual exclusion with a single mutex + condvar (the key set
/// is small: one entry per concurrently-computing cell).
struct InflightTable {
    keys: Mutex<BTreeSet<String>>,
    freed: Condvar,
}

impl InflightTable {
    fn new() -> InflightTable {
        InflightTable {
            keys: Mutex::new(BTreeSet::new()),
            freed: Condvar::new(),
        }
    }

    /// Block until the key is free, then claim it. Returns `true` when
    /// the caller had to wait (i.e. it coalesced behind another request).
    fn acquire(&self, key: &str) -> bool {
        let mut keys = unpoisoned(self.keys.lock());
        let mut waited = false;
        while keys.contains(key) {
            waited = true;
            keys = unpoisoned(self.freed.wait(keys));
        }
        keys.insert(key.to_string());
        waited
    }

    fn release(&self, key: &str) {
        let mut keys = unpoisoned(self.keys.lock());
        keys.remove(key);
        drop(keys);
        self.freed.notify_all();
    }

    fn len(&self) -> usize {
        unpoisoned(self.keys.lock()).len()
    }

    fn contains(&self, key: &str) -> bool {
        unpoisoned(self.keys.lock()).contains(key)
    }
}

/// Seed the LRU mirror: sizes from a directory scan (the disk is the
/// authority), recency from `index.json` where it has an opinion.
/// Unindexed cells sort first (least recent) by key for determinism.
fn load_lru(dir: &Path) -> LruState {
    let mut sizes = BTreeMap::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if path.extension().is_some_and(|x| x == "json") && is_valid_key_hex(stem) {
                if let Ok(meta) = entry.metadata() {
                    sizes.insert(stem.to_string(), meta.len());
                }
            }
        }
    }
    let indexed: Vec<String> = std::fs::read_to_string(dir.join("index.json"))
        .ok()
        .and_then(|text| suu_core::json::parse(&text).ok())
        .filter(|doc| doc.get("schema").and_then(Json::as_str) == Some(INDEX_SCHEMA))
        .and_then(|doc| {
            doc.get("order").and_then(Json::as_array).map(|keys| {
                keys.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
        })
        .unwrap_or_default();
    // BTreeMap keys iterate sorted, so the unindexed prefix is already
    // in deterministic (key) order.
    let mut order: Vec<String> = sizes
        .keys()
        .filter(|k| !indexed.contains(k))
        .cloned()
        .collect();
    order.extend(indexed.into_iter().filter(|k| sizes.contains_key(k)));
    LruState { order, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_sim::Evaluator;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("suu-serve-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_stats() -> EvalStats {
        let sc = suu_bench::scenario::Scenario::uniform(2, 4, 0.3, 0.9, 5);
        let registry = suu_algos::standard_registry();
        Evaluator::seeded(8, 42)
            .run_stats_spec(
                &registry,
                &sc.instantiate(),
                &suu_sim::PolicySpec::new("gang-sequential"),
            )
            .unwrap()
    }

    fn sample_key(seed: u64) -> CellKey {
        let params = Json::obj()
            .field("family", "uniform")
            .field("m", 2u64)
            .field("n", 4u64)
            .field("lo", 0.3)
            .field("hi", 0.9)
            .field("seed", 5u64);
        CellKey::new(&cell_key_fields(
            &params,
            "gang-sequential",
            seed,
            "suu-star",
            1000,
        ))
    }

    #[test]
    fn key_is_order_insensitive_and_field_sensitive() {
        let params_a = Json::obj().field("family", "uniform").field("m", 2u64);
        let params_b = Json::obj().field("m", 2u64).field("family", "uniform");
        let key = |p: &Json| CellKey::new(&cell_key_fields(p, "x", 1, "suu-star", 10));
        assert_eq!(key(&params_a), key(&params_b));
        assert_ne!(
            key(&params_a),
            CellKey::new(&cell_key_fields(&params_a, "y", 1, "suu-star", 10))
        );
        assert_ne!(
            key(&params_a),
            CellKey::new(&cell_key_fields(&params_a, "x", 2, "suu-star", 10))
        );
        assert!(is_valid_key_hex(&key(&params_a).hex));
    }

    #[test]
    fn store_load_roundtrips_bitwise() {
        let store = CellStore::open(tempdir("roundtrip")).unwrap();
        let key = sample_key(42);
        assert!(store.load(&key).unwrap().is_none());
        let stats = sample_stats();
        store
            .store(&key, "gang-sequential", &stats, "fixed-budget")
            .unwrap();
        let cached = store.load(&key).unwrap().expect("stored cell");
        assert_eq!(cached.stop_reason, "fixed-budget");
        assert_eq!(
            cached.stats.acc.to_json().to_compact(),
            stats.acc.to_json().to_compact(),
            "restored accumulator must be bitwise the stored one"
        );
        assert_eq!(store.cells_on_disk(), 1);
        assert!(store.raw(&key.hex).unwrap().contains(CELL_SCHEMA));
        assert!(store.raw("not-a-key").is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn collision_and_corruption_are_loud() {
        let store = CellStore::open(tempdir("corrupt")).unwrap();
        let key_a = sample_key(1);
        let key_b = sample_key(2);
        let stats = sample_stats();
        store
            .store(&key_a, "gang-sequential", &stats, "fixed-budget")
            .unwrap();
        // Simulate a collision: key_b's file containing key_a's content.
        std::fs::copy(
            store.dir().join(format!("{}.json", key_a.hex)),
            store.dir().join(format!("{}.json", key_b.hex)),
        )
        .unwrap();
        let err = store.load(&key_b).unwrap_err();
        assert!(err.contains("collision"), "{err}");
        // Truncated file: error, not a panic or a silent miss.
        std::fs::write(store.dir().join(format!("{}.json", key_a.hex)), "{\"sch").unwrap();
        assert!(store.load(&key_a).is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn inflight_serializes_same_key_and_counts_waits() {
        let store = std::sync::Arc::new(CellStore::open(tempdir("inflight")).unwrap());
        let key = sample_key(7);
        let running = std::sync::Arc::new(AtomicU64::new(0));
        let peak = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (store, key, running, peak) =
                    (store.clone(), key.clone(), running.clone(), peak.clone());
                scope.spawn(move || {
                    store.with_inflight(&key, || {
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        running.fetch_sub(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(peak.load(Ordering::SeqCst), 1, "same key must serialize");
        assert_eq!(store.coalesced.load(Ordering::SeqCst), 3);
        assert_eq!(store.inflight_count(), 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Store cells for seeds, returning their keys in store order.
    fn fill(store: &CellStore, seeds: std::ops::Range<u64>) -> Vec<CellKey> {
        let stats = sample_stats();
        seeds
            .map(|seed| {
                let key = sample_key(seed);
                store
                    .store(&key, "gang-sequential", &stats, "fixed-budget")
                    .unwrap();
                key
            })
            .collect()
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        // Measure one cell to size a budget that fits exactly two.
        let probe = CellStore::open(tempdir("lru-probe")).unwrap();
        let keys = fill(&probe, 0..1);
        let cell_bytes = probe.cache_bytes();
        assert!(cell_bytes > 0);
        assert_eq!(probe.cells_on_disk(), 1, "index.json must not count");
        let _ = std::fs::remove_dir_all(probe.dir());
        drop(keys);

        let store = CellStore::open_with_budget(tempdir("lru"), Some(2 * cell_bytes + 16)).unwrap();
        let keys = fill(&store, 0..2);
        assert_eq!(store.evictions.load(Ordering::SeqCst), 0);
        // Touch cell 0 (a hit), then add cell 2: cell 1 is now LRU and
        // must be the victim.
        assert!(store.load(&keys[0]).unwrap().is_some());
        let key2 = fill(&store, 2..3).remove(0);
        assert_eq!(store.evictions.load(Ordering::SeqCst), 1);
        assert!(store.load(&keys[0]).unwrap().is_some(), "MRU kept");
        assert!(store.load(&key2).unwrap().is_some(), "new cell kept");
        assert!(store.load(&keys[1]).unwrap().is_none(), "LRU evicted");
        assert_eq!(store.cells_on_disk(), 2);
        assert!(store.cache_bytes() <= 2 * cell_bytes + 16);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn a_cell_larger_than_the_budget_is_still_kept() {
        let store = CellStore::open_with_budget(tempdir("lru-tiny"), Some(8)).unwrap();
        let keys = fill(&store, 0..2);
        // Each store evicts everything *else*, but never the newcomer.
        assert_eq!(store.cells_on_disk(), 1);
        assert!(store.load(&keys[1]).unwrap().is_some());
        assert_eq!(store.evictions.load(Ordering::SeqCst), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn recency_survives_a_restart_via_the_index() {
        let dir = tempdir("lru-restart");
        let (keys, total) = {
            let store = CellStore::open(&dir).unwrap();
            let keys = fill(&store, 0..3);
            let total = store.cache_bytes();
            // Leave cell 0 most recently used.
            assert!(store.load(&keys[0]).unwrap().is_some());
            (keys, total)
        };
        // Reopen with room for the current three cells but not a fourth:
        // storing one more must evict cell 1 (LRU per the persisted
        // index), not the recently-touched cell 0.
        let store = CellStore::open_with_budget(&dir, Some(total + 64)).unwrap();
        assert_eq!(store.cache_bytes(), total, "sizes reseeded from disk");
        let key3 = fill(&store, 3..4).remove(0);
        assert!(store.load(&keys[0]).unwrap().is_some(), "recent cell kept");
        assert!(
            store.load(&keys[1]).unwrap().is_none(),
            "stale cell evicted"
        );
        assert!(store.load(&key3).unwrap().is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn inflight_cells_are_never_evicted() {
        let stats = sample_stats();
        let probe = CellStore::open(tempdir("lru-inflight-probe")).unwrap();
        fill(&probe, 0..1);
        let cell_bytes = probe.cache_bytes();
        let _ = std::fs::remove_dir_all(probe.dir());

        let store =
            CellStore::open_with_budget(tempdir("lru-inflight"), Some(cell_bytes + 8)).unwrap();
        let keys = fill(&store, 0..1);
        // Key 0 is LRU but in flight (an extend is reading it): storing
        // key 1 must evict nothing and run over budget instead.
        store.with_inflight(&keys[0], || {
            let key1 = sample_key(1);
            store
                .store(&key1, "gang-sequential", &stats, "fixed-budget")
                .unwrap();
            assert_eq!(store.evictions.load(Ordering::SeqCst), 0);
            assert_eq!(store.cells_on_disk(), 2);
        });
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn inflight_key_is_released_even_when_work_panics() {
        let store = CellStore::open(tempdir("panic")).unwrap();
        let key = sample_key(9);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.with_inflight(&key, || panic!("poisoned checkpoint"))
        }));
        assert!(unwound.is_err());
        assert_eq!(
            store.inflight_count(),
            0,
            "a panicking computation must not wedge the key"
        );
        // The next request for the same cell proceeds immediately.
        assert_eq!(store.with_inflight(&key, || 42), 42);
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
