//! The content-addressed, resumable result cache.
//!
//! A **cell** is one `(scenario, policy, master seed, semantics, step
//! cap)` evaluation. Its identity is the canonical JSON of those fields
//! ([`cell_key_fields`]) — note what is *excluded*: engine kind, thread
//! count, batch size and the stopping rule, none of which affect
//! results (the engine by the differential guarantee, threads/batch by
//! the evaluator's determinism contract, the stopping rule because it
//! only decides *how far* to grow the cell, never what any trial
//! contains). The FNV-1a hash of the canonical bytes
//! ([`CellKey::hex`]) is the cell's file name and its `GET
//! /v1/cell/{key}` address.
//!
//! Each cache file stores an [`EvalStats`] checkpoint
//! (`suu-sim/evalstats/v1`) wrapped in a [`CELL_SCHEMA`] envelope. A
//! cell is never recomputed: a request the cached trial count already
//! satisfies replays it byte-identically, and a request for more
//! precision *extends* it via the evaluator's resume path — bitwise
//! what a cold run at the final trial count would produce.
//!
//! Writes go through a temp file + atomic rename, so a crashed daemon
//! leaves either the old or the new checkpoint, never a torn one.
//! In-process, [`InflightTable`] serializes work per key: concurrent
//! identical requests coalesce onto one computation and the latecomer
//! reads the winner's checkpoint from disk.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use suu_core::fnv1a_hex;
use suu_core::json::Json;
use suu_sim::EvalStats;

/// Schema stamped on every cache file.
pub const CELL_SCHEMA: &str = "suu-serve/cell/v1";
/// Schema of the key-fields object that gets hashed.
pub const CELL_KEY_SCHEMA: &str = "suu-serve/cellkey/v1";

/// The canonical identity of a cell, pre-hash. `scenario_params` must be
/// the *normalized* parameter object from
/// [`suu_bench::request::RequestScenario`] so spelling variants
/// collapse; `master_seed` is the race master (the per-scenario
/// evaluation seed derives from it deterministically, so hashing either
/// is equivalent — the race master keeps the key auditable).
pub fn cell_key_fields(
    scenario_params: &Json,
    policy: &str,
    master_seed: u64,
    semantics: &str,
    max_steps: u64,
) -> Json {
    Json::obj()
        .field("schema", CELL_KEY_SCHEMA)
        .field("scenario", scenario_params.clone())
        .field("policy", policy)
        .field("master_seed", master_seed)
        .field("semantics", semantics)
        .field("max_steps", max_steps)
}

/// A computed cell address: the canonical bytes and their hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellKey {
    /// Canonical JSON the hash covers (stored in the cache file for
    /// auditability and collision detection).
    pub canonical: String,
    /// 16-hex-char FNV-1a content address.
    pub hex: String,
}

impl CellKey {
    /// Address a cell.
    pub fn new(fields: &Json) -> CellKey {
        let canonical = fields.to_canonical();
        let hex = fnv1a_hex(canonical.as_bytes());
        CellKey { canonical, hex }
    }
}

/// `true` iff `key` is a plausible cell address — the shared
/// [`suu_core::is_fnv1a_hex`] shape, so this cache and the
/// `validate_results` CI gate agree by construction.
pub fn is_valid_key_hex(key: &str) -> bool {
    suu_core::is_fnv1a_hex(key)
}

/// A loaded cache entry.
#[derive(Debug)]
pub struct CachedCell {
    /// The restored, resumable statistics.
    pub stats: EvalStats,
    /// Stop reason recorded when the cell last grew.
    pub stop_reason: String,
}

/// The on-disk store plus its counters.
pub struct CellStore {
    dir: PathBuf,
    /// Cells served entirely from disk.
    pub hits: AtomicU64,
    /// Cells computed from scratch.
    pub misses: AtomicU64,
    /// Cells resumed to a higher trial count.
    pub extends: AtomicU64,
    /// Requests that waited for an identical in-flight computation.
    pub coalesced: AtomicU64,
    inflight: InflightTable,
}

impl CellStore {
    /// Open (creating the directory if needed).
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<CellStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CellStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            extends: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            inflight: InflightTable::new(),
        })
    }

    /// Directory backing the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cells currently on disk (counted fresh; the store is the
    /// authority, not an in-memory mirror).
    pub fn cells_on_disk(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    fn path_for(&self, hex: &str) -> PathBuf {
        self.dir.join(format!("{hex}.json"))
    }

    /// Raw cache document for `GET /v1/cell/{key}` (None when absent or
    /// the key is malformed).
    pub fn raw(&self, hex: &str) -> Option<String> {
        if !is_valid_key_hex(hex) {
            return None;
        }
        std::fs::read_to_string(self.path_for(hex)).ok()
    }

    /// Load a cell if cached. A file that exists but fails validation
    /// (schema drift, truncation despite atomic writes, key collision)
    /// is reported as an error — the daemon refuses to guess.
    pub fn load(&self, key: &CellKey) -> Result<Option<CachedCell>, String> {
        let path = self.path_for(&key.hex);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cache read {}: {e}", path.display())),
        };
        let doc = suu_core::json::parse(&text)
            .map_err(|e| format!("cache parse {}: {e}", path.display()))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(CELL_SCHEMA) => {}
            other => return Err(format!("cache {}: bad schema {other:?}", path.display())),
        }
        // Detect FNV collisions / foreign files: the stored canonical key
        // must be exactly ours.
        match doc.get("cell_key_canonical").and_then(Json::as_str) {
            Some(canonical) if canonical == key.canonical => {}
            Some(_) => {
                return Err(format!(
                    "cache {}: content-address collision (stored key differs)",
                    path.display()
                ))
            }
            None => return Err(format!("cache {}: missing canonical key", path.display())),
        }
        let stop_reason = doc
            .get("stop_reason")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cache {}: missing stop_reason", path.display()))?
            .to_string();
        let checkpoint = doc
            .get("checkpoint")
            .ok_or_else(|| format!("cache {}: missing checkpoint", path.display()))?;
        let stats = EvalStats::from_json(checkpoint)
            .map_err(|e| format!("cache {}: {e}", path.display()))?;
        Ok(Some(CachedCell { stats, stop_reason }))
    }

    /// Persist a cell checkpoint (temp file + rename, atomic on POSIX).
    pub fn store(
        &self,
        key: &CellKey,
        policy: &str,
        stats: &EvalStats,
        stop_reason: &str,
    ) -> Result<(), String> {
        let doc = Json::obj()
            .field("schema", CELL_SCHEMA)
            .field("cell_key", key.hex.as_str())
            .field("cell_key_canonical", key.canonical.as_str())
            .field("policy", policy)
            .field("stop_reason", stop_reason)
            .field("checkpoint", stats.to_json());
        let path = self.path_for(&key.hex);
        let tmp = self
            .dir
            .join(format!("{}.tmp.{}", key.hex, std::process::id()));
        std::fs::write(&tmp, doc.to_pretty())
            .map_err(|e| format!("cache write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("cache rename {}: {e}", path.display()))
    }

    /// Run `work` while holding the per-key in-flight guard: concurrent
    /// callers with the same key run strictly one at a time (the
    /// `coalesced` counter records each wait). The caller re-checks the
    /// store once inside, so a latecomer finds the winner's checkpoint.
    /// The key is released through a drop guard, so a panicking `work`
    /// (poisoned checkpoint, evaluator bug) unwinds without wedging
    /// every future request for the cell.
    pub fn with_inflight<T>(&self, key: &CellKey, work: impl FnOnce() -> T) -> T {
        struct Released<'a> {
            table: &'a InflightTable,
            key: &'a str,
        }
        impl Drop for Released<'_> {
            fn drop(&mut self) {
                self.table.release(self.key);
            }
        }
        if self.inflight.acquire(&key.hex) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        let _guard = Released {
            table: &self.inflight,
            key: &key.hex,
        };
        work()
    }

    /// Keys currently being computed.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }
}

/// Per-key mutual exclusion with a single mutex + condvar (the key set
/// is small: one entry per concurrently-computing cell).
struct InflightTable {
    keys: Mutex<HashSet<String>>,
    freed: Condvar,
}

impl InflightTable {
    fn new() -> InflightTable {
        InflightTable {
            keys: Mutex::new(HashSet::new()),
            freed: Condvar::new(),
        }
    }

    /// Block until the key is free, then claim it. Returns `true` when
    /// the caller had to wait (i.e. it coalesced behind another request).
    fn acquire(&self, key: &str) -> bool {
        let mut keys = self.keys.lock().expect("inflight lock");
        let mut waited = false;
        while keys.contains(key) {
            waited = true;
            keys = self.freed.wait(keys).expect("inflight wait");
        }
        keys.insert(key.to_string());
        waited
    }

    fn release(&self, key: &str) {
        let mut keys = self.keys.lock().expect("inflight lock");
        keys.remove(key);
        drop(keys);
        self.freed.notify_all();
    }

    fn len(&self) -> usize {
        self.keys.lock().expect("inflight lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_sim::Evaluator;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("suu-serve-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_stats() -> EvalStats {
        let sc = suu_bench::scenario::Scenario::uniform(2, 4, 0.3, 0.9, 5);
        let registry = suu_algos::standard_registry();
        Evaluator::seeded(8, 42)
            .run_stats_spec(
                &registry,
                &sc.instantiate(),
                &suu_sim::PolicySpec::new("gang-sequential"),
            )
            .unwrap()
    }

    fn sample_key(seed: u64) -> CellKey {
        let params = Json::obj()
            .field("family", "uniform")
            .field("m", 2u64)
            .field("n", 4u64)
            .field("lo", 0.3)
            .field("hi", 0.9)
            .field("seed", 5u64);
        CellKey::new(&cell_key_fields(
            &params,
            "gang-sequential",
            seed,
            "suu-star",
            1000,
        ))
    }

    #[test]
    fn key_is_order_insensitive_and_field_sensitive() {
        let params_a = Json::obj().field("family", "uniform").field("m", 2u64);
        let params_b = Json::obj().field("m", 2u64).field("family", "uniform");
        let key = |p: &Json| CellKey::new(&cell_key_fields(p, "x", 1, "suu-star", 10));
        assert_eq!(key(&params_a), key(&params_b));
        assert_ne!(
            key(&params_a),
            CellKey::new(&cell_key_fields(&params_a, "y", 1, "suu-star", 10))
        );
        assert_ne!(
            key(&params_a),
            CellKey::new(&cell_key_fields(&params_a, "x", 2, "suu-star", 10))
        );
        assert!(is_valid_key_hex(&key(&params_a).hex));
    }

    #[test]
    fn store_load_roundtrips_bitwise() {
        let store = CellStore::open(tempdir("roundtrip")).unwrap();
        let key = sample_key(42);
        assert!(store.load(&key).unwrap().is_none());
        let stats = sample_stats();
        store
            .store(&key, "gang-sequential", &stats, "fixed-budget")
            .unwrap();
        let cached = store.load(&key).unwrap().expect("stored cell");
        assert_eq!(cached.stop_reason, "fixed-budget");
        assert_eq!(
            cached.stats.acc.to_json().to_compact(),
            stats.acc.to_json().to_compact(),
            "restored accumulator must be bitwise the stored one"
        );
        assert_eq!(store.cells_on_disk(), 1);
        assert!(store.raw(&key.hex).unwrap().contains(CELL_SCHEMA));
        assert!(store.raw("not-a-key").is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn collision_and_corruption_are_loud() {
        let store = CellStore::open(tempdir("corrupt")).unwrap();
        let key_a = sample_key(1);
        let key_b = sample_key(2);
        let stats = sample_stats();
        store
            .store(&key_a, "gang-sequential", &stats, "fixed-budget")
            .unwrap();
        // Simulate a collision: key_b's file containing key_a's content.
        std::fs::copy(
            store.dir().join(format!("{}.json", key_a.hex)),
            store.dir().join(format!("{}.json", key_b.hex)),
        )
        .unwrap();
        let err = store.load(&key_b).unwrap_err();
        assert!(err.contains("collision"), "{err}");
        // Truncated file: error, not a panic or a silent miss.
        std::fs::write(store.dir().join(format!("{}.json", key_a.hex)), "{\"sch").unwrap();
        assert!(store.load(&key_a).is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn inflight_serializes_same_key_and_counts_waits() {
        let store = std::sync::Arc::new(CellStore::open(tempdir("inflight")).unwrap());
        let key = sample_key(7);
        let running = std::sync::Arc::new(AtomicU64::new(0));
        let peak = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (store, key, running, peak) =
                    (store.clone(), key.clone(), running.clone(), peak.clone());
                scope.spawn(move || {
                    store.with_inflight(&key, || {
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        running.fetch_sub(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(peak.load(Ordering::SeqCst), 1, "same key must serialize");
        assert_eq!(store.coalesced.load(Ordering::SeqCst), 3);
        assert_eq!(store.inflight_count(), 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn inflight_key_is_released_even_when_work_panics() {
        let store = CellStore::open(tempdir("panic")).unwrap();
        let key = sample_key(9);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.with_inflight(&key, || panic!("poisoned checkpoint"))
        }));
        assert!(unwound.is_err());
        assert_eq!(
            store.inflight_count(),
            0,
            "a panicking computation must not wedge the key"
        );
        // The next request for the same cell proceeds immediately.
        assert_eq!(store.with_inflight(&key, || 42), 42);
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
