//! Minimal blocking HTTP/1.1 **keep-alive client** — the upstream side
//! of the router's scatter/gather, also reused by the load generator and
//! the e2e tests.
//!
//! One [`Client`] is one connection. Requests are written eagerly
//! ([`Client::send`]) and replies read separately ([`Client::read_reply`]),
//! so a caller can **pipeline**: write a whole batch of sub-requests to a
//! backend, then read the replies in order while the backend computes
//! them — scatter parallelism across backends without a second event
//! loop. The server side answers pipelined requests strictly in order
//! (see [`crate::server`]), which is what makes the split sound.
//!
//! Connection establishment is **deadline-bounded**
//! ([`Client::connect_deadline`]): the connect starts nonblocking on the
//! workspace `mio` shim ([`mio::net::TcpStream::connect`]) and completion
//! is awaited as a writability event, so a dead backend costs a bounded
//! wait, never a wedged thread.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One parsed response.
#[derive(Debug)]
pub struct Reply {
    /// Status code.
    pub status: u16,
    /// Headers, lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (`Content-Length`-framed).
    pub body: Vec<u8>,
}

impl Reply {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A persistent keep-alive connection.
pub struct Client {
    reader: BufReader<TcpStream>,
}

fn invalid(what: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| invalid(format!("no address for {addr}")))
}

impl Client {
    /// Connect with std's blocking connect (fine for loopback callers
    /// like tests), with a read timeout against wedged peers.
    pub fn connect(addr: &str, read_timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(resolve(addr)?)?;
        Client::from_stream(stream, read_timeout)
    }

    /// Connect with a hard deadline on establishment: nonblocking
    /// connect via the `mio` shim, completion awaited as writability,
    /// `SO_ERROR` checked for the verdict. A backend that is down —
    /// or a blackholed address — costs at most `connect_timeout`.
    pub fn connect_deadline(
        addr: &str,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> io::Result<Client> {
        let pending = mio::net::TcpStream::connect(resolve(addr)?)?;
        let mut poll = mio::Poll::new()?;
        poll.registry()
            .register(&pending, mio::Token(0), mio::Interest::WRITABLE)?;
        let mut events = mio::Events::with_capacity(4);
        let deadline = Instant::now() + connect_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("connect to {addr} timed out"),
                ));
            }
            poll.poll(&mut events, Some(remaining))?;
            if !events.is_empty() {
                break;
            }
        }
        if let Some(err) = pending.take_error()? {
            return Err(err);
        }
        let stream = pending.into_std();
        stream.set_nonblocking(false)?;
        Client::from_stream(stream, read_timeout)
    }

    fn from_stream(stream: TcpStream, read_timeout: Duration) -> io::Result<Client> {
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Write one request (no reply read — pipeline-friendly).
    pub fn send(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<()> {
        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: suu\r\n");
        if let Some(body) = body {
            req.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        req.push_str("\r\n");
        let mut bytes = req.into_bytes();
        if let Some(body) = body {
            bytes.extend_from_slice(body);
        }
        self.reader.get_mut().write_all(&bytes)
    }

    /// Read one `Content-Length`-framed reply.
    pub fn read_reply(&mut self) -> io::Result<Reply> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid(format!("bad status line {line:?}")))?;
        let mut headers = Vec::new();
        let mut content_length = None;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside headers",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((k, v)) = trimmed.split_once(':') {
                let name = k.trim().to_lowercase();
                let value = v.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse::<usize>().ok();
                }
                headers.push((name, value));
            }
        }
        let len = content_length.ok_or_else(|| invalid("missing Content-Length".into()))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(Reply {
            status,
            headers,
            body,
        })
    }

    /// One request/reply round trip.
    pub fn request(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<Reply> {
        self.send(method, path, body)?;
        self.read_reply()
    }
}

/// Backoff used when a 429 carries no parseable `Retry-After` header.
pub const DEFAULT_RETRY_AFTER_MS: u64 = 1_000;

/// Longest `Retry-After` hint a client honors (30 s). The header is
/// advisory and comes from across a trust boundary; a corrupt or hostile
/// value must never stall a client for minutes — or, before this cap
/// existed, overflow the seconds→milliseconds conversion outright.
pub const MAX_RETRY_AFTER_MS: u64 = 30_000;

/// Parse a `Retry-After` header value (whole seconds, the only form the
/// suud tier emits) into a bounded backoff in milliseconds.
///
/// Hardened against untrusted input: unparseable values fall back to
/// [`DEFAULT_RETRY_AFTER_MS`], the seconds→ms conversion saturates
/// instead of overflowing, and the result is capped at
/// [`MAX_RETRY_AFTER_MS`]. Shared by `suu-loadgen` and `suu-sweep`'s
/// daemon client so both back off identically.
pub fn retry_after_ms(header: Option<&str>) -> u64 {
    header
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(DEFAULT_RETRY_AFTER_MS, |secs| secs.saturating_mul(1_000))
        .min(MAX_RETRY_AFTER_MS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_parses_and_bounds() {
        assert_eq!(retry_after_ms(Some("2")), 2_000);
        assert_eq!(retry_after_ms(Some(" 5 ")), 5_000);
        assert_eq!(retry_after_ms(Some("0")), 0);
        assert_eq!(retry_after_ms(None), DEFAULT_RETRY_AFTER_MS);
        assert_eq!(retry_after_ms(Some("soon")), DEFAULT_RETRY_AFTER_MS);
        assert_eq!(retry_after_ms(Some("-3")), DEFAULT_RETRY_AFTER_MS);
        assert_eq!(retry_after_ms(Some("")), DEFAULT_RETRY_AFTER_MS);
    }

    #[test]
    fn retry_after_overflow_saturates_then_caps() {
        // u64::MAX seconds: the old `secs * 1_000` panicked in debug and
        // wrapped in release; now it saturates and the cap takes over.
        let max = u64::MAX.to_string();
        assert_eq!(retry_after_ms(Some(&max)), MAX_RETRY_AFTER_MS);
        // Values past u64 range fail the parse and take the default.
        assert_eq!(
            retry_after_ms(Some("99999999999999999999999")),
            DEFAULT_RETRY_AFTER_MS
        );
    }

    #[test]
    fn retry_after_caps_large_hints() {
        assert_eq!(retry_after_ms(Some("30")), MAX_RETRY_AFTER_MS);
        assert_eq!(retry_after_ms(Some("31")), MAX_RETRY_AFTER_MS);
        assert_eq!(retry_after_ms(Some("86400")), MAX_RETRY_AFTER_MS);
        assert_eq!(retry_after_ms(Some("29")), 29_000);
    }
}
