//! # suu-bench — experiment harness
//!
//! Shared plumbing for the experiment binaries that regenerate the paper's
//! evaluation artifacts (see `DESIGN.md` §5 for the experiment index and
//! `EXPERIMENTS.md` for recorded results):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1_independent` | Table 1, "Independent" row |
//! | `table1_chains` | Table 1, "Disjoint Chains" row |
//! | `table1_forests` | Table 1, "Directed Forests" row |
//! | `fig_opt_small` | §2 α-approximation vs exact optimum |
//! | `fig_rounds` | Theorem 4 round counts |
//! | `fig_lp_quality` | Lemmas 2 & 6 rounding guarantees |
//! | `fig_congestion` | Theorem 7 random-delay congestion |
//! | `fig_concentration` | Lemma 8 tail bound |
//! | `fig_equivalence` | Theorem 10 SUU ≡ SUU* |
//! | `fig_stoch` | Appendix C, Theorem 13 |
//! | `fig_restart` | Appendix C "other results" (`R|restart|`) |
//! | `ablation_rounding` | adaptive vs paper-exact rounding scale |
//! | `bench_baseline` | standard-suite perf/quality baseline (`BENCH_baseline.json`) |
//!
//! The Monte-Carlo experiment path is layered:
//!
//! * [`scenario`] — named, seeded workload recipes and the standard
//!   nine-family [`scenario::ScenarioSuite`];
//! * [`runner`] — the [`runner::Race`] declaration and its one evaluation
//!   path (registry build → capability gate → parallel
//!   [`suu_sim::Evaluator`] → table + JSON);
//! * [`report`] — the shared `suu-results/v2` JSON schema every binary
//!   and example emits;
//! * [`request`] — the wire form of a race (scenarios by family +
//!   normalized constructor parameters): the `suu-serve` daemon's
//!   request schema, kept here so the daemon is a *library consumer* of
//!   the same scenario/runner/report stack the experiment binaries use;
//! * [`sweep`] — the adaptive frontier sweep: a declarative
//!   family × m × n × q grid refined until policy rankings resolve,
//!   emitting the `suu-results/sweep/v1` phase-diagram artifact (driven
//!   by the `suu-sweep` binary in `suu-serve`, which supplies the cache
//!   layer underneath).
//!
//! Micro-benches (`cargo bench`, via the offline [`harness`]) cover the
//! substrate costs: simplex, max-flow, rounding, engine throughput,
//! end-to-end schedule construction, and the stochastic timetable
//! pipeline.

pub mod harness;
pub mod report;
pub mod request;
pub mod runner;
pub mod scenario;
pub mod sweep;

use std::time::Instant;
use suu_sim::engine::ExecOutcome;

/// Measure mean makespan over completed trials; panics if any trial hit
/// the step cap (experiments must be sized to always complete).
pub fn mean_makespan(outcomes: &[ExecOutcome]) -> f64 {
    assert!(
        outcomes.iter().all(|o| o.completed),
        "an experiment trial hit the step cap"
    );
    outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / outcomes.len() as f64
}

/// Standard error of the mean makespan.
pub fn sem_makespan(outcomes: &[ExecOutcome]) -> f64 {
    let mean = mean_makespan(outcomes);
    let n = outcomes.len() as f64;
    let var = outcomes
        .iter()
        .map(|o| (o.makespan as f64 - mean).powi(2))
        .sum::<f64>()
        / (n - 1.0).max(1.0);
    (var / n).sqrt()
}

/// Print a header row followed by a separator sized to the given widths.
pub fn print_header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, w) in cols {
        line.push_str(&format!("{name:>w$} ", w = w));
    }
    println!("{line}");
    println!("{:-<width$}", "", width = line.len());
}

/// Simple wall-clock scope timer for harness progress lines.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}
