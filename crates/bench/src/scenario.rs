//! Named, seeded workload scenarios and the standard scenario suite.
//!
//! A [`Scenario`] is a reproducible instance recipe: an id, a structure
//! class, sizes, a seed, and a generator closure. The
//! [`ScenarioSuite::standard`] suite covers the regimes the paper (and its
//! motivating applications) care about:
//!
//! * `uniform` — i.i.d. unrelated machines, the default testbed;
//! * `power-law` — Pareto job difficulties stressing the semioblivious
//!   rounds (a few jobs far harder than the rest);
//! * `chains` — disjoint chains for the SUU-C family;
//! * `forest` — random out-forests for the SUU-T family;
//! * `mapreduce` — complete-bipartite two-phase DAGs with data-locality
//!   failure structure (§1's motivating example);
//! * `adversarial` — near-certain-failure instances where every job has
//!   exactly one helpful machine hidden among useless ones, punishing
//!   affinity-blind schedules and stressing the LP matching;
//! * `layered` — random layered DAGs (each job depends on a random subset
//!   of the previous layer): wider precedence than chains/forests, with
//!   eligibility frontiers that widen and narrow — many distinct
//!   remaining sets per execution, stressing the batched engine's
//!   decision cache;
//! * `bimodal` — per-pair bimodal success probabilities (reliable or
//!   near-useless, mixed within every machine row), yielding bimodal
//!   makespans that separate quantile sketches from means;
//! * `hetero-pareto` — per-job reliability drawn from a power law on
//!   near-interchangeable machines: schedules win by budgeting steps
//!   across jobs, not by machine matching.

use rand::prelude::*;
use std::sync::Arc;
use suu_core::{workload, Precedence, SuuInstance};
use suu_dag::generators;
use suu_sim::StructureClass;

/// A reproducible workload recipe.
pub struct Scenario {
    /// Stable identifier (used in tables and the JSON schema).
    pub id: String,
    /// One-line description.
    pub description: String,
    /// Machines.
    pub m: usize,
    /// Jobs.
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
    /// Structure class of the generated precedence.
    pub structure: StructureClass,
    build: Box<dyn Fn(u64) -> SuuInstance + Send + Sync>,
}

impl Scenario {
    /// Generate the instance (deterministic per scenario).
    pub fn instantiate(&self) -> Arc<SuuInstance> {
        Arc::new((self.build)(self.seed))
    }

    /// Fully custom scenario from a generator closure. `structure` must
    /// match what the closure produces (checked by the suite tests for
    /// built-ins; custom callers own the invariant).
    pub fn custom(
        id: impl Into<String>,
        description: impl Into<String>,
        m: usize,
        n: usize,
        seed: u64,
        structure: StructureClass,
        build: impl Fn(u64) -> SuuInstance + Send + Sync + 'static,
    ) -> Scenario {
        Scenario {
            id: id.into(),
            description: description.into(),
            m,
            n,
            seed,
            structure,
            build: Box::new(build),
        }
    }

    /// Uniform unrelated machines, `q ~ U[lo, hi)`.
    pub fn uniform(m: usize, n: usize, lo: f64, hi: f64, seed: u64) -> Scenario {
        Scenario {
            id: format!("uniform-m{m}-n{n}-s{seed}"),
            description: format!("independent jobs, q ~ U[{lo},{hi})"),
            m,
            n,
            seed,
            structure: StructureClass::Independent,
            build: Box::new(move |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                workload::uniform_unrelated(m, n, lo, hi, Precedence::Independent, &mut rng)
            }),
        }
    }

    /// Pareto-difficulty jobs (`q_ij = q_base^(1/w_j)`, `w ~ Pareto(alpha)`).
    pub fn power_law(m: usize, n: usize, q_base: f64, alpha: f64, seed: u64) -> Scenario {
        Scenario {
            id: format!("power-law-m{m}-n{n}-s{seed}"),
            description: format!("power-law difficulties, base {q_base}, alpha {alpha}"),
            m,
            n,
            seed,
            structure: StructureClass::Independent,
            build: Box::new(move |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                workload::power_law_difficulty(
                    m,
                    n,
                    q_base,
                    alpha,
                    Precedence::Independent,
                    &mut rng,
                )
            }),
        }
    }

    /// Random disjoint chains over uniform machines.
    pub fn chains(m: usize, n: usize, num_chains: usize, seed: u64) -> Scenario {
        Scenario {
            id: format!("chains-m{m}-n{n}-c{num_chains}-s{seed}"),
            description: format!("{num_chains} random disjoint chains, q ~ U[0.2,0.9)"),
            m,
            n,
            seed,
            structure: StructureClass::Chains,
            build: Box::new(move |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                let cs = generators::random_chain_set(n, num_chains, &mut rng);
                workload::uniform_unrelated(m, n, 0.2, 0.9, Precedence::Chains(cs), &mut rng)
            }),
        }
    }

    /// Random out-forest over uniform machines.
    pub fn forest(m: usize, n: usize, roots: usize, seed: u64) -> Scenario {
        Scenario {
            id: format!("forest-m{m}-n{n}-r{roots}-s{seed}"),
            description: format!("random out-forest with {roots} roots, q ~ U[0.2,0.85)"),
            m,
            n,
            seed,
            structure: StructureClass::Forest,
            build: Box::new(move |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                let forest = generators::random_out_forest(n, roots, &mut rng);
                workload::uniform_unrelated(m, n, 0.2, 0.85, Precedence::Forest(forest), &mut rng)
            }),
        }
    }

    /// Random in-forest (leaves-to-root precedence) over uniform machines.
    pub fn in_forest(m: usize, n: usize, roots: usize, seed: u64) -> Scenario {
        Scenario {
            id: format!("in-forest-m{m}-n{n}-r{roots}-s{seed}"),
            description: format!("random in-forest with {roots} roots, q ~ U[0.2,0.85)"),
            m,
            n,
            seed,
            structure: StructureClass::Forest,
            build: Box::new(move |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                let forest = generators::random_in_forest(n, roots, &mut rng);
                workload::uniform_unrelated(m, n, 0.2, 0.85, Precedence::Forest(forest), &mut rng)
            }),
        }
    }

    /// MapReduce-style complete bipartite DAG with data locality: job `j`'s
    /// shard lives on machine `j mod m`; off-shard execution mostly fails.
    pub fn mapreduce(maps: usize, reduces: usize, m: usize, seed: u64) -> Scenario {
        let n = maps + reduces;
        Scenario {
            id: format!("mapreduce-{maps}x{reduces}-m{m}-s{seed}"),
            description: format!("{maps} maps -> {reduces} reduces, shard-local reliability"),
            m,
            n,
            seed,
            structure: StructureClass::Dag,
            build: Box::new(move |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                let dag = generators::mapreduce_bipartite(maps, reduces);
                let mut q = Vec::with_capacity(m * n);
                for i in 0..m {
                    for j in 0..n {
                        let local = j % m == i;
                        let base: f64 = if local { 0.15 } else { 0.93 };
                        q.push((base + rng.random_range(-0.05..0.05)).clamp(0.01, 0.99));
                    }
                }
                SuuInstance::new(m, n, q, Precedence::Dag(dag)).expect("valid mapreduce instance")
            }),
        }
    }

    /// Random layered DAG over uniform machines: `layers` ranks, each job
    /// wired to a random subset of the previous layer with edge
    /// probability `density`.
    pub fn layered(m: usize, n: usize, layers: usize, density: f64, seed: u64) -> Scenario {
        Scenario {
            id: format!("layered-m{m}-n{n}-l{layers}-s{seed}"),
            description: format!("random {layers}-layer DAG, density {density}, q ~ U[0.2,0.9)"),
            m,
            n,
            seed,
            structure: StructureClass::Dag,
            build: Box::new(move |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                let dag = generators::layered_dag(n, layers, density, &mut rng);
                workload::uniform_unrelated(m, n, 0.2, 0.9, Precedence::Dag(dag), &mut rng)
            }),
        }
    }

    /// Bimodal per-pair success probabilities: each `(machine, job)` pair
    /// independently reliable (`q ~ U[0.05,0.25)`) or near-useless
    /// (`q ~ U[0.85,0.99)`).
    pub fn bimodal(m: usize, n: usize, frac_good: f64, seed: u64) -> Scenario {
        Scenario {
            id: format!("bimodal-m{m}-n{n}-s{seed}"),
            description: format!(
                "bimodal success probabilities, {:.0}% reliable pairs",
                frac_good * 100.0
            ),
            m,
            n,
            seed,
            structure: StructureClass::Independent,
            build: Box::new(move |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                workload::bimodal(
                    m,
                    n,
                    frac_good,
                    (0.05, 0.25),
                    (0.85, 0.99),
                    Precedence::Independent,
                    &mut rng,
                )
            }),
        }
    }

    /// Heterogeneous per-job reliability from a power law
    /// (`q_j = q_floor^(1/w_j)`, `w ~ Pareto(alpha)`), machines nearly
    /// interchangeable.
    pub fn hetero_pareto(m: usize, n: usize, q_floor: f64, alpha: f64, seed: u64) -> Scenario {
        Scenario {
            id: format!("hetero-pareto-m{m}-n{n}-s{seed}"),
            description: format!("per-job q from a power law, floor {q_floor}, alpha {alpha}"),
            m,
            n,
            seed,
            structure: StructureClass::Independent,
            build: Box::new(move |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                workload::pareto_job_q(m, n, q_floor, alpha, Precedence::Independent, &mut rng)
            }),
        }
    }

    /// Adversarial near-certain failure: every `q_ij` is nearly 1 except
    /// one secretly assigned good machine per job. Affinity-blind policies
    /// waste almost every machine-step.
    pub fn adversarial(m: usize, n: usize, seed: u64) -> Scenario {
        Scenario {
            id: format!("adversarial-m{m}-n{n}-s{seed}"),
            description: "near-certain failure; one hidden helpful machine per job".to_string(),
            m,
            n,
            seed,
            structure: StructureClass::Independent,
            build: Box::new(move |s| {
                let mut rng = SmallRng::seed_from_u64(s);
                let mut q = vec![0.0; m * n];
                for cell in q.iter_mut() {
                    *cell = rng.random_range(0.985..0.999);
                }
                for j in 0..n {
                    let good = rng.random_range(0..m);
                    q[good * n + j] = rng.random_range(0.05..0.3);
                }
                SuuInstance::new(m, n, q, Precedence::Independent).expect("valid instance")
            }),
        }
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("id", &self.id)
            .field("structure", &self.structure)
            .field("m", &self.m)
            .field("n", &self.n)
            .field("seed", &self.seed)
            .finish()
    }
}

/// A named collection of scenarios.
#[derive(Debug)]
pub struct ScenarioSuite {
    /// Suite name (lands in the JSON document).
    pub name: String,
    /// The scenarios, in run order.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioSuite {
    /// The nine-family standard suite at benchmark scale.
    pub fn standard(seed: u64) -> ScenarioSuite {
        ScenarioSuite {
            name: "standard".to_string(),
            scenarios: vec![
                Scenario::uniform(6, 24, 0.15, 0.95, seed),
                Scenario::power_law(6, 24, 0.5, 1.2, seed + 1),
                Scenario::chains(4, 24, 6, seed + 2),
                Scenario::forest(4, 24, 3, seed + 3),
                Scenario::mapreduce(16, 8, 6, seed + 4),
                Scenario::adversarial(6, 18, seed + 5),
                Scenario::layered(5, 24, 4, 0.35, seed + 6),
                Scenario::bimodal(6, 20, 0.5, seed + 7),
                Scenario::hetero_pareto(6, 24, 0.3, 1.5, seed + 8),
            ],
        }
    }

    /// A miniature copy of the standard suite for tests (tiny sizes, so
    /// LP-heavy policies build fast). Includes a layered-DAG family so
    /// smoke runs exercise general-DAG eligibility too.
    pub fn smoke(seed: u64) -> ScenarioSuite {
        ScenarioSuite {
            name: "smoke".to_string(),
            scenarios: vec![
                Scenario::uniform(3, 8, 0.2, 0.9, seed),
                Scenario::chains(3, 8, 3, seed + 1),
                Scenario::forest(3, 8, 2, seed + 2),
                Scenario::layered(3, 8, 3, 0.4, seed + 3),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_well_sized() {
        for sc in ScenarioSuite::standard(42).scenarios {
            let a = sc.instantiate();
            let b = sc.instantiate();
            assert_eq!(a.num_jobs(), sc.n, "{}", sc.id);
            assert_eq!(a.num_machines(), sc.m, "{}", sc.id);
            assert_eq!(
                StructureClass::of(a.precedence()),
                sc.structure,
                "{}",
                sc.id
            );
            for i in 0..sc.m as u32 {
                for j in 0..sc.n as u32 {
                    assert_eq!(
                        a.q(suu_core::MachineId(i), suu_core::JobId(j)),
                        b.q(suu_core::MachineId(i), suu_core::JobId(j)),
                        "{} not deterministic",
                        sc.id
                    );
                }
            }
        }
    }

    #[test]
    fn adversarial_has_one_good_machine_per_job() {
        let sc = Scenario::adversarial(5, 12, 7);
        let inst = sc.instantiate();
        for j in 0..12u32 {
            let good = (0..5u32)
                .filter(|&i| inst.q(suu_core::MachineId(i), suu_core::JobId(j)) < 0.5)
                .count();
            assert!(good >= 1, "job {j} has no good machine");
        }
    }

    #[test]
    fn suite_ids_are_unique() {
        let suite = ScenarioSuite::standard(1);
        let mut ids: Vec<&str> = suite.scenarios.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), suite.scenarios.len());
    }

    #[test]
    fn standard_suite_has_nine_families_across_all_classes() {
        let suite = ScenarioSuite::standard(2);
        assert_eq!(suite.scenarios.len(), 9);
        for class in [
            StructureClass::Independent,
            StructureClass::Chains,
            StructureClass::Forest,
            StructureClass::Dag,
        ] {
            assert!(
                suite.scenarios.iter().any(|s| s.structure == class),
                "no {class} scenario in the standard suite"
            );
        }
    }

    #[test]
    fn layered_scenario_has_real_precedence() {
        let sc = Scenario::layered(4, 16, 4, 0.4, 9);
        let inst = sc.instantiate();
        assert_eq!(StructureClass::of(inst.precedence()), StructureClass::Dag);
        let dag = inst.precedence().to_dag(16);
        assert!(dag.num_edges() > 0, "layered DAG degenerated to edgeless");
    }

    #[test]
    fn bimodal_scenario_has_no_middle_ground() {
        let sc = Scenario::bimodal(4, 10, 0.5, 3);
        let inst = sc.instantiate();
        for i in 0..4u32 {
            for j in 0..10u32 {
                let q = inst.q(suu_core::MachineId(i), suu_core::JobId(j));
                assert!(!(0.25..0.85).contains(&q), "q {q} falls between the modes");
            }
        }
    }
}
