//! Dependency-free micro-benchmark harness (criterion-lite).
//!
//! The workspace cannot vendor criterion offline, so `cargo bench` targets
//! are plain `harness = false` binaries built on this module: warmup, a
//! configurable number of timed samples, and a one-line
//! min / median / mean report per benchmark id. Numbers are comparable
//! run-to-run on the same machine; there is no statistical outlier
//! rejection.

use std::hint::black_box as hint_black_box;
use std::time::Instant;

/// Re-export so benches write `harness::black_box` symmetrical to
/// criterion's.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// A named group of benchmarks sharing a sample count.
pub struct Bench {
    group: String,
    samples: usize,
    warmup: usize,
}

impl Bench {
    /// New group; default 20 samples, 2 warmup runs per benchmark.
    pub fn group(name: impl Into<String>) -> Self {
        let group = name.into();
        println!("== bench group: {group} ==");
        Bench {
            group,
            samples: 20,
            warmup: 2,
        }
    }

    /// Set timed samples per benchmark (criterion's `sample_size`).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Time `f` and print one report line under `id`.
    pub fn bench<T>(&self, id: &str, mut f: impl FnMut() -> T) {
        for _ in 0..self.warmup {
            hint_black_box(f());
        }
        let mut nanos: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            hint_black_box(f());
            nanos.push(t.elapsed().as_nanos());
        }
        nanos.sort_unstable();
        let min = nanos[0];
        let median = nanos[nanos.len() / 2];
        let mean = nanos.iter().sum::<u128>() / nanos.len() as u128;
        println!(
            "{group}/{id:<28} min {min:>12}  median {median:>12}  mean {mean:>12}  (ns, {s} samples)",
            group = self.group,
            s = self.samples,
        );
    }

    /// Time `f` on fresh state from `setup` each sample (setup excluded
    /// from the measurement) — criterion's `iter_batched`.
    pub fn bench_batched<S, T>(
        &self,
        id: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) {
        for _ in 0..self.warmup {
            hint_black_box(f(setup()));
        }
        let mut nanos: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let state = setup();
            let t = Instant::now();
            hint_black_box(f(state));
            nanos.push(t.elapsed().as_nanos());
        }
        nanos.sort_unstable();
        let min = nanos[0];
        let median = nanos[nanos.len() / 2];
        let mean = nanos.iter().sum::<u128>() / nanos.len() as u128;
        println!(
            "{group}/{id:<28} min {min:>12}  median {median:>12}  mean {mean:>12}  (ns, {s} samples)",
            group = self.group,
            s = self.samples,
        );
    }
}
