//! The scenario × policy race runner — the one evaluation path every
//! experiment binary goes through.
//!
//! A [`Race`] declares *what* to compare (scenarios, policy specs, trial
//! budget); this module handles *how*: registry construction through
//! [`suu_algos::standard_registry`], capability-aware skipping, parallel
//! evaluation via [`suu_sim::Evaluator`]'s **streaming** path (batched
//! engine + [`suu_sim::OutcomeAccumulator`], so a cell's memory is
//! independent of its trial count), optional LP lower bounds, the
//! human-readable table, and the shared JSON results document. The
//! table1/figure binaries are now a `Race` literal plus a `main`.

use crate::report::ResultsBuilder;
use crate::scenario::Scenario;
use suu_algos::bounds::lower_bound;
use suu_core::json::Json;
use suu_sim::{EvalConfig, Evaluator, ExecConfig, PolicyRegistry, PolicySpec, RegistryError};

/// Declarative description of a policy race.
pub struct Race {
    /// Title line printed before the table.
    pub title: String,
    /// Name stamped into the JSON document.
    pub generated_by: String,
    /// Scenarios to sweep (rows).
    pub scenarios: Vec<Scenario>,
    /// Policy specs to race (columns), in textual form.
    pub policies: Vec<String>,
    /// Trials per cell.
    pub trials: usize,
    /// Master seed (per-cell seeds derive from it).
    pub master_seed: u64,
    /// Engine configuration.
    pub exec: ExecConfig,
    /// Compute the LP lower bound per scenario and report `E[T]/LB`.
    pub ratios_to_lower_bound: bool,
    /// Write the JSON document here (in addition to returning it).
    pub json_path: Option<std::path::PathBuf>,
}

impl Default for Race {
    fn default() -> Self {
        Race {
            title: String::new(),
            generated_by: "race".to_string(),
            scenarios: Vec::new(),
            policies: Vec::new(),
            trials: 60,
            master_seed: 0x5EED,
            exec: ExecConfig::default(),
            ratios_to_lower_bound: false,
            json_path: None,
        }
    }
}

/// One evaluated `(scenario, policy)` cell.
#[derive(Debug)]
pub enum CellOutcome {
    /// Ran; mean makespan and the ratio to the scenario lower bound (when
    /// requested).
    Ran {
        /// Mean makespan across trials.
        mean: f64,
        /// `mean / lower_bound`, when a bound was computed.
        ratio: Option<f64>,
    },
    /// The policy's capability is below the scenario's structure class.
    Skipped,
    /// Construction failed (limits, LP errors…).
    Failed(String),
}

/// Run the race: print the table, write/return the JSON document.
pub fn run_race(race: Race) -> Json {
    let registry = suu_algos::standard_registry();
    run_race_with(race, &registry)
}

/// [`run_race`] against a caller-supplied registry (tests, custom
/// policies).
pub fn run_race_with(race: Race, registry: &PolicyRegistry) -> Json {
    let specs: Vec<PolicySpec> = race
        .policies
        .iter()
        .map(|p| PolicySpec::parse(p).unwrap_or_else(|e| panic!("bad policy spec {p:?}: {e}")))
        .collect();

    if !race.title.is_empty() {
        println!("== {} ==", race.title);
        println!(
            "   {} trials/cell, master seed {:#x}\n",
            race.trials, race.master_seed
        );
    }

    let mut header = format!("{:<24} {:>6} {:>6}", "scenario", "m", "n");
    if race.ratios_to_lower_bound {
        header.push_str(&format!(" {:>8}", "LB"));
    }
    for spec in &specs {
        header.push_str(&format!(" {:>14}", truncate(&spec.to_string(), 14)));
    }
    println!("{header}");
    println!("{:-<width$}", "", width = header.len());

    let mut builder = ResultsBuilder::new(race.generated_by.clone());
    let mut doc_cells: Vec<(String, String, CellOutcome)> = Vec::new();

    for sc in &race.scenarios {
        builder.add_scenario(sc);
        let inst = sc.instantiate();
        let lb = if race.ratios_to_lower_bound {
            lower_bound(&inst).ok()
        } else {
            None
        };

        let mut row = format!("{:<24} {:>6} {:>6}", truncate(&sc.id, 24), sc.m, sc.n);
        if race.ratios_to_lower_bound {
            match lb {
                Some(lb) => row.push_str(&format!(" {:>8.2}", lb)),
                None => row.push_str(&format!(" {:>8}", "—")),
            }
        }

        let evaluator = Evaluator::new(EvalConfig {
            trials: race.trials,
            // Scenario-specific stream so adding a scenario never shifts
            // another's randomness.
            master_seed: suu_sim::derive_seed(race.master_seed, sc.seed, 0xC311),
            threads: 0,
            exec: race.exec,
            ..EvalConfig::default()
        });

        for spec in &specs {
            let outcome = evaluate_cell(registry, &evaluator, sc, &inst, spec, lb, &mut builder);
            match &outcome {
                CellOutcome::Ran { mean, ratio } => match ratio {
                    Some(r) => row.push_str(&format!(" {:>13.2}x", r)),
                    None => row.push_str(&format!(" {:>14.2}", mean)),
                },
                CellOutcome::Skipped => row.push_str(&format!(" {:>14}", "—")),
                CellOutcome::Failed(_) => row.push_str(&format!(" {:>14}", "error")),
            }
            doc_cells.push((sc.id.clone(), spec.to_string(), outcome));
        }
        println!("{row}");
    }

    let doc = builder.finish();
    if let Some(path) = &race.json_path {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(parent);
        }
        let text = doc.to_pretty();
        match std::fs::write(path, &text) {
            Ok(()) => println!("\nresults written to {}", path.display()),
            Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
        }
    }
    doc
}

fn evaluate_cell(
    registry: &PolicyRegistry,
    evaluator: &Evaluator,
    sc: &Scenario,
    inst: &std::sync::Arc<suu_core::SuuInstance>,
    spec: &PolicySpec,
    lb: Option<f64>,
    builder: &mut ResultsBuilder,
) -> CellOutcome {
    match evaluator.run_stats_spec(registry, inst, spec) {
        Ok(stats) => {
            let mean = stats.mean_makespan();
            let ratio = lb.map(|lb| mean / lb);
            let mut extra: Vec<(&str, Json)> = Vec::new();
            if let Some(lb) = lb {
                extra.push(("lower_bound", Json::Num(lb)));
            }
            if let Some(r) = ratio {
                extra.push(("ratio_to_lb", Json::Num(r)));
            }
            builder.add_cell(&sc.id, &spec.to_string(), &stats, &extra);
            CellOutcome::Ran { mean, ratio }
        }
        Err(e @ RegistryError::UnsupportedStructure { .. }) => {
            builder.add_failure(&sc.id, &spec.to_string(), "skipped", e.to_string());
            CellOutcome::Skipped
        }
        Err(e) => {
            let msg = e.to_string();
            builder.add_failure(&sc.id, &spec.to_string(), "error", msg.clone());
            CellOutcome::Failed(msg)
        }
    }
}

fn truncate(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_string()
    } else {
        let head: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSuite;

    #[test]
    fn race_covers_scenarios_and_skips_by_capability() {
        let doc = run_race(Race {
            title: String::new(),
            generated_by: "runner-test".to_string(),
            scenarios: ScenarioSuite::smoke(3).scenarios,
            policies: vec![
                "gang-sequential".to_string(),
                "suu-i-sem".to_string(),
                "suu-c".to_string(),
            ],
            trials: 4,
            master_seed: 11,
            ..Race::default()
        });
        let cells = doc.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 12, "4 scenarios x 3 policies");
        // suu-i-sem must skip the chains, forest and layered scenarios;
        // suu-c (capability: chains) must skip forest and layered.
        let skipped: Vec<(&str, &str)> = cells
            .iter()
            .filter(|c| c.get("skipped").is_some())
            .map(|c| {
                (
                    c.get("policy").unwrap().as_str().unwrap(),
                    c.get("scenario").unwrap().as_str().unwrap(),
                )
            })
            .collect();
        assert_eq!(skipped.len(), 5, "{skipped:?}");
        assert_eq!(skipped.iter().filter(|(p, _)| *p == "suu-i-sem").count(), 3);
        assert!(skipped
            .iter()
            .any(|(p, s)| *p == "suu-c" && s.starts_with("forest")));
        assert!(skipped
            .iter()
            .any(|(p, s)| *p == "suu-c" && s.starts_with("layered")));
        // Every run cell carries statistics.
        for c in cells.iter().filter(|c| c.get("skipped").is_none()) {
            assert!(c.get("mean_makespan").unwrap().as_f64().unwrap() >= 1.0);
            assert_eq!(c.get("trials").unwrap().as_u64(), Some(4));
        }
    }

    #[test]
    fn lower_bound_ratio_cells() {
        let doc = run_race(Race {
            generated_by: "runner-lb-test".to_string(),
            scenarios: vec![crate::scenario::Scenario::uniform(3, 6, 0.2, 0.9, 5)],
            policies: vec!["greedy-lr".to_string()],
            trials: 6,
            master_seed: 2,
            ratios_to_lower_bound: true,
            ..Race::default()
        });
        let cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
        let lb = cell.get("lower_bound").unwrap().as_f64().unwrap();
        let ratio = cell.get("ratio_to_lb").unwrap().as_f64().unwrap();
        let mean = cell.get("mean_makespan").unwrap().as_f64().unwrap();
        assert!(lb > 0.0);
        assert!((ratio - mean / lb).abs() < 1e-12);
    }
}
