//! The scenario × policy race runner — the one evaluation path every
//! experiment binary goes through.
//!
//! A [`Race`] declares *what* to compare (scenarios, policy specs, trial
//! budget or [`Precision`] target, paired CRN comparisons); this module
//! handles *how*: registry construction through
//! [`suu_algos::standard_registry`], capability-aware skipping,
//! **adaptive-precision** evaluation via [`suu_sim::Evaluator`]'s
//! streaming path (batched engine + [`suu_sim::OutcomeAccumulator`], so
//! a cell's memory is independent of its trial count, and cells grow in
//! deterministic rounds until the stopping rule fires), optional LP
//! lower bounds, paired policy comparisons on common random numbers, the
//! human-readable table, and the shared JSON results document
//! (`suu-results/v2`). The table1/figure binaries are now a `Race`
//! literal plus a `main`, and the `suu-serve` daemon consumes the same
//! stack as a library — [`scenario_master_seed`], the scenario recipes
//! and [`ResultsBuilder`] are shared between the offline runner and the
//! served cache path, so a daemon cell and a runner cell with the same
//! identity are the same numbers.

use crate::report::ResultsBuilder;
use crate::scenario::Scenario;
use suu_algos::bounds::lower_bound;
use suu_core::json::Json;
use suu_sim::{
    EvalConfig, Evaluator, ExecConfig, PolicyRegistry, PolicySpec, Precision, RegistryError,
};

/// Declarative description of a policy race.
pub struct Race {
    /// Title line printed before the table.
    pub title: String,
    /// Name stamped into the JSON document.
    pub generated_by: String,
    /// Scenarios to sweep (rows).
    pub scenarios: Vec<Scenario>,
    /// Policy specs to race (columns), in textual form.
    pub policies: Vec<String>,
    /// Trials per cell when no [`Race::precision`] override is given
    /// (i.e. the default is `Precision::FixedTrials(trials)`).
    pub trials: usize,
    /// How much sampling each cell gets; `None` means a fixed budget of
    /// [`Race::trials`]. With `Precision::TargetCi` cells stop as soon as
    /// their 95% CI half-width reaches the target (deterministically:
    /// same master seed ⇒ same stopping points).
    pub precision: Option<Precision>,
    /// Paired CRN comparisons `(policy A, policy B)` to run per scenario
    /// after the marginal cells, on the same per-scenario trial streams
    /// the cells used. Specs must also appear in [`Race::policies`] to be
    /// meaningful, but that is not enforced.
    pub paired: Vec<(String, String)>,
    /// Master seed (per-cell seeds derive from it).
    pub master_seed: u64,
    /// Engine configuration.
    pub exec: ExecConfig,
    /// Compute the LP lower bound per scenario and report `E[T]/LB`.
    pub ratios_to_lower_bound: bool,
    /// Record per-cell wall clocks in the JSON document (`true` by
    /// default). Disable to make the document a pure function of the
    /// master seed — byte-identical across reruns and thread counts —
    /// for regression pinning.
    pub record_wall_clocks: bool,
    /// Write the JSON document here (in addition to returning it).
    pub json_path: Option<std::path::PathBuf>,
}

impl Default for Race {
    fn default() -> Self {
        Race {
            title: String::new(),
            generated_by: "race".to_string(),
            scenarios: Vec::new(),
            policies: Vec::new(),
            trials: 60,
            precision: None,
            paired: Vec::new(),
            master_seed: 0x5EED,
            exec: ExecConfig::default(),
            ratios_to_lower_bound: false,
            record_wall_clocks: true,
            json_path: None,
        }
    }
}

impl Race {
    /// The effective stopping rule: the explicit [`Race::precision`], or
    /// a fixed budget of [`Race::trials`].
    pub fn effective_precision(&self) -> Precision {
        self.precision
            .unwrap_or(Precision::FixedTrials(self.trials))
    }
}

/// One evaluated `(scenario, policy)` cell.
#[derive(Debug)]
pub enum CellOutcome {
    /// Ran; mean makespan and the ratio to the scenario lower bound (when
    /// requested).
    Ran {
        /// Mean makespan across trials.
        mean: f64,
        /// `mean / lower_bound`, when a bound was computed.
        ratio: Option<f64>,
        /// Trials actually executed before the stopping rule fired.
        trials_used: u64,
    },
    /// The policy's capability is below the scenario's structure class.
    Skipped,
    /// Construction failed (limits, LP errors…).
    Failed(String),
}

/// The per-scenario evaluation master seed.
///
/// Mixes the scenario's **identity** (an FNV-1a hash of its id) into the
/// derivation alongside its generator seed. Deriving from `sc.seed`
/// alone was a bug: `seed` is a constructor parameter freely reused
/// across scenario families, so two scenarios from different families
/// built with the same value (e.g. `uniform(..., 7)` and
/// `bimodal(..., 7)`) received *identical* randomness streams and their
/// cells were correlated. The stream is still shared by every policy of
/// the same scenario — that sharing is load-bearing: it is what makes
/// paired CRN comparisons (and cross-policy variance reduction) work.
pub fn scenario_master_seed(race_master: u64, sc: &Scenario) -> u64 {
    let identity = suu_core::fnv1a(sc.id.as_bytes());
    suu_sim::derive_seed(
        suu_sim::derive_seed(race_master, identity, 0xC312),
        sc.seed,
        0xC311,
    )
}

/// Run the race: print the table, write/return the JSON document.
pub fn run_race(race: Race) -> Json {
    let registry = suu_algos::standard_registry();
    run_race_with(race, &registry)
}

/// [`run_race`] against a caller-supplied registry (tests, custom
/// policies).
pub fn run_race_with(race: Race, registry: &PolicyRegistry) -> Json {
    let specs: Vec<PolicySpec> = race
        .policies
        .iter()
        .map(|p| PolicySpec::parse(p).unwrap_or_else(|e| panic!("bad policy spec {p:?}: {e}")))
        .collect();

    if !race.title.is_empty() {
        println!("== {} ==", race.title);
        match race.effective_precision() {
            Precision::FixedTrials(n) => {
                println!(
                    "   {} trials/cell, master seed {:#x}\n",
                    n, race.master_seed
                )
            }
            Precision::TargetCi {
                half_width,
                relative,
                min_trials,
                max_trials,
            } => println!(
                "   adaptive: target ci95 half-width {}{}, {}..{} trials/cell, master seed {:#x}\n",
                half_width,
                if relative { " (relative)" } else { "" },
                min_trials,
                max_trials,
                race.master_seed
            ),
        }
    }

    let mut header = format!("{:<24} {:>6} {:>6}", "scenario", "m", "n");
    if race.ratios_to_lower_bound {
        header.push_str(&format!(" {:>8}", "LB"));
    }
    for spec in &specs {
        header.push_str(&format!(" {:>14}", truncate(&spec.to_string(), 14)));
    }
    println!("{header}");
    println!("{:-<width$}", "", width = header.len());

    let paired_specs: Vec<(PolicySpec, PolicySpec)> = race
        .paired
        .iter()
        .map(|(a, b)| {
            (
                PolicySpec::parse(a).unwrap_or_else(|e| panic!("bad paired spec {a:?}: {e}")),
                PolicySpec::parse(b).unwrap_or_else(|e| panic!("bad paired spec {b:?}: {e}")),
            )
        })
        .collect();

    let mut builder =
        ResultsBuilder::new(race.generated_by.clone()).record_wall_clocks(race.record_wall_clocks);
    let precision = race.effective_precision();

    for sc in &race.scenarios {
        builder.add_scenario(sc);
        let inst = sc.instantiate();
        // A failed bound is *surfaced*, not swallowed: the row and every
        // cell of the scenario say what went wrong (an earlier spelling
        // used `.ok()` here, so LP failures printed the same `—` as
        // "bounds not requested" and vanished from the document).
        let lb_result = race
            .ratios_to_lower_bound
            .then(|| lower_bound(&inst).map_err(|e| e.to_string()));
        let lb = lb_result.as_ref().and_then(|r| r.as_ref().ok()).copied();
        let lb_error = lb_result.as_ref().and_then(|r| r.as_ref().err()).cloned();

        let mut row = format!("{:<24} {:>6} {:>6}", truncate(&sc.id, 24), sc.m, sc.n);
        match &lb_result {
            Some(Ok(lb)) => row.push_str(&format!(" {:>8.2}", lb)),
            Some(Err(e)) => row.push_str(&format!(" {:>8}", truncate(&format!("LB! {e}"), 8))),
            None => {}
        }

        let evaluator = Evaluator::new(EvalConfig {
            trials: precision.max_trials(),
            // Scenario-specific stream (identity-mixed; see
            // `scenario_master_seed`) so adding a scenario never shifts
            // another's randomness and same-seed scenarios from
            // different families never share one. All policies of the
            // scenario share it — the CRN streams the paired
            // comparisons below rely on.
            master_seed: scenario_master_seed(race.master_seed, sc),
            threads: 0,
            exec: race.exec,
            ..EvalConfig::default()
        });

        for spec in &specs {
            let outcome = evaluate_cell(
                registry,
                &evaluator,
                sc,
                &inst,
                spec,
                precision,
                lb,
                lb_error.as_deref(),
                &mut builder,
            );
            match &outcome {
                CellOutcome::Ran { mean, ratio, .. } => match ratio {
                    Some(r) => row.push_str(&format!(" {:>13.2}x", r)),
                    None => row.push_str(&format!(" {:>14.2}", mean)),
                },
                CellOutcome::Skipped => row.push_str(&format!(" {:>14}", "—")),
                CellOutcome::Failed(_) => row.push_str(&format!(" {:>14}", "error")),
            }
        }
        println!("{row}");
        if let Some(e) = &lb_error {
            println!("    lower-bound error: {e}");
        }

        for (spec_a, spec_b) in &paired_specs {
            run_paired_cell(
                registry,
                &evaluator,
                sc,
                &inst,
                spec_a,
                spec_b,
                precision,
                &mut builder,
            );
        }
    }

    let doc = builder.finish();
    if let Some(path) = &race.json_path {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(parent);
        }
        let text = doc.to_pretty();
        match std::fs::write(path, &text) {
            Ok(()) => println!("\nresults written to {}", path.display()),
            Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
        }
    }
    doc
}

#[allow(clippy::too_many_arguments)]
fn evaluate_cell(
    registry: &PolicyRegistry,
    evaluator: &Evaluator,
    sc: &Scenario,
    inst: &std::sync::Arc<suu_core::SuuInstance>,
    spec: &PolicySpec,
    precision: Precision,
    lb: Option<f64>,
    lb_error: Option<&str>,
    builder: &mut ResultsBuilder,
) -> CellOutcome {
    match evaluator.run_adaptive_spec(registry, inst, spec, precision) {
        Ok(adaptive) => {
            let stats = adaptive.stats;
            let mean = stats.mean_makespan();
            let ratio = lb.map(|lb| mean / lb);
            let mut extra: Vec<(&str, Json)> = Vec::new();
            extra.push((
                "stop_reason",
                Json::Str(adaptive.stop_reason.as_str().into()),
            ));
            if let Some(lb) = lb {
                extra.push(("lower_bound", Json::Num(lb)));
            }
            if let Some(r) = ratio {
                extra.push(("ratio_to_lb", Json::Num(r)));
            }
            if let Some(e) = lb_error {
                extra.push(("lower_bound_error", Json::Str(e.to_string())));
            }
            builder.add_cell(&sc.id, &spec.to_string(), &stats, &extra);
            CellOutcome::Ran {
                mean,
                ratio,
                trials_used: stats.trials(),
            }
        }
        Err(e @ RegistryError::UnsupportedStructure { .. }) => {
            builder.add_failure(&sc.id, &spec.to_string(), "skipped", e.to_string());
            CellOutcome::Skipped
        }
        Err(e) => {
            let msg = e.to_string();
            builder.add_failure(&sc.id, &spec.to_string(), "error", msg.clone());
            CellOutcome::Failed(msg)
        }
    }
}

/// Run one paired CRN comparison and record it (skips silently on a
/// capability mismatch — the marginal cells already recorded why).
#[allow(clippy::too_many_arguments)]
fn run_paired_cell(
    registry: &PolicyRegistry,
    evaluator: &Evaluator,
    sc: &Scenario,
    inst: &std::sync::Arc<suu_core::SuuInstance>,
    spec_a: &PolicySpec,
    spec_b: &PolicySpec,
    precision: Precision,
    builder: &mut ResultsBuilder,
) {
    match evaluator.run_paired_spec(registry, inst, spec_a, spec_b, precision) {
        Ok(paired) => {
            println!(
                "    Δ {:<14} − {:<14} {:>10.2} ± {:<8.2} {} ({} pairs, {})",
                truncate(&spec_a.to_string(), 14),
                truncate(&spec_b.to_string(), 14),
                paired.delta_mean().unwrap_or(0.0),
                paired.delta_ci95().unwrap_or(f64::INFINITY),
                match paired.significant() {
                    Some(true) => "significant",
                    Some(false) => "indistinct",
                    None => "n/a",
                },
                paired.trials_used(),
                paired.stop_reason.as_str(),
            );
            builder.add_paired(&sc.id, &spec_a.to_string(), &spec_b.to_string(), &paired);
        }
        Err(RegistryError::UnsupportedStructure { .. }) => {}
        Err(e) => {
            builder.add_paired_failure(
                &sc.id,
                &spec_a.to_string(),
                &spec_b.to_string(),
                e.to_string(),
            );
        }
    }
}

fn truncate(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_string()
    } else {
        let head: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSuite;

    #[test]
    fn race_covers_scenarios_and_skips_by_capability() {
        let doc = run_race(Race {
            title: String::new(),
            generated_by: "runner-test".to_string(),
            scenarios: ScenarioSuite::smoke(3).scenarios,
            policies: vec![
                "gang-sequential".to_string(),
                "suu-i-sem".to_string(),
                "suu-c".to_string(),
            ],
            trials: 4,
            master_seed: 11,
            ..Race::default()
        });
        let cells = doc.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 12, "4 scenarios x 3 policies");
        // suu-i-sem must skip the chains, forest and layered scenarios;
        // suu-c (capability: chains) must skip forest and layered.
        let skipped: Vec<(&str, &str)> = cells
            .iter()
            .filter(|c| c.get("skipped").is_some())
            .map(|c| {
                (
                    c.get("policy").unwrap().as_str().unwrap(),
                    c.get("scenario").unwrap().as_str().unwrap(),
                )
            })
            .collect();
        assert_eq!(skipped.len(), 5, "{skipped:?}");
        assert_eq!(skipped.iter().filter(|(p, _)| *p == "suu-i-sem").count(), 3);
        assert!(skipped
            .iter()
            .any(|(p, s)| *p == "suu-c" && s.starts_with("forest")));
        assert!(skipped
            .iter()
            .any(|(p, s)| *p == "suu-c" && s.starts_with("layered")));
        // Every run cell carries statistics.
        for c in cells.iter().filter(|c| c.get("skipped").is_none()) {
            assert!(c.get("mean_makespan").unwrap().as_f64().unwrap() >= 1.0);
            assert_eq!(c.get("trials").unwrap().as_u64(), Some(4));
        }
    }

    #[test]
    fn scenario_master_seed_mixes_identity_not_just_seed() {
        // Regression: the old derivation `derive_seed(master, sc.seed,
        // 0xC311)` ignored scenario identity, so two scenarios from
        // different families built with the same `seed` constructor
        // parameter received identical randomness streams (correlated
        // cells). The old spelling collides by construction:
        let uniform = Scenario::uniform(3, 8, 0.2, 0.9, 7);
        let bimodal = Scenario::bimodal(3, 8, 0.5, 7);
        assert_eq!(uniform.seed, bimodal.seed);
        assert_eq!(
            suu_sim::derive_seed(0xBA5E, uniform.seed, 0xC311),
            suu_sim::derive_seed(0xBA5E, bimodal.seed, 0xC311),
            "old derivation collides on same-seed scenarios (the bug)"
        );
        // The fixed derivation must not.
        assert_ne!(
            scenario_master_seed(0xBA5E, &uniform),
            scenario_master_seed(0xBA5E, &bimodal),
            "identity-mixed derivation must separate same-seed scenarios"
        );
        // Still deterministic per scenario, and sensitive to the race
        // master seed.
        assert_eq!(
            scenario_master_seed(0xBA5E, &uniform),
            scenario_master_seed(0xBA5E, &Scenario::uniform(3, 8, 0.2, 0.9, 7)),
        );
        assert_ne!(
            scenario_master_seed(1, &uniform),
            scenario_master_seed(2, &uniform)
        );
    }

    #[test]
    fn adaptive_race_records_trials_and_stop_reasons() {
        use suu_sim::Precision;
        let doc = run_race(Race {
            generated_by: "runner-adaptive-test".to_string(),
            scenarios: vec![Scenario::uniform(3, 6, 0.3, 0.9, 21)],
            policies: vec!["gang-sequential".to_string(), "greedy-lr".to_string()],
            precision: Some(Precision::TargetCi {
                half_width: 0.25,
                relative: true, // 25% of the mean: reached almost at once
                min_trials: 4,
                max_trials: 64,
            }),
            paired: vec![("gang-sequential".to_string(), "greedy-lr".to_string())],
            master_seed: 77,
            record_wall_clocks: false,
            ..Race::default()
        });
        let cells = doc.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 2);
        for c in cells {
            let used = c.get("trials_used").unwrap().as_u64().unwrap();
            assert!((4..=64).contains(&used), "trials_used {used}");
            let reason = c.get("stop_reason").unwrap().as_str().unwrap();
            assert!(reason == "ci-reached" || reason == "max-trials", "{reason}");
            assert!(c.get("ci95").unwrap().as_f64().is_some());
            assert!(c.get("wall_clock_s").is_none(), "wall clocks disabled");
        }
        let paired = doc.get("paired").unwrap().as_array().unwrap();
        assert_eq!(paired.len(), 1);
        let p = &paired[0];
        assert_eq!(p.get("policy_a").unwrap().as_str(), Some("gang-sequential"));
        assert_eq!(p.get("policy_b").unwrap().as_str(), Some("greedy-lr"));
        assert!(p.get("delta_mean").unwrap().as_f64().is_some());
        assert!(p.get("delta_ci95").unwrap().as_f64().is_some());
        assert!(p.get("significant").unwrap().as_bool().is_some());

        // Determinism: same master seed ⇒ byte-identical document
        // (wall clocks disabled above).
        let rerun = run_race(Race {
            generated_by: "runner-adaptive-test".to_string(),
            scenarios: vec![Scenario::uniform(3, 6, 0.3, 0.9, 21)],
            policies: vec!["gang-sequential".to_string(), "greedy-lr".to_string()],
            precision: Some(Precision::TargetCi {
                half_width: 0.25,
                relative: true,
                min_trials: 4,
                max_trials: 64,
            }),
            paired: vec![("gang-sequential".to_string(), "greedy-lr".to_string())],
            master_seed: 77,
            record_wall_clocks: false,
            ..Race::default()
        });
        assert_eq!(doc.to_pretty(), rerun.to_pretty());
    }

    #[test]
    fn lower_bound_errors_surface_in_the_document() {
        // Regression for the `.ok()` spelling that swallowed bound
        // failures: a cell evaluated while the scenario's lower bound
        // errored must carry the error string, distinguishable from
        // "bounds not requested".
        let registry = suu_algos::standard_registry();
        let sc = Scenario::uniform(2, 4, 0.3, 0.9, 3);
        let inst = sc.instantiate();
        let evaluator = Evaluator::new(EvalConfig {
            trials: 4,
            master_seed: 1,
            threads: 1,
            ..EvalConfig::default()
        });
        let mut builder = ResultsBuilder::new("runner-lb-error-test");
        builder.add_scenario(&sc);
        let spec = PolicySpec::parse("gang-sequential").unwrap();
        let outcome = evaluate_cell(
            &registry,
            &evaluator,
            &sc,
            &inst,
            &spec,
            Precision::FixedTrials(4),
            None,
            Some("synthetic LP failure"),
            &mut builder,
        );
        assert!(matches!(outcome, CellOutcome::Ran { .. }));
        let doc = builder.finish();
        let cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
        assert_eq!(
            cell.get("lower_bound_error").unwrap().as_str(),
            Some("synthetic LP failure")
        );
        assert!(cell.get("lower_bound").is_none());
        assert!(cell.get("ratio_to_lb").is_none());
    }

    #[test]
    fn lower_bound_ratio_cells() {
        let doc = run_race(Race {
            generated_by: "runner-lb-test".to_string(),
            scenarios: vec![crate::scenario::Scenario::uniform(3, 6, 0.2, 0.9, 5)],
            policies: vec!["greedy-lr".to_string()],
            trials: 6,
            master_seed: 2,
            ratios_to_lower_bound: true,
            ..Race::default()
        });
        let cell = &doc.get("cells").unwrap().as_array().unwrap()[0];
        let lb = cell.get("lower_bound").unwrap().as_f64().unwrap();
        let ratio = cell.get("ratio_to_lb").unwrap().as_f64().unwrap();
        let mean = cell.get("mean_makespan").unwrap().as_f64().unwrap();
        assert!(lb > 0.0);
        assert!((ratio - mean / lb).abs() < 1e-12);
    }
}
