//! **F-OPT — approximation ratios against the exact optimum** on tiny
//! instances, where `E[T_OPT]` is computable by the MDP subset DP — and,
//! since the registry exposes the DP's argmax as the executable
//! `exact-opt` policy, the optimum appears as just another column.
//!
//! The reproducible claim: `SUU-I-SEM`'s measured mean stays within a
//! small constant of `exact-opt`'s (the paper proves
//! `O(log log min(m,n))`, ≤ 4-ish rounds at this scale), while the naive
//! baselines drift away.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin fig_opt_small
//! ```

use suu_bench::runner::{run_race, Race};
use suu_bench::scenario::Scenario;

fn main() {
    run_race(Race {
        title: "F-OPT: mean makespans incl. the exact optimum (tiny instances)".to_string(),
        generated_by: "fig_opt_small".to_string(),
        scenarios: [(2usize, 4usize), (2, 6), (3, 8), (3, 10), (4, 12)]
            .into_iter()
            .map(|(m, n)| Scenario::uniform(m, n, 0.25, 0.9, 5000 + n as u64))
            .collect(),
        policies: ["exact-opt", "suu-i-sem", "greedy-lr", "gang-sequential"]
            .map(String::from)
            .to_vec(),
        trials: 400,
        master_seed: 0x74,
        ratios_to_lower_bound: false,
        json_path: Some("target/results/fig_opt_small.json".into()),
        ..Race::default()
    });
    println!("\nexact-opt replays the DP's optimal actions; every other column");
    println!("is an approximation, so its mean must not beat exact-opt's by");
    println!("more than sampling noise.");
}
