//! **F-OPT — approximation ratios against the exact optimum** on tiny
//! instances, where `E[T_OPT]` is computable by the MDP subset DP.
//!
//! This grounds the LP-ratio experiments: on instances small enough to
//! solve exactly, the measured `E[T_alg]/E[T_OPT]` of `SUU-I-SEM` should
//! be a small constant (the paper proves `O(log log min(m,n))`, which is
//! ≤ 4-ish rounds at this scale).
//!
//! ```sh
//! cargo run --release -p suu-bench --bin fig_opt_small
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu_algos::baselines::{GangSequentialPolicy, LrGreedyPolicy};
use suu_algos::opt::{exact_opt, OptLimits};
use suu_algos::SemPolicy;
use suu_bench::{mean_makespan, print_header, Stopwatch};
use suu_core::{workload, Precedence};
use suu_sim::{run_trials, MonteCarloConfig};

fn main() {
    let watch = Stopwatch::start();
    println!("== F-OPT: measured E[T]/E[T_OPT], exact optimum by subset DP ==\n");
    println!("10 random instances per (n, m); 300 trials per policy per instance\n");
    print_header(&[
        ("n", 4),
        ("m", 4),
        ("SEM mean", 9),
        ("SEM max", 9),
        ("greedy", 9),
        ("gang", 9),
    ]);

    for &(n, m) in &[(4usize, 2usize), (5, 2), (6, 3), (7, 3)] {
        let mut sem_ratios = Vec::new();
        let mut greedy_ratios = Vec::new();
        let mut gang_ratios = Vec::new();
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(seed * 97 + n as u64);
            let inst = Arc::new(workload::uniform_unrelated(
                m,
                n,
                0.2,
                0.95,
                Precedence::Independent,
                &mut rng,
            ));
            let opt = exact_opt(&inst, OptLimits::default()).expect("tiny instance solvable");
            let mc = MonteCarloConfig {
                trials: 300,
                base_seed: seed,
                ..Default::default()
            };
            let sem = mean_makespan(&run_trials(
                &inst,
                || SemPolicy::build(inst.clone()).unwrap(),
                &mc,
            ));
            let greedy = mean_makespan(&run_trials(&inst, || LrGreedyPolicy::new(inst.clone()), &mc));
            let gang = mean_makespan(&run_trials(&inst, GangSequentialPolicy::new, &mc));
            sem_ratios.push(sem / opt);
            greedy_ratios.push(greedy / opt);
            gang_ratios.push(gang / opt);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().fold(0.0f64, |a, &b| a.max(b));
        println!(
            "{n:>4} {m:>4} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            mean(&sem_ratios),
            max(&sem_ratios),
            mean(&greedy_ratios),
            mean(&gang_ratios),
        );
    }

    println!("\nexpected: SEM's ratio is a small constant (its worst case is");
    println!("O(log log min(m,n)) ≈ 4 rounds at this scale). the greedy is");
    println!("fully adaptive and can be near 1 here — its *worst case* is what");
    println!("degrades with n (see table1_independent).");
    println!("[{:.1}s]", watch.secs());
}
