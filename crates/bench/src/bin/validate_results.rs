//! **validate_results** — the CI schema gate over emitted JSON
//! artifacts.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin validate_results -- FILE...
//! ```
//!
//! Dispatches on the document's `schema` field:
//!
//! * `suu-results/v2` — structural validation: required top-level arrays
//!   (`scenarios`, `policies`, `cells`, `paired`), and per run cell the
//!   adaptive-precision fields (`trials_used` ≥ 1, a known
//!   `stop_reason`, numeric `mean_makespan`/`ci95`); `skipped`/`error`
//!   cells are exempt. Paired entries need both policy names and either
//!   an `error` or the delta statistics. **Daemon-produced** documents
//!   (`generated_by: "suud"`) are held to the serving contract on top:
//!   every run cell must carry a well-formed `cell_key` (16 lowercase
//!   hex — the content address of its cached evaluation) and no cell
//!   may record `wall_clock_s` (bodies must replay byte-identically).
//! * `suu-bench/engine-events/v1` / `suu-bench/engine-batch/v1` — fails
//!   on any `outcomes_identical: false`; **tolerates but counts**
//!   `"speedup": null` cells (sub-millisecond wall clocks; each must
//!   carry a `speedup_note`).
//! * `suu-bench/engine-batch/v2` — everything v1 checks, plus the
//!   profile-guided rebuild's per-cell fields: a known `semantics`
//!   label, a `stationary` flag, a `timing_reps` object (min-of-k
//!   repeated timing), a `cache` object with integer
//!   hits/misses/evictions/entries counters, and — when present — a
//!   well-formed `profile` phase breakdown. With `--min-speedup X`,
//!   additionally fails if any **timed** v2 cell reports a speedup below
//!   `X` (null cells stay tolerated-and-counted) — the CI smoke perf
//!   sanity gate.
//! * `suu-results/sweep/v1` — the frontier-sweep gate: per-point
//!   internal consistency (the recorded `winner` is the lowest-mean
//!   policy entry, the `resolved` flag agrees with the recorded paired
//!   margin, `trials_total` adds up, every policy entry carries a
//!   well-formed `cell_key` and a trial count within the declared
//!   budget), the phase diagram partitions the points exactly (each
//!   point in its winner's region or in `open`, frontier edges only
//!   between points with differing winners), the `totals` accounting
//!   re-derives, and — the point of adaptivity — `trials_adaptive` does
//!   not exceed `trials_fixed_equivalent`. No cell may record
//!   `wall_clock_s` (sweep artifacts must replay byte-identically).
//! * `suu-serve/loadgen/v1` — the serving-benchmark gate: request
//!   accounting adds up, **zero failed requests and zero replay
//!   mismatches**, latency percentiles are non-negative and ordered
//!   (p50 ≤ p95 ≤ p99 ≤ max) for every class, and throughput is
//!   positive.
//! * `suu-serve/loadgen/v2` — the sharded-serving scaling gate: a
//!   positive `host_cores`, one entry per distinct shard count, and for
//!   every entry the v1 checks plus **zero router-vs-direct
//!   mismatches** (the scatter/gather merge stayed byte-identical to a
//!   single daemon), at least one identity probe, a tracked
//!   `rejected_429` counter, and an aggregated `suu-serve/stats/v1`
//!   fleet document whose per-shard breakdown matches the entry's
//!   shard count.
//!
//! Exits nonzero on the first violation, so it can gate CI directly.

use suu_core::json::{parse, Json};
use suu_core::schemas;

fn fail(msg: String) -> ! {
    eprintln!("validate_results: FAIL: {msg}");
    std::process::exit(1);
}

fn require_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> &'a str {
    obj.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail(format!("{ctx}: missing string '{key}'")))
}

fn require_arr<'a>(obj: &'a Json, key: &str, ctx: &str) -> &'a [Json] {
    obj.get(key)
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail(format!("{ctx}: missing array '{key}'")))
}

const STOP_REASONS: [&str; 3] = ["fixed-budget", "ci-reached", "max-trials"];

fn validate_results_v2(doc: &Json, path: &str) {
    let generated_by = require_str(doc, "generated_by", path);
    // The daemon's serving contract: content-addressed cells, no wall
    // clocks (replay determinism).
    let daemon = generated_by == "suud";
    require_arr(doc, "scenarios", path);
    require_arr(doc, "policies", path);
    let cells = require_arr(doc, "cells", path);
    let paired = require_arr(doc, "paired", path);

    let (mut run, mut unrun, mut addressed) = (0usize, 0usize, 0usize);
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("{path}: cells[{i}]");
        require_str(cell, "scenario", &ctx);
        require_str(cell, "policy", &ctx);
        if let Some(key) = cell.get("cell_key") {
            let key = key
                .as_str()
                .unwrap_or_else(|| fail(format!("{ctx}: 'cell_key' must be a string")));
            if !suu_core::is_fnv1a_hex(key) {
                fail(format!("{ctx}: malformed cell_key {key:?}"));
            }
            addressed += 1;
        }
        if daemon && cell.get("wall_clock_s").is_some() {
            fail(format!(
                "{ctx}: daemon cell records wall_clock_s (breaks replay determinism)"
            ));
        }
        if cell.get("skipped").is_some() || cell.get("error").is_some() {
            unrun += 1;
            continue;
        }
        if daemon && cell.get("cell_key").is_none() {
            fail(format!("{ctx}: daemon run cell without a cell_key"));
        }
        run += 1;
        let used = cell
            .get("trials_used")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| fail(format!("{ctx}: missing integer 'trials_used'")));
        if used == 0 {
            fail(format!("{ctx}: run cell with zero trials_used"));
        }
        let reason = require_str(cell, "stop_reason", &ctx);
        if !STOP_REASONS.contains(&reason) {
            fail(format!("{ctx}: unknown stop_reason {reason:?}"));
        }
        for key in ["mean_makespan", "ci95", "completion_rate"] {
            if cell.get(key).and_then(Json::as_f64).is_none() {
                fail(format!("{ctx}: missing numeric '{key}'"));
            }
        }
    }
    for (i, pair) in paired.iter().enumerate() {
        let ctx = format!("{path}: paired[{i}]");
        require_str(pair, "scenario", &ctx);
        require_str(pair, "policy_a", &ctx);
        require_str(pair, "policy_b", &ctx);
        if pair.get("error").is_some() {
            continue;
        }
        let reason = require_str(pair, "stop_reason", &ctx);
        if !STOP_REASONS.contains(&reason) {
            fail(format!("{ctx}: unknown stop_reason {reason:?}"));
        }
        for key in ["delta_mean", "delta_ci95"] {
            if pair.get(key).and_then(Json::as_f64).is_none() {
                fail(format!("{ctx}: missing numeric '{key}'"));
            }
        }
        if pair.get("significant").and_then(Json::as_bool).is_none() {
            fail(format!("{ctx}: missing bool 'significant'"));
        }
    }
    println!(
        "OK {path}: suu-results/v2{}, {} cells ({run} run, {unrun} skipped/error, \
         {addressed} content-addressed), {} paired",
        if daemon { " (daemon)" } else { "" },
        cells.len(),
        paired.len()
    );
}

/// Shared engine-cell core: `outcomes_identical` must be true and
/// `speedup` a number or an explained null. Returns `(speedup,
/// null_counted)` for the caller's extra checks.
fn check_engine_cell(cell: &Json, ctx: &str) -> (Option<f64>, bool) {
    match cell.get("outcomes_identical").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => fail(format!("{ctx}: outcomes_identical is false")),
        None => fail(format!("{ctx}: missing bool 'outcomes_identical'")),
    }
    match cell.get("speedup") {
        Some(Json::Null) => {
            // Tolerated (unmeasurably fast cell), but it must say why
            // and it is counted by the caller.
            require_str(cell, "speedup_note", ctx);
            (None, true)
        }
        Some(v) if v.as_f64().is_some() => (v.as_f64(), false),
        _ => fail(format!("{ctx}: 'speedup' must be a number or null")),
    }
}

/// Returns the number of tolerated null-speedup cells.
fn validate_engine(doc: &Json, path: &str) -> usize {
    let cells = require_arr(doc, "cells", path);
    let mut null_speedups = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("{path}: cells[{i}]");
        let (_, nulled) = check_engine_cell(cell, &ctx);
        null_speedups += nulled as usize;
    }
    println!(
        "OK {path}: {} engine cells, {null_speedups} null-speedup cell(s) tolerated",
        cells.len()
    );
    null_speedups
}

const SEMANTICS_LABELS: [&str; 2] = ["suu-star", "suu"];

/// The `suu-bench/engine-batch/v2` gate: v1's checks plus the
/// profile-guided rebuild's fields, and an optional perf sanity floor on
/// every *timed* cell's speedup.
fn validate_engine_batch_v2(doc: &Json, path: &str, min_speedup: Option<f64>) -> usize {
    let cells = require_arr(doc, "cells", path);
    let mut null_speedups = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("{path}: cells[{i}]");
        require_str(cell, "scenario", &ctx);
        require_str(cell, "policy", &ctx);
        let sem = require_str(cell, "semantics", &ctx);
        if !SEMANTICS_LABELS.contains(&sem) {
            fail(format!("{ctx}: unknown semantics {sem:?}"));
        }
        if cell.get("stationary").and_then(Json::as_bool).is_none() {
            fail(format!("{ctx}: missing bool 'stationary'"));
        }
        let reps = cell
            .get("timing_reps")
            .unwrap_or_else(|| fail(format!("{ctx}: missing object 'timing_reps'")));
        for key in ["per_trial", "batched"] {
            match reps.get(key).and_then(Json::as_u64) {
                Some(r) if r >= 1 => {}
                _ => fail(format!("{ctx}: timing_reps.{key} must be an integer >= 1")),
            }
        }
        let cache = cell
            .get("cache")
            .unwrap_or_else(|| fail(format!("{ctx}: missing object 'cache'")));
        for key in ["hits", "misses", "evictions", "entries"] {
            if cache.get(key).and_then(Json::as_u64).is_none() {
                fail(format!("{ctx}: cache.{key} must be a non-negative integer"));
            }
        }
        if let Some(profile) = cell.get("profile") {
            require_str(profile, "mode", &ctx);
            let phases = require_arr(profile, "phases", &ctx);
            for (p, phase) in phases.iter().enumerate() {
                let pctx = format!("{ctx}: profile.phases[{p}]");
                require_str(phase, "phase", &pctx);
                for key in ["wall_clock_s", "share"] {
                    if phase.get(key).and_then(Json::as_f64).is_none() {
                        fail(format!("{pctx}: missing numeric '{key}'"));
                    }
                }
                if phase.get("enters").and_then(Json::as_u64).is_none() {
                    fail(format!("{pctx}: missing integer 'enters'"));
                }
            }
        }
        let (speedup, nulled) = check_engine_cell(cell, &ctx);
        null_speedups += nulled as usize;
        if let (Some(s), Some(floor)) = (speedup, min_speedup) {
            if s < floor {
                fail(format!(
                    // suu-lint: allow(float-format, "human gate-failure message; never written into a schema document")
                    "{ctx}: timed speedup {s:.3} below the --min-speedup floor {floor}"
                ));
            }
        }
    }
    println!(
        "OK {path}: {} engine-batch v2 cells{}, {null_speedups} null-speedup cell(s) tolerated",
        cells.len(),
        match min_speedup {
            Some(floor) => format!(" (all timed cells >= {floor}x)"),
            None => String::new(),
        }
    );
    null_speedups
}

/// The `suu-results/sweep/v1` gate: a frontier-sweep artifact is only
/// credible when every per-point verdict re-derives from its own
/// recorded evidence and the global accounting adds up.
fn validate_sweep_v1(doc: &Json, path: &str) {
    if require_str(doc, "generated_by", path) != "suu-sweep" {
        fail(format!(
            "{path}: sweep artifacts must be generated_by suu-sweep"
        ));
    }
    require_str(doc, "name", path);
    let policies: Vec<&str> = require_arr(doc, "policies", path)
        .iter()
        .map(|p| {
            p.as_str()
                .unwrap_or_else(|| fail(format!("{path}: non-string policy")))
        })
        .collect();
    if policies.len() < 2 {
        fail(format!("{path}: a sweep needs at least two policies"));
    }
    let budget = doc
        .get("budget")
        .unwrap_or_else(|| fail(format!("{path}: missing object 'budget'")));
    let budget_initial = require_u64_field(budget, "initial", path);
    let budget_max = require_u64_field(budget, "max", path);
    if budget_initial == 0 || budget_initial > budget_max {
        fail(format!(
            "{path}: budget {budget_initial}..{budget_max} is not a ladder"
        ));
    }

    let cells = require_arr(doc, "cells", path);
    if cells.is_empty() {
        fail(format!("{path}: 'cells' must not be empty"));
    }
    let mut point_winner: Vec<(&str, &str, bool)> = Vec::with_capacity(cells.len());
    let (mut sum_trials, mut max_trials, mut resolved_count) = (0u64, 0u64, 0u64);
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("{path}: cells[{i}]");
        let point = require_str(cell, "point", &ctx);
        require_str(cell, "scenario_id", &ctx);
        if cell.get("params").is_none() {
            fail(format!("{ctx}: missing 'params'"));
        }
        let winner = require_str(cell, "winner", &ctx);
        if !policies.contains(&winner) {
            fail(format!("{ctx}: winner {winner:?} is not a sweep policy"));
        }
        let resolved = cell
            .get("resolved")
            .and_then(Json::as_bool)
            .unwrap_or_else(|| fail(format!("{ctx}: missing bool 'resolved'")));
        let margin = |key: &str| -> f64 {
            cell.get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| fail(format!("{ctx}: missing numeric '{key}'")))
        };
        let (margin_mean, margin_ci95) = (margin("margin_mean"), margin("margin_ci95"));
        if resolved != (margin_mean.abs() > margin_ci95) {
            fail(format!(
                "{ctx}: 'resolved' disagrees with its own margin \
                 (|{margin_mean}| vs ci95 {margin_ci95})"
            ));
        }
        let entries = require_arr(cell, "policies", &ctx);
        if entries.len() != policies.len() {
            fail(format!(
                "{ctx}: {} policy entries for {} sweep policies",
                entries.len(),
                policies.len()
            ));
        }
        let (mut cell_sum, mut best) = (0u64, None::<(&str, f64)>);
        for (j, entry) in entries.iter().enumerate() {
            let ectx = format!("{ctx}: policies[{j}]");
            let policy = require_str(entry, "policy", &ectx);
            if policies.get(j).copied() != Some(policy) {
                fail(format!(
                    "{ectx}: entry {policy:?} out of declared policy order"
                ));
            }
            let mean = entry
                .get("mean_makespan")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| fail(format!("{ectx}: missing numeric 'mean_makespan'")));
            if entry.get("ci95").and_then(Json::as_f64).is_none() {
                fail(format!("{ectx}: missing numeric 'ci95'"));
            }
            let used = require_u64_field(entry, "trials_used", &ectx);
            if used < budget_initial || used > budget_max {
                fail(format!(
                    "{ectx}: trials_used {used} outside the {budget_initial}..{budget_max} budget"
                ));
            }
            let key = require_str(entry, "cell_key", &ectx);
            if !suu_core::is_fnv1a_hex(key) {
                fail(format!("{ectx}: malformed cell_key {key:?}"));
            }
            if entry.get("wall_clock_s").is_some() {
                fail(format!(
                    "{ectx}: records wall_clock_s (breaks replay determinism)"
                ));
            }
            cell_sum += used;
            if best.is_none_or(|(_, b)| mean < b) {
                best = Some((policy, mean));
            }
        }
        if best.map(|(p, _)| p) != Some(winner) {
            fail(format!(
                "{ctx}: winner {winner:?} is not the lowest-mean policy entry"
            ));
        }
        if require_u64_field(cell, "trials_total", &ctx) != cell_sum {
            fail(format!("{ctx}: trials_total disagrees with its entries"));
        }
        sum_trials += cell_sum;
        max_trials = max_trials.max(
            entries
                .iter()
                .map(|e| e.get("trials_used").and_then(Json::as_u64).unwrap_or(0))
                .max()
                .unwrap_or(0),
        );
        resolved_count += u64::from(resolved);
        point_winner.push((point, winner, resolved));
    }

    // The phase diagram must partition the points: every resolved point
    // in exactly its winner's region, every open point in 'open'.
    let diagram = doc
        .get("phase_diagram")
        .unwrap_or_else(|| fail(format!("{path}: missing object 'phase_diagram'")));
    let mut seen = 0usize;
    for (r, region) in require_arr(diagram, "regions", path).iter().enumerate() {
        let ctx = format!("{path}: phase_diagram.regions[{r}]");
        let winner = require_str(region, "winner", &ctx);
        for pt in require_arr(region, "points", &ctx) {
            let id = pt
                .as_str()
                .unwrap_or_else(|| fail(format!("{ctx}: non-string point")));
            match point_winner.iter().find(|(p, _, _)| *p == id) {
                Some((_, w, true)) if *w == winner => seen += 1,
                Some((_, _, true)) => fail(format!("{ctx}: {id} listed under the wrong winner")),
                Some((_, _, false)) => fail(format!("{ctx}: open point {id} inside a region")),
                None => fail(format!("{ctx}: unknown point {id}")),
            }
        }
    }
    for pt in require_arr(diagram, "open", path) {
        let id = pt
            .as_str()
            .unwrap_or_else(|| fail(format!("{path}: non-string open point")));
        match point_winner.iter().find(|(p, _, _)| *p == id) {
            Some((_, _, false)) => seen += 1,
            Some((_, _, true)) => fail(format!("{path}: resolved point {id} listed as open")),
            None => fail(format!("{path}: unknown open point {id}")),
        }
    }
    if seen != point_winner.len() {
        fail(format!(
            "{path}: phase diagram covers {seen} of {} points",
            point_winner.len()
        ));
    }
    let frontier = require_arr(diagram, "frontier", path);
    for (e, edge) in frontier.iter().enumerate() {
        let ctx = format!("{path}: phase_diagram.frontier[{e}]");
        for (end, claimed) in [("a", "winner_a"), ("b", "winner_b")] {
            let id = require_str(edge, end, &ctx);
            let claimed = require_str(edge, claimed, &ctx);
            match point_winner.iter().find(|(p, _, _)| *p == id) {
                Some((_, w, true)) if *w == claimed => {}
                Some(_) => fail(format!("{ctx}: {id} does not resolve to {claimed:?}")),
                None => fail(format!("{ctx}: unknown point {id}")),
            }
        }
        if require_str(edge, "winner_a", &ctx) == require_str(edge, "winner_b", &ctx) {
            fail(format!("{ctx}: frontier edge between same-winner points"));
        }
    }

    // Global accounting re-derives, and adaptivity never overspends the
    // fixed-budget equivalent.
    let totals = doc
        .get("totals")
        .unwrap_or_else(|| fail(format!("{path}: missing object 'totals'")));
    let expect = |key: &str, want: u64| {
        let got = require_u64_field(totals, key, path);
        if got != want {
            fail(format!("{path}: totals.{key} is {got}, re-derived {want}"));
        }
    };
    expect("points", point_winner.len() as u64);
    expect("resolved", resolved_count);
    expect("open", point_winner.len() as u64 - resolved_count);
    expect("trials_adaptive", sum_trials);
    expect("max_trials_per_cell", max_trials);
    expect(
        "trials_fixed_equivalent",
        point_winner.len() as u64 * policies.len() as u64 * max_trials,
    );
    if sum_trials > point_winner.len() as u64 * policies.len() as u64 * max_trials {
        fail(format!(
            "{path}: adaptive sweep spent more than its fixed-budget equivalent"
        ));
    }
    println!(
        "OK {path}: suu-results/sweep/v1, {} points ({resolved_count} resolved, \
         {} open, {} frontier edge(s)), trials {sum_trials} adaptive vs {} fixed-equivalent",
        point_winner.len(),
        point_winner.len() as u64 - resolved_count,
        frontier.len(),
        point_winner.len() as u64 * policies.len() as u64 * max_trials
    );
}

fn require_u64_field(obj: &Json, key: &str, ctx: &str) -> u64 {
    obj.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| fail(format!("{ctx}: missing non-negative integer '{key}'")))
}

/// The shared latency-summary check: every class present, percentiles
/// non-negative, and ordered (p50 ≤ p95 ≤ p99 ≤ max) unless the class
/// is legitimately empty.
fn check_latency_block(holder: &Json, classes: &[&str], ctx: &str) {
    let latency = holder
        .get("latency")
        .unwrap_or_else(|| fail(format!("{ctx}: missing object 'latency'")));
    for class in classes {
        let cctx = format!("{ctx}: latency.{class}");
        let summary = latency
            .get(class)
            .unwrap_or_else(|| fail(format!("{cctx}: missing")));
        let count = require_u64_field(summary, "count", &cctx);
        let pct = |key: &str| -> f64 {
            match summary.get(key).and_then(Json::as_f64) {
                Some(v) if v >= 0.0 => v,
                _ => fail(format!("{cctx}: '{key}' must be a non-negative number")),
            }
        };
        let (p50, p95, p99, max) = (pct("p50_ms"), pct("p95_ms"), pct("p99_ms"), pct("max_ms"));
        if count > 0 && !(p50 <= p95 && p95 <= p99 && p99 <= max) {
            fail(format!(
                "{cctx}: percentiles out of order (p50 {p50}, p95 {p95}, p99 {p99}, max {max})"
            ));
        }
    }
}

/// The `suu-serve/loadgen/v1` gate: a serving-benchmark document is
/// only credible with zero failures, zero replay mismatches, and
/// internally consistent latency summaries.
fn validate_loadgen_v1(doc: &Json, path: &str) {
    let mode = require_str(doc, "mode", path);
    if !["full", "smoke"].contains(&mode) {
        fail(format!("{path}: unknown loadgen mode {mode:?}"));
    }
    let require_u64 = |obj: &Json, key: &str, ctx: &str| -> u64 {
        obj.get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| fail(format!("{ctx}: missing non-negative integer '{key}'")))
    };
    let requests = doc
        .get("requests")
        .unwrap_or_else(|| fail(format!("{path}: missing object 'requests'")));
    let total = require_u64(requests, "total", path);
    let classed: u64 = ["primed", "hit", "miss", "extend", "storm"]
        .iter()
        .map(|k| require_u64(requests, k, path))
        .sum();
    if total == 0 || total != classed {
        fail(format!(
            "{path}: request accounting broken (total {total}, classes sum {classed})"
        ));
    }
    for key in ["failed", "replay_mismatches"] {
        let n = require_u64(doc, key, path);
        if n != 0 {
            fail(format!("{path}: {n} {key} — a clean run is required"));
        }
    }
    match doc.get("throughput_rps").and_then(Json::as_f64) {
        Some(rps) if rps > 0.0 => {}
        _ => fail(format!("{path}: 'throughput_rps' must be positive")),
    }
    // An empty class (e.g. a smoke run that rolled no extends) is
    // legitimately all-zero; a non-empty one must be ordered.
    check_latency_block(doc, &["all", "hit", "miss", "extend", "storm"], path);
    println!("OK {path}: suu-serve/loadgen/v1 ({mode}), {total} requests, 0 failed, 0 mismatches");
}

/// The `suu-serve/loadgen/v2` gate: per-shard-count scaling entries,
/// each held to the v1 bar *plus* the sharding contract — the merged
/// responses stayed byte-identical to a single daemon's.
fn validate_loadgen_v2(doc: &Json, path: &str) {
    let mode = require_str(doc, "mode", path);
    if !["full", "smoke"].contains(&mode) {
        fail(format!("{path}: unknown loadgen mode {mode:?}"));
    }
    let host_cores = require_u64_field(doc, "host_cores", path);
    if host_cores == 0 {
        fail(format!("{path}: 'host_cores' must be positive"));
    }
    let entries = require_arr(doc, "entries", path);
    if entries.is_empty() {
        fail(format!("{path}: 'entries' must not be empty"));
    }
    let mut shard_counts: Vec<u64> = Vec::with_capacity(entries.len());
    let mut total_requests = 0u64;
    for (i, entry) in entries.iter().enumerate() {
        let ctx = format!("{path}: entries[{i}]");
        let shards = require_u64_field(entry, "shards", &ctx);
        if shards == 0 {
            fail(format!("{ctx}: 'shards' must be positive"));
        }
        if shard_counts.contains(&shards) {
            fail(format!("{ctx}: duplicate entry for {shards} shard(s)"));
        }
        shard_counts.push(shards);
        let requests = entry
            .get("requests")
            .unwrap_or_else(|| fail(format!("{ctx}: missing object 'requests'")));
        let total = require_u64_field(requests, "total", &ctx);
        let classed: u64 = ["primed", "hit", "miss", "extend", "storm", "identity"]
            .iter()
            .map(|k| require_u64_field(requests, k, &ctx))
            .sum();
        if total == 0 || total != classed {
            fail(format!(
                "{ctx}: request accounting broken (total {total}, classes sum {classed})"
            ));
        }
        if require_u64_field(requests, "identity", &ctx) == 0 {
            fail(format!(
                "{ctx}: no identity probes — the run never compared router vs direct"
            ));
        }
        total_requests += total;
        for key in ["failed", "replay_mismatches", "router_vs_direct_mismatches"] {
            let n = require_u64_field(entry, key, &ctx);
            if n != 0 {
                fail(format!("{ctx}: {n} {key} — a clean run is required"));
            }
        }
        // Load shedding is legitimate under saturation, but must be
        // accounted for, not silently swallowed.
        require_u64_field(entry, "rejected_429", &ctx);
        match entry.get("throughput_rps").and_then(Json::as_f64) {
            Some(rps) if rps > 0.0 => {}
            _ => fail(format!("{ctx}: 'throughput_rps' must be positive")),
        }
        check_latency_block(entry, &["all", "hit", "miss", "extend", "storm"], &ctx);
        let stats = entry
            .get("stats")
            .unwrap_or_else(|| fail(format!("{ctx}: missing object 'stats'")));
        let schema = require_str(stats, "schema", &ctx);
        if schema != schemas::SERVE_STATS_V1 {
            fail(format!("{ctx}: aggregated stats schema {schema:?}"));
        }
        let breakdown = require_arr(stats, "shards", &ctx);
        if breakdown.len() as u64 != shards {
            fail(format!(
                "{ctx}: stats.shards has {} entries for a {shards}-shard fleet",
                breakdown.len()
            ));
        }
    }
    println!(
        "OK {path}: suu-serve/loadgen/v2 ({mode}, {host_cores} core(s)), \
         shard counts {shard_counts:?}, {total_requests} requests, all clean"
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut min_speedup: Option<f64> = None;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        if a == "--min-speedup" {
            let v = it
                .next()
                .unwrap_or_else(|| fail("--min-speedup requires a value".to_string()));
            min_speedup = Some(
                v.parse()
                    .unwrap_or_else(|_| fail(format!("--min-speedup: not a number: {v:?}"))),
            );
        } else if let Some(v) = a.strip_prefix("--min-speedup=") {
            min_speedup = Some(
                v.parse()
                    .unwrap_or_else(|_| fail(format!("--min-speedup: not a number: {v:?}"))),
            );
        } else {
            args.push(a.clone());
        }
    }
    if args.is_empty() {
        fail("usage: validate_results [--min-speedup X] FILE...".to_string());
    }
    let mut tolerated = 0usize;
    for path in &args {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        let doc = parse(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        match doc.get("schema").and_then(Json::as_str) {
            Some(schemas::RESULTS_V2) => validate_results_v2(&doc, path),
            Some(schemas::RESULTS_SWEEP_V1) => validate_sweep_v1(&doc, path),
            Some(schemas::BENCH_ENGINE_BATCH_V2) => {
                tolerated += validate_engine_batch_v2(&doc, path, min_speedup);
            }
            Some(s) if s.starts_with("suu-bench/engine-") => {
                tolerated += validate_engine(&doc, path);
            }
            Some(schemas::SERVE_LOADGEN_V1) => validate_loadgen_v1(&doc, path),
            Some(schemas::SERVE_LOADGEN_V2) => validate_loadgen_v2(&doc, path),
            other => fail(format!("{path}: unsupported schema {other:?}")),
        }
    }
    println!(
        "all {} artifact(s) valid ({tolerated} null-speedup cell(s) across engine docs)",
        args.len()
    );
}
