//! **validate_results** — the CI schema gate over emitted JSON
//! artifacts.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin validate_results -- FILE...
//! ```
//!
//! Dispatches on the document's `schema` field:
//!
//! * `suu-results/v2` — structural validation: required top-level arrays
//!   (`scenarios`, `policies`, `cells`, `paired`), and per run cell the
//!   adaptive-precision fields (`trials_used` ≥ 1, a known
//!   `stop_reason`, numeric `mean_makespan`/`ci95`); `skipped`/`error`
//!   cells are exempt. Paired entries need both policy names and either
//!   an `error` or the delta statistics. **Daemon-produced** documents
//!   (`generated_by: "suud"`) are held to the serving contract on top:
//!   every run cell must carry a well-formed `cell_key` (16 lowercase
//!   hex — the content address of its cached evaluation) and no cell
//!   may record `wall_clock_s` (bodies must replay byte-identically).
//! * `suu-bench/engine-events/v1` / `suu-bench/engine-batch/v1` — fails
//!   on any `outcomes_identical: false`; **tolerates but counts**
//!   `"speedup": null` cells (sub-millisecond wall clocks; each must
//!   carry a `speedup_note`).
//!
//! Exits nonzero on the first violation, so it can gate CI directly.

use suu_core::json::{parse, Json};

fn fail(msg: String) -> ! {
    eprintln!("validate_results: FAIL: {msg}");
    std::process::exit(1);
}

fn require_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> &'a str {
    obj.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail(format!("{ctx}: missing string '{key}'")))
}

fn require_arr<'a>(obj: &'a Json, key: &str, ctx: &str) -> &'a [Json] {
    obj.get(key)
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail(format!("{ctx}: missing array '{key}'")))
}

const STOP_REASONS: [&str; 3] = ["fixed-budget", "ci-reached", "max-trials"];

fn validate_results_v2(doc: &Json, path: &str) {
    let generated_by = require_str(doc, "generated_by", path);
    // The daemon's serving contract: content-addressed cells, no wall
    // clocks (replay determinism).
    let daemon = generated_by == "suud";
    require_arr(doc, "scenarios", path);
    require_arr(doc, "policies", path);
    let cells = require_arr(doc, "cells", path);
    let paired = require_arr(doc, "paired", path);

    let (mut run, mut unrun, mut addressed) = (0usize, 0usize, 0usize);
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("{path}: cells[{i}]");
        require_str(cell, "scenario", &ctx);
        require_str(cell, "policy", &ctx);
        if let Some(key) = cell.get("cell_key") {
            let key = key
                .as_str()
                .unwrap_or_else(|| fail(format!("{ctx}: 'cell_key' must be a string")));
            if !suu_core::is_fnv1a_hex(key) {
                fail(format!("{ctx}: malformed cell_key {key:?}"));
            }
            addressed += 1;
        }
        if daemon && cell.get("wall_clock_s").is_some() {
            fail(format!(
                "{ctx}: daemon cell records wall_clock_s (breaks replay determinism)"
            ));
        }
        if cell.get("skipped").is_some() || cell.get("error").is_some() {
            unrun += 1;
            continue;
        }
        if daemon && cell.get("cell_key").is_none() {
            fail(format!("{ctx}: daemon run cell without a cell_key"));
        }
        run += 1;
        let used = cell
            .get("trials_used")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| fail(format!("{ctx}: missing integer 'trials_used'")));
        if used == 0 {
            fail(format!("{ctx}: run cell with zero trials_used"));
        }
        let reason = require_str(cell, "stop_reason", &ctx);
        if !STOP_REASONS.contains(&reason) {
            fail(format!("{ctx}: unknown stop_reason {reason:?}"));
        }
        for key in ["mean_makespan", "ci95", "completion_rate"] {
            if cell.get(key).and_then(Json::as_f64).is_none() {
                fail(format!("{ctx}: missing numeric '{key}'"));
            }
        }
    }
    for (i, pair) in paired.iter().enumerate() {
        let ctx = format!("{path}: paired[{i}]");
        require_str(pair, "scenario", &ctx);
        require_str(pair, "policy_a", &ctx);
        require_str(pair, "policy_b", &ctx);
        if pair.get("error").is_some() {
            continue;
        }
        let reason = require_str(pair, "stop_reason", &ctx);
        if !STOP_REASONS.contains(&reason) {
            fail(format!("{ctx}: unknown stop_reason {reason:?}"));
        }
        for key in ["delta_mean", "delta_ci95"] {
            if pair.get(key).and_then(Json::as_f64).is_none() {
                fail(format!("{ctx}: missing numeric '{key}'"));
            }
        }
        if pair.get("significant").and_then(Json::as_bool).is_none() {
            fail(format!("{ctx}: missing bool 'significant'"));
        }
    }
    println!(
        "OK {path}: suu-results/v2{}, {} cells ({run} run, {unrun} skipped/error, \
         {addressed} content-addressed), {} paired",
        if daemon { " (daemon)" } else { "" },
        cells.len(),
        paired.len()
    );
}

/// Returns the number of tolerated null-speedup cells.
fn validate_engine(doc: &Json, path: &str) -> usize {
    let cells = require_arr(doc, "cells", path);
    let mut null_speedups = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("{path}: cells[{i}]");
        match cell.get("outcomes_identical").and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => fail(format!("{ctx}: outcomes_identical is false")),
            None => fail(format!("{ctx}: missing bool 'outcomes_identical'")),
        }
        match cell.get("speedup") {
            Some(Json::Null) => {
                // Tolerated (sub-millisecond cell), but it must say why
                // and it is counted below.
                require_str(cell, "speedup_note", &ctx);
                null_speedups += 1;
            }
            Some(v) if v.as_f64().is_some() => {}
            _ => fail(format!("{ctx}: 'speedup' must be a number or null")),
        }
    }
    println!(
        "OK {path}: {} engine cells, {null_speedups} null-speedup cell(s) tolerated",
        cells.len()
    );
    null_speedups
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        fail("usage: validate_results FILE...".to_string());
    }
    let mut tolerated = 0usize;
    for path in &args {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        let doc = parse(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        match doc.get("schema").and_then(Json::as_str) {
            Some("suu-results/v2") => validate_results_v2(&doc, path),
            Some(s) if s.starts_with("suu-bench/engine-") => {
                tolerated += validate_engine(&doc, path);
            }
            other => fail(format!("{path}: unsupported schema {other:?}")),
        }
    }
    println!(
        "all {} artifact(s) valid ({tolerated} null-speedup cell(s) across engine docs)",
        args.len()
    );
}
