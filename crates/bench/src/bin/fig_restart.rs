//! **F-RESTART — Appendix C "other results"**: the restart variant
//! (`R|restart, p_j~stoch|E[Cmax]`) vs the preemptive `STC-I`.
//!
//! `RESTART-I` swaps each round's Lawler–Labetoulle preemptive timetable
//! for a Lenstra–Shmoys–Tardos `R||Cmax` assignment. Restart semantics
//! discard cross-round progress, so its ratio should sit above `STC-I`'s
//! but remain a flat small constant (the paper claims the identical
//! asymptotic bound).
//!
//! ```sh
//! cargo run --release -p suu-bench --bin fig_restart
//! ```

use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};
use suu_bench::{print_header, Stopwatch};
use suu_stoch::{solve_ll, RestartI, StcI, StochInstance};

fn random_instance(seed: u64, m: usize, n: usize) -> StochInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lambda: Vec<f64> = (0..n).map(|_| rng.random_range(0.25..4.0)).collect();
    let v: Vec<f64> = (0..m * n).map(|_| rng.random_range(0.3..3.0)).collect();
    StochInstance::new(m, n, lambda, v).expect("valid instance")
}

fn main() {
    let watch = Stopwatch::start();
    println!("== F-RESTART: RESTART-I vs STC-I vs clairvoyant LL bound ==\n");
    println!("60 trials/point; ratios vs the preemptive clairvoyant optimum\n");
    print_header(&[
        ("n", 5),
        ("m", 4),
        ("STC-I", 8),
        ("RESTART-I", 10),
        ("penalty", 8),
    ]);

    for &(n, m) in &[(8usize, 3usize), (16, 4), (32, 8)] {
        let inst = random_instance(8500 + n as u64, m, n);
        let stc = StcI::new(&inst);
        let restart = RestartI::new(&inst);
        let trials = 60u64;
        let (mut r_stc, mut r_restart) = (0.0f64, 0.0f64);
        for seed in 0..trials {
            // Same hidden lengths for both schedulers: identical seeds.
            let out_p = stc.run(&inst, &mut StdRng::seed_from_u64(seed)).unwrap();
            let out_r = restart
                .run(&inst, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            // Clairvoyant LB from the same draws (recompute).
            let mut rng = StdRng::seed_from_u64(seed);
            let p: Vec<f64> = (0..n)
                .map(|j| {
                    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                    -u.ln() / inst.lambda(j)
                })
                .collect();
            let jobs: Vec<u32> = (0..n as u32).collect();
            let lb = solve_ll(&inst, &jobs, &p).unwrap().makespan.max(1e-12);
            r_stc += out_p.makespan / lb;
            r_restart += out_r.makespan / lb;
        }
        let t = trials as f64;
        println!(
            "{n:>5} {m:>4} {:>8.2} {:>10.2} {:>8.2}",
            r_stc / t,
            r_restart / t,
            (r_restart / t) / (r_stc / t)
        );
    }

    println!("\nexpected: RESTART-I pays a constant penalty over STC-I (lost");
    println!("progress + nonpreemptive packing) but stays flat in n — the");
    println!("paper's 'virtually identical algorithm' claim.");
    println!("[{:.1}s]", watch.secs());
}
