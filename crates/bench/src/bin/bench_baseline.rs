//! **bench_baseline** — the perf-trajectory anchor: runs the standard
//! six-family [`suu_bench::scenario::ScenarioSuite`] across every
//! registry policy that fits each scenario, measures a parallel-vs-serial
//! evaluator speedup on a 1000-trial workload, and writes the whole thing
//! as `BENCH_baseline.json` (schema `suu-results/v1`, with an extra
//! `"evaluator"` block).
//!
//! Later scaling PRs re-run this binary and diff the JSON: makespan means
//! are quality regressions, `wall_clock_s` per cell is the perf
//! trajectory.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin bench_baseline [out.json]
//! ```

use suu_bench::runner::{run_race_with, Race};
use suu_bench::scenario::{Scenario, ScenarioSuite};
use suu_bench::Stopwatch;
use suu_core::json::Json;
use suu_sim::{Evaluator, PolicySpec};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let watch = Stopwatch::start();
    let registry = suu_algos::standard_registry();

    // 1. Quality + per-cell wall clock across the standard suite.
    let suite = ScenarioSuite::standard(42);
    let mut doc = run_race_with(
        Race {
            title: "BENCH baseline: standard suite × registry policies".to_string(),
            generated_by: "bench_baseline".to_string(),
            scenarios: suite.scenarios,
            policies: [
                "gang-sequential",
                "round-robin",
                "best-machine",
                "greedy-lr",
                "suu-i-obl",
                "suu-i-sem",
                "suu-c",
                "suu-t",
            ]
            .map(String::from)
            .to_vec(),
            trials: 200,
            master_seed: 0xBA5E,
            ratios_to_lower_bound: true,
            json_path: None,
            ..Race::default()
        },
        &registry,
    );

    // 2. Evaluator speedup: 1000 trials of a registry policy, serial vs
    //    all-cores, identical outcomes required.
    println!("\n-- evaluator speedup (1000 trials, greedy-lr on uniform-12x192) --");
    let sc = Scenario::uniform(12, 192, 0.35, 0.97, 77);
    let inst = sc.instantiate();
    let spec = PolicySpec::new("greedy-lr");
    let eval = Evaluator::seeded(1000, 0xFA57);

    let serial = {
        let e = eval.with_threads(1);
        let probe = registry.build(&inst, &spec).expect("builds");
        drop(probe);
        e.run_serial(&inst, || registry.build(&inst, &spec).expect("builds"))
    };
    let parallel = eval
        .with_threads(0)
        .run(&inst, || registry.build(&inst, &spec).expect("builds"));

    let identical = serial
        .outcomes
        .iter()
        .zip(&parallel.outcomes)
        .all(|(a, b)| a.makespan == b.makespan);
    let speedup = serial.wall_clock.as_secs_f64() / parallel.wall_clock.as_secs_f64().max(1e-9);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "serial {:.3}s  parallel {:.3}s  speedup {speedup:.2}x on {cores} core(s)  outcomes identical: {identical}",
        serial.wall_clock.as_secs_f64(),
        parallel.wall_clock.as_secs_f64(),
    );
    if cores == 1 {
        println!("(single-core host: the parallel path degenerates to one worker;");
        println!(" re-run on a multicore machine for the real speedup number)");
    }
    assert!(
        identical,
        "parallel evaluator diverged from serial reference"
    );

    doc = doc.field(
        "evaluator",
        Json::obj()
            .field("workload", sc.id.as_str())
            .field("policy", "greedy-lr")
            .field("trials", 1000u64)
            .field("serial_wall_clock_s", serial.wall_clock.as_secs_f64())
            .field("parallel_wall_clock_s", parallel.wall_clock.as_secs_f64())
            .field("speedup", speedup)
            .field("threads", cores)
            .field("outcomes_identical", identical),
    );

    std::fs::write(&out_path, doc.to_pretty()).expect("write baseline JSON");
    println!(
        "\nbaseline written to {out_path}  [{:.1}s total]",
        watch.secs()
    );
}
