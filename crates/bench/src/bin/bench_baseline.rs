//! **bench_baseline** — the perf-trajectory anchor: runs the standard
//! nine-family [`suu_bench::scenario::ScenarioSuite`] across every
//! registry policy that fits each scenario (on the streaming batched
//! evaluator), measures a parallel-vs-serial evaluator speedup, races the
//! **dense stepper against the event engine**, and races the **per-trial
//! event engine against the batched SoA engine** (identical outcomes
//! required everywhere, wall clocks recorded). Writes:
//!
//! * `BENCH_baseline.json` — schema `suu-results/v2` with an extra
//!   `"evaluator"` block (quality + per-cell wall clock) and an
//!   `"adaptive_vs_fixed"` block: fixed-budget vs adaptive-precision
//!   total trial counts at equal CI half-width on high-variance
//!   families;
//! * `BENCH_engine_events.json` — dense vs. event engine per scenario
//!   family (plus a large hard-jobs family where fast-forwarding
//!   matters most), with `threads` recorded;
//! * `BENCH_engine_batch.json` — per-trial vs. batched engine per
//!   scenario family plus the same hard-jobs family (the largest), with
//!   `threads`/`host_cores`/`batch_size` recorded and a `stationary`
//!   flag per cell (stationary policies take the shared-decision SoA
//!   fast path; the rest measure the fallback's overhead).
//!
//! Later scaling PRs re-run this binary and diff the JSON: makespan means
//! are quality regressions, `wall_clock_s` per cell is the perf
//! trajectory.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin bench_baseline \
//!     [--smoke] [out.json [engine_out.json [batch_out.json]]]
//! ```
//!
//! `--smoke` shrinks everything (smoke suite, few trials) for CI — and
//! runs the race **adaptively** (`Precision::TargetCi`), so the
//! sequential-stopping path is exercised end to end. It still asserts
//! dense ≡ events and per-trial ≡ batched bitwise, so engine regressions
//! that only manifest under the Race runner fail fast; CI additionally
//! validates every artifact with the `validate_results` gate (schema
//! shape, `outcomes_identical`, counted-but-tolerated null speedups).

use std::sync::Arc;
use std::time::Instant;
use suu_bench::runner::{run_race_with, scenario_master_seed, Race};
use suu_bench::scenario::{Scenario, ScenarioSuite};
use suu_bench::Stopwatch;
use suu_core::json::Json;
use suu_core::profile::ProfileMode;
use suu_core::SuuInstance;
use suu_sim::{
    execute, BatchRunner, EngineKind, EvalConfig, Evaluator, ExecConfig, ExecOutcome,
    OutcomeAccumulator, PolicyRegistry, PolicySpec, Precision, RegistryError, Semantics,
};

/// Smallest wall clock a speedup ratio is trusted at: sub-millisecond
/// measurements are timer-noise dominated, and a ~0 denominator used to
/// emit `inf`/NaN that the JSON writer silently turned into `null`.
const MIN_MEASURABLE_WALL_CLOCK_S: f64 = 1e-3;

/// Cap on inner timing repetitions: a cell whose best round is still
/// under the floor at this many reps is genuinely unmeasurable and gets
/// an explicit `"speedup": null`.
const MAX_TIMING_REPS: usize = 8192;

/// A min-of-k wall-clock measurement: the best per-iteration time and
/// how many inner repetitions each timed round ran.
struct Timing {
    secs: f64,
    reps: usize,
}

impl Timing {
    /// Whether the ratio of two such timings is meaningful: the best
    /// timed *round* (secs × reps) must clear the measurability floor.
    fn trusted(&self) -> bool {
        self.secs * self.reps as f64 >= MIN_MEASURABLE_WALL_CLOCK_S
    }
}

/// Measure `f`'s wall clock, repeating it enough times that each timed
/// round comfortably clears [`MIN_MEASURABLE_WALL_CLOCK_S`], and taking
/// the **minimum** over 3 rounds (the minimum is the standard robust
/// estimator under one-sided scheduler noise). Long workloads
/// (≥ 0.25 s) are measured by a single shot. `f` must be idempotent —
/// every caller here re-executes a deterministic trial set.
fn measure_secs(mut f: impl FnMut()) -> Timing {
    let started = Instant::now();
    f();
    let once = started.elapsed().as_secs_f64();
    if once >= 0.25 {
        return Timing {
            secs: once,
            reps: 1,
        };
    }
    let mut reps = (((2.0 * MIN_MEASURABLE_WALL_CLOCK_S) / once.max(1e-9)).ceil() as usize)
        .clamp(1, MAX_TIMING_REPS);
    loop {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let started = Instant::now();
            for _ in 0..reps {
                f();
            }
            best = best.min(started.elapsed().as_secs_f64() / reps as f64);
        }
        // The warm best can undercut the calibration shot; escalate reps
        // until the best round clears the floor (or the cap declares the
        // workload genuinely unmeasurable).
        if best * reps as f64 >= MIN_MEASURABLE_WALL_CLOCK_S || reps >= MAX_TIMING_REPS {
            return Timing { secs: best, reps };
        }
        reps = (reps * 2).min(MAX_TIMING_REPS);
    }
}

/// Attach the `speedup` field from two repeated timings: the ratio when
/// both are trusted, otherwise an **explicit** `"speedup": null` plus a
/// `speedup_note` saying why. The CI gate (`validate_results`) tolerates
/// — but counts — null-speedup cells.
fn with_ratio(cell: Json, baseline: &Timing, contender: &Timing) -> Json {
    if baseline.trusted() && contender.trusted() {
        cell.field("speedup", baseline.secs / contender.secs)
    } else {
        cell.field("speedup", Json::Null).field(
            "speedup_note",
            "wall clock under 1ms even after min-of-3 repeated timing; \
             the ratio would be timer noise",
        )
    }
}

/// Attach the `speedup` field from two one-shot wall clocks (the
/// evaluator block, whose clocks are seconds-scale).
fn with_speedup(cell: Json, baseline_s: f64, contender_s: f64) -> Json {
    if baseline_s < MIN_MEASURABLE_WALL_CLOCK_S || contender_s < MIN_MEASURABLE_WALL_CLOCK_S {
        cell.field("speedup", Json::Null).field(
            "speedup_note",
            "wall clock under 1ms; the ratio would be timer noise",
        )
    } else {
        cell.field("speedup", baseline_s / contender_s)
    }
}

/// One dense-vs-events cell: min-of-k wall clocks, speedup, equality.
/// Both sides run the same direct per-trial loop (policy construction
/// excluded, no thread-pool setup in the timed region).
fn engine_cell(
    registry: &PolicyRegistry,
    inst: &Arc<SuuInstance>,
    scenario_id: &str,
    spec: &PolicySpec,
    trials: usize,
) -> Result<Json, RegistryError> {
    let evaluator = Evaluator::new(EvalConfig {
        trials,
        master_seed: 0xE7E7,
        threads: 1, // single worker: wall clocks compare engines, not pools
        ..EvalConfig::default()
    });
    let seeds = evaluator.trial_batch(0, trials);
    let mut policy = registry.build(inst, spec)?;
    let dense_cfg = ExecConfig {
        engine: EngineKind::Dense,
        ..ExecConfig::default()
    };
    let events_cfg = ExecConfig::default();

    let run_all = |policy: &mut dyn suu_sim::Policy, cfg: &ExecConfig| -> Vec<ExecOutcome> {
        seeds
            .iter()
            .map(|t| {
                if let Some(s) = t.policy_seed {
                    policy.reseed(s);
                }
                execute(inst, policy, cfg, t.engine_seed)
            })
            .collect()
    };
    let dense_out = run_all(&mut *policy, &dense_cfg);
    let events_out = run_all(&mut *policy, &events_cfg);
    let identical = dense_out == events_out;
    assert!(
        identical,
        "event engine diverged from dense oracle on {scenario_id}/{spec}"
    );
    let mean = events_out.iter().map(|o| o.makespan as f64).sum::<f64>() / trials.max(1) as f64;

    let dense_t = measure_secs(|| {
        std::hint::black_box(run_all(&mut *policy, &dense_cfg).len());
    });
    let events_t = measure_secs(|| {
        std::hint::black_box(run_all(&mut *policy, &events_cfg).len());
    });
    println!(
        // suu-lint: allow(float-format, "human console progress line; schema'd floats go through the Json shortest-repr writer")
        "  {scenario_id:<28} {spec:<18} dense {:>9.4}s  events {:>9.4}s  speedup {:>6.2}x",
        dense_t.secs,
        events_t.secs,
        dense_t.secs / events_t.secs.max(1e-12)
    );
    Ok(with_ratio(
        Json::obj()
            .field("scenario", scenario_id)
            .field("policy", spec.to_string())
            .field("trials", trials as u64)
            .field("mean_makespan", mean)
            .field("dense_wall_clock_s", dense_t.secs)
            .field("events_wall_clock_s", events_t.secs)
            .field(
                "timing_reps",
                Json::obj()
                    .field("dense", dense_t.reps as u64)
                    .field("events", events_t.reps as u64),
            )
            .field("outcomes_identical", identical),
        &dense_t,
        &events_t,
    ))
}

/// One per-trial-vs-batched cell (schema `suu-bench/engine-batch/v2`):
/// min-of-k wall clocks, speedup, bitwise equality, decision-cache
/// counters from the cold (first, production-shaped) batched pass, the
/// profiler's phase breakdown from a separate instrumented pass, and a
/// streaming-statistics cross-check.
fn batch_cell(
    registry: &PolicyRegistry,
    inst: &Arc<SuuInstance>,
    scenario_id: &str,
    spec: &PolicySpec,
    trials: usize,
    batch: usize,
    semantics: Semantics,
) -> Result<Json, RegistryError> {
    let exec = ExecConfig {
        semantics,
        ..ExecConfig::default()
    };
    let evaluator = Evaluator::new(EvalConfig {
        trials,
        master_seed: 0xBA7C,
        threads: 1, // single worker: wall clocks compare engines, not pools
        batch,
        exec,
    });
    let seeds = evaluator.trial_batch(0, trials);
    let mut policy = registry.build(inst, spec)?;
    let stationary = policy.is_stationary();

    // Correctness: per-trial reference vs the cold batched pass (the
    // production shape — chunks streamed through one warm runner).
    let reference: Vec<ExecOutcome> = seeds
        .iter()
        .map(|t| {
            if let Some(s) = t.policy_seed {
                policy.reseed(s);
            }
            execute(inst, &mut *policy, &exec, t.engine_seed)
        })
        .collect();
    let mut runner = BatchRunner::new(inst, &exec).with_profile(ProfileMode::Off);
    let mut batched: Vec<ExecOutcome> = Vec::with_capacity(trials);
    for chunk in seeds.chunks(batch.max(1)) {
        batched.extend(runner.run(&mut *policy, chunk));
    }
    // Cache counters of exactly one production pass, snapshotted before
    // the timing loops re-run (and re-hit) the warm cache.
    let cold = runner.metrics();
    let identical = batched == reference;
    assert!(
        identical,
        "batched engine diverged from per-trial engine on {scenario_id}/{spec}"
    );

    // Streaming cross-check: the O(1)-memory stats path folds the very
    // same outcomes in the same order, so its Welford mean must equal a
    // direct fold of the batched outcomes **bitwise**.
    let stats = evaluator.run_stats_spec(registry, inst, spec)?;
    let mut acc = OutcomeAccumulator::new();
    for o in &batched {
        acc.push(o);
    }
    let mean = acc.makespan().mean().expect("trials > 0");
    assert!(
        stats.mean_makespan().to_bits() == mean.to_bits(),
        "streaming stats diverged on {scenario_id}/{spec}"
    );

    // Timing: both sides exclude policy construction; the batched side
    // times the warm runner (decision cache populated), which is the
    // steady state every streaming evaluation path runs in.
    let per_trial_t = measure_secs(|| {
        for t in &seeds {
            if let Some(s) = t.policy_seed {
                policy.reseed(s);
            }
            std::hint::black_box(execute(inst, &mut *policy, &exec, t.engine_seed).makespan);
        }
    });
    let batched_t = measure_secs(|| {
        for chunk in seeds.chunks(batch.max(1)) {
            std::hint::black_box(runner.run(&mut *policy, chunk).len());
        }
    });

    // Phase breakdown from a separate exact-profiled pass, so the timed
    // numbers above stay instrumentation-free.
    let mut prof_runner = BatchRunner::new(inst, &exec).with_profile(ProfileMode::Exact);
    for chunk in seeds.chunks(batch.max(1)) {
        let _ = prof_runner.run(&mut *policy, chunk);
    }
    let profile = prof_runner.metrics().profile.expect("profiler enabled");

    let sem_label = match semantics {
        Semantics::SuuStar => "suu-star",
        Semantics::Suu => "suu",
    };
    println!(
        // suu-lint: allow(float-format, "human console progress line; schema'd floats go through the Json shortest-repr writer")
        "  {scenario_id:<28} {spec:<14} {} {sem_label:<8} per-trial {:>8.4}s  batched {:>8.4}s  speedup {:>6.2}x  cache {}h/{}m",
        if stationary { "[stationary]" } else { "[fallback]  " },
        per_trial_t.secs,
        batched_t.secs,
        per_trial_t.secs / batched_t.secs.max(1e-12),
        cold.cache_hits,
        cold.cache_misses,
    );
    Ok(with_ratio(
        Json::obj()
            .field("scenario", scenario_id)
            .field("policy", spec.to_string())
            .field("semantics", sem_label)
            .field("trials", trials as u64)
            .field("stationary", stationary)
            .field("mean_makespan", mean)
            .field("per_trial_wall_clock_s", per_trial_t.secs)
            .field("batched_wall_clock_s", batched_t.secs)
            .field("streaming_wall_clock_s", stats.wall_clock.as_secs_f64())
            .field(
                "timing_reps",
                Json::obj()
                    .field("per_trial", per_trial_t.reps as u64)
                    .field("batched", batched_t.reps as u64),
            )
            .field(
                "cache",
                Json::obj()
                    .field("hits", cold.cache_hits)
                    .field("misses", cold.cache_misses)
                    .field("evictions", cold.cache_evictions)
                    .field("entries", cold.cache_entries),
            )
            .field("profile", profile.to_json())
            .field("outcomes_identical", identical),
        &per_trial_t,
        &batched_t,
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let out_path = positional
        .first()
        .map(|s| s.to_string())
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let engine_out_path = positional
        .get(1)
        .map(|s| s.to_string())
        .unwrap_or_else(|| "BENCH_engine_events.json".to_string());
    let batch_out_path = positional
        .get(2)
        .map(|s| s.to_string())
        .unwrap_or_else(|| "BENCH_engine_batch.json".to_string());

    let watch = Stopwatch::start();
    let registry = suu_algos::standard_registry();
    let race_trials = if smoke { 8 } else { 200 };
    let suite = if smoke {
        ScenarioSuite::smoke(42)
    } else {
        ScenarioSuite::standard(42)
    };

    // 1. Quality + per-cell wall clock across the suite. Smoke mode runs
    //    the race **adaptively** (CI exercises the sequential-stopping
    //    path end to end and the schema gate validates its fields); the
    //    full run keeps the fixed 200-trial budget so the perf/quality
    //    trajectory stays comparable across PRs.
    let race_precision = smoke.then_some(Precision::TargetCi {
        half_width: 0.10,
        relative: true,
        min_trials: 4,
        max_trials: 16,
    });
    let mut doc = run_race_with(
        Race {
            title: format!("BENCH baseline: {} suite × registry policies", suite.name),
            generated_by: "bench_baseline".to_string(),
            scenarios: suite.scenarios,
            policies: [
                "gang-sequential",
                "round-robin",
                "best-machine",
                "greedy-lr",
                "suu-i-obl",
                "suu-i-sem",
                "suu-c",
                "suu-t",
            ]
            .map(String::from)
            .to_vec(),
            trials: race_trials,
            precision: race_precision,
            master_seed: 0xBA5E,
            ratios_to_lower_bound: true,
            json_path: None,
            ..Race::default()
        },
        &registry,
    );

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // 2. Evaluator speedup: serial vs all-cores, identical outcomes
    //    required (skipped in smoke mode; the engine comparison below
    //    already covers determinism).
    if !smoke {
        println!("\n-- evaluator speedup (1000 trials, greedy-lr on uniform-12x192) --");
        let sc = Scenario::uniform(12, 192, 0.35, 0.97, 77);
        let inst = sc.instantiate();
        let spec = PolicySpec::new("greedy-lr");
        let eval = Evaluator::seeded(1000, 0xFA57);

        let serial = {
            let e = eval.with_threads(1);
            e.run_serial(&inst, || registry.build(&inst, &spec).expect("builds"))
        };
        let parallel = eval
            .with_threads(0)
            .run(&inst, || registry.build(&inst, &spec).expect("builds"));

        let identical = serial
            .outcomes
            .iter()
            .zip(&parallel.outcomes)
            .all(|(a, b)| a.makespan == b.makespan);
        let speedup = serial.wall_clock.as_secs_f64() / parallel.wall_clock.as_secs_f64().max(1e-9);
        println!(
            // suu-lint: allow(float-format, "human console progress line; schema'd floats go through the Json shortest-repr writer")
            "serial {:.3}s  parallel {:.3}s  speedup {speedup:.2}x on {cores} core(s)  outcomes identical: {identical}",
            serial.wall_clock.as_secs_f64(),
            parallel.wall_clock.as_secs_f64(),
        );
        if cores == 1 {
            println!("(single-core host: the parallel path degenerates to one worker;");
            println!(" re-run on a multicore machine for the real speedup number)");
        }
        assert!(
            identical,
            "parallel evaluator diverged from serial reference"
        );

        doc = doc.field(
            "evaluator",
            with_speedup(
                Json::obj()
                    .field("workload", sc.id.as_str())
                    .field("policy", "greedy-lr")
                    .field("trials", 1000u64)
                    .field("serial_wall_clock_s", serial.wall_clock.as_secs_f64())
                    .field("parallel_wall_clock_s", parallel.wall_clock.as_secs_f64())
                    .field("threads", cores)
                    .field("outcomes_identical", identical),
                serial.wall_clock.as_secs_f64(),
                parallel.wall_clock.as_secs_f64(),
            ),
        );
    }

    // 3. Dense vs. event engine, per scenario family. The extra
    //    `uniform-m4-n96` family has near-certain per-step failure
    //    (q ∈ [0.99, 0.999]): hundreds of unit steps per completion, the
    //    regime the event engine exists for — and the largest family.
    println!("\n-- engine comparison: dense stepper vs. event engine --");
    let engine_trials = if smoke { 4 } else { 60 };
    let mut engine_scenarios = if smoke {
        ScenarioSuite::smoke(42).scenarios
    } else {
        ScenarioSuite::standard(42).scenarios
    };
    if !smoke {
        engine_scenarios.push(Scenario::uniform(4, 96, 0.99, 0.999, 4242));
    }
    let engine_specs = ["gang-sequential", "greedy-lr", "suu-i-obl"];
    let mut cells: Vec<Json> = Vec::new();
    for sc in &engine_scenarios {
        let inst = sc.instantiate();
        for spec_text in engine_specs {
            let spec = PolicySpec::new(spec_text);
            match engine_cell(&registry, &inst, &sc.id, &spec, engine_trials) {
                Ok(cell) => cells.push(cell),
                Err(RegistryError::UnsupportedStructure { .. }) => continue,
                Err(e) => panic!("{}/{spec_text}: {e}", sc.id),
            }
        }
    }
    let engine_doc = Json::obj()
        .field("schema", suu_core::schemas::BENCH_ENGINE_EVENTS_V1)
        .field("generated_by", "bench_baseline")
        .field("mode", if smoke { "smoke" } else { "full" })
        .field("threads", 1u64)
        .field("host_cores", cores as u64)
        .field("trials_per_cell", engine_trials as u64)
        .field("cells", Json::Arr(cells));
    std::fs::write(&engine_out_path, engine_doc.to_pretty()).expect("write engine JSON");
    println!("engine comparison written to {engine_out_path}");

    // 4. Per-trial vs. batched engine. Stationary policies take the SoA
    //    shared-decision fast path; suu-i-obl measures the per-trial
    //    fallback. The large hard-jobs families (n ≥ 96, near-certain
    //    per-step failure) are the satellite speedup table — full mode
    //    adds two more of them and runs both semantics there, so the SUU
    //    geometric wide kernel is measured alongside the SUU* one.
    println!("\n-- engine comparison: per-trial event engine vs. batched SoA engine --");
    let batch_size = 256usize;
    let batch_specs = ["gang-sequential", "best-machine", "greedy-lr", "suu-i-obl"];
    let extra_batch_scenarios = if smoke {
        Vec::new()
    } else {
        vec![
            Scenario::bimodal(4, 96, 0.6, 4343),
            Scenario::uniform(8, 128, 0.9, 0.99, 4444),
        ]
    };
    let mut batch_cells: Vec<Json> = Vec::new();
    for sc in engine_scenarios.iter().chain(&extra_batch_scenarios) {
        let inst = sc.instantiate();
        let large = inst.num_jobs() >= 96;
        for spec_text in batch_specs {
            let spec = PolicySpec::new(spec_text);
            let mut semantics = vec![Semantics::SuuStar];
            if large && !smoke {
                semantics.push(Semantics::Suu);
            }
            for sem in semantics {
                match batch_cell(
                    &registry,
                    &inst,
                    &sc.id,
                    &spec,
                    engine_trials,
                    batch_size,
                    sem,
                ) {
                    Ok(cell) => batch_cells.push(cell),
                    Err(RegistryError::UnsupportedStructure { .. }) => break,
                    Err(e) => panic!("{}/{spec_text}: {e}", sc.id),
                }
            }
        }
    }
    let batch_doc = Json::obj()
        .field("schema", suu_core::schemas::BENCH_ENGINE_BATCH_V2)
        .field("generated_by", "bench_baseline")
        .field("mode", if smoke { "smoke" } else { "full" })
        .field("threads", 1u64)
        .field("host_cores", cores as u64)
        .field("batch_size", batch_size as u64)
        .field("trials_per_cell", engine_trials as u64)
        .field(
            "note",
            "wall clocks are min-of-3 repeated timings on a single worker thread \
             (policy construction excluded; batched side timed warm, the steady \
             state of the streaming evaluator); cache counters come from the cold \
             first pass; engine speedups are thread-independent, but on a 1-core \
             host re-run on multicore before quoting evaluator-level numbers",
        )
        .field("cells", Json::Arr(batch_cells));
    std::fs::write(&batch_out_path, batch_doc.to_pretty()).expect("write batch JSON");
    println!("batch comparison written to {batch_out_path}");

    // 5. Fixed vs adaptive trial budgets at equal precision, on
    //    high-variance scenario families. The fixed pass spends N trials
    //    on every cell; the loosest (largest) ci95 it achieves is the
    //    precision a fixed budget actually *guarantees* across the
    //    board. The adaptive pass targets exactly that half-width per
    //    cell — low-variance cells stop early, only the worst cell pays
    //    the full price — so the race reaches equal precision on fewer
    //    total trials. Deterministic: same master seed ⇒ same stopping
    //    points.
    println!("\n-- adaptive precision: fixed vs adaptive budgets at equal CI --");
    let fixed_trials = if smoke { 24 } else { 200 };
    let (av_m, av_n) = if smoke { (3, 8) } else { (4, 24) };
    let av_scenarios = vec![
        Scenario::bimodal(av_m, av_n, 0.6, 9091),
        Scenario::power_law(av_m, av_n, 0.5, 1.1, 9092),
        Scenario::uniform(av_m, av_n, 0.2, 0.95, 9093),
    ];
    let av_specs = ["greedy-lr", "best-machine"];
    let av_evaluator = |sc: &Scenario, trials: usize| {
        Evaluator::new(EvalConfig {
            trials,
            master_seed: scenario_master_seed(0xADA7, sc),
            threads: 0,
            ..EvalConfig::default()
        })
    };
    // Pass 1: fixed budgets; find the guaranteed (loosest) precision.
    let mut fixed_cis: Vec<f64> = Vec::new();
    for sc in &av_scenarios {
        let inst = sc.instantiate();
        for spec_text in av_specs {
            let stats = av_evaluator(sc, fixed_trials)
                .run_stats_spec(&registry, &inst, &PolicySpec::new(spec_text))
                .unwrap_or_else(|e| panic!("{}/{spec_text}: {e}", sc.id));
            fixed_cis.push(stats.summary().expect("trials > 0").ci95);
        }
    }
    let target_ci = fixed_cis.iter().cloned().fold(0.0f64, f64::max);
    // Pass 2: every cell adaptively targets that guaranteed precision.
    let adaptive_rule = Precision::TargetCi {
        half_width: target_ci,
        relative: false,
        min_trials: if smoke { 4 } else { 16 },
        max_trials: 4 * fixed_trials,
    };
    let mut av_cells: Vec<Json> = Vec::new();
    let mut adaptive_total = 0u64;
    let mut cell_idx = 0;
    for sc in &av_scenarios {
        let inst = sc.instantiate();
        for spec_text in av_specs {
            let adaptive = av_evaluator(sc, fixed_trials)
                .run_adaptive_spec(&registry, &inst, &PolicySpec::new(spec_text), adaptive_rule)
                .unwrap_or_else(|e| panic!("{}/{spec_text}: {e}", sc.id));
            let used = adaptive.trials_used();
            adaptive_total += used;
            let ci = adaptive.stats.summary().expect("trials > 0").ci95;
            println!(
                // suu-lint: allow(float-format, "human console progress line; schema'd floats go through the Json shortest-repr writer")
                "  {:<24} {spec_text:<14} fixed {fixed_trials:>4} trials (ci95 {:>7.3})  \
                 adaptive {used:>4} trials (ci95 {ci:>7.3}, {})",
                sc.id,
                fixed_cis[cell_idx],
                adaptive.stop_reason.as_str(),
            );
            av_cells.push(
                Json::obj()
                    .field("scenario", sc.id.as_str())
                    .field("policy", spec_text)
                    .field("fixed_trials", fixed_trials as u64)
                    .field("fixed_ci95", fixed_cis[cell_idx])
                    .field("adaptive_trials_used", used)
                    .field("adaptive_ci95", ci)
                    .field("stop_reason", adaptive.stop_reason.as_str()),
            );
            cell_idx += 1;
        }
    }
    let fixed_total = (fixed_trials * av_cells.len()) as u64;
    println!(
        // suu-lint: allow(float-format, "human console summary line; schema'd floats go through the Json shortest-repr writer")
        "equal precision (ci95 <= {target_ci:.3}): fixed {fixed_total} total trials, \
         adaptive {adaptive_total} total trials ({:.0}% of fixed)",
        100.0 * adaptive_total as f64 / fixed_total.max(1) as f64
    );
    doc = doc.field(
        "adaptive_vs_fixed",
        Json::obj()
            .field("target_ci95", target_ci)
            .field("fixed_trials_per_cell", fixed_trials as u64)
            .field("fixed_total_trials", fixed_total)
            .field("adaptive_total_trials", adaptive_total)
            .field("cells", Json::Arr(av_cells)),
    );

    doc = doc.field("engine_comparison_file", engine_out_path.as_str());
    doc = doc.field("batch_comparison_file", batch_out_path.as_str());
    std::fs::write(&out_path, doc.to_pretty()).expect("write baseline JSON");
    println!(
        // suu-lint: allow(float-format, "human console summary line; schema'd floats go through the Json shortest-repr writer")
        "\nbaseline written to {out_path}  [{:.1}s total]",
        watch.secs()
    );
}
