//! **T1-T — Table 1, row "Directed Forests"**: measured `E[T]/LB` of
//! `SUU-T` (Theorem 12: rank decomposition + `SUU-C` per block) vs
//! baselines on random out-forests and in-forests.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin table1_forests
//! ```

use suu_bench::runner::{run_race, Race};
use suu_bench::scenario::Scenario;
use suu_sim::Precision;

fn main() {
    let mut scenarios = Vec::new();
    for n in [14usize, 28, 56] {
        scenarios.push(Scenario::forest(6, n, 3, 3000 + n as u64));
        scenarios.push(Scenario::in_forest(6, n, 3, 4000 + n as u64));
    }
    run_race(Race {
        title: "T1-T: Table 1 (Directed forests) — E[T]/LB vs n".to_string(),
        generated_by: "table1_forests".to_string(),
        scenarios,
        policies: ["gang-sequential", "greedy-lr", "suu-t"]
            .map(String::from)
            .to_vec(),
        // Adaptive stopping at 2% relative CI (old fixed budget: 30).
        precision: Some(Precision::TargetCi {
            half_width: 0.02,
            relative: true,
            min_trials: 16,
            max_trials: 120,
        }),
        paired: vec![("suu-t".to_string(), "greedy-lr".to_string())],
        master_seed: 0x73,
        ratios_to_lower_bound: true,
        json_path: Some("target/results/table1_forests.json".into()),
        ..Race::default()
    });
    println!("\nexpected shape: SUU-T tracks the bound on both orientations;");
    println!("the naive baselines degrade as the forests deepen.");
}
