//! **T1-T — Table 1, row "Directed Forests"**: measured `E[T]/LB` of
//! `SUU-T` (Theorem 12: rank decomposition + `SUU-C` per block) vs
//! baselines on random out-forests and in-forests.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin table1_forests
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu_algos::baselines::{GangSequentialPolicy, LrGreedyPolicy};
use suu_algos::bounds::lower_bound;
use suu_algos::{ChainConfig, ForestPolicy};
use suu_bench::{mean_makespan, print_header, Stopwatch};
use suu_core::{workload, Precedence};
use suu_dag::generators::{random_in_forest, random_out_forest};
use suu_sim::{run_trials, MonteCarloConfig};

fn main() {
    let watch = Stopwatch::start();
    println!("== T1-T: Table 1 (Directed forests) — E[T]/LB vs n ==\n");
    println!("workload: 3-root random forests, q ~ U[0.2,0.85), m = 6, 30 trials\n");
    print_header(&[
        ("kind", 5),
        ("n", 5),
        ("blocks", 7),
        ("LB", 8),
        ("gang", 8),
        ("greedy", 8),
        ("SUU-T", 8),
    ]);

    let m = 6;
    for &n in &[15usize, 31, 63] {
        for out in [true, false] {
            let mut rng = SmallRng::seed_from_u64(3000 + n as u64 + out as u64);
            let forest = if out {
                random_out_forest(n, 3, &mut rng)
            } else {
                random_in_forest(n, 3, &mut rng)
            };
            let inst = Arc::new(workload::uniform_unrelated(
                m,
                n,
                0.2,
                0.85,
                Precedence::Forest(forest.clone()),
                &mut rng,
            ));
            let lb = lower_bound(&inst).expect("lower bound");
            let mc = MonteCarloConfig {
                trials: 30,
                base_seed: n as u64,
                ..Default::default()
            };
            let gang = mean_makespan(&run_trials(&inst, GangSequentialPolicy::new, &mc)) / lb;
            let greedy =
                mean_makespan(&run_trials(&inst, || LrGreedyPolicy::new(inst.clone()), &mc)) / lb;
            let policy_blocks = ForestPolicy::build(inst.clone(), &forest, ChainConfig::default())
                .unwrap()
                .num_blocks();
            let suu_t = mean_makespan(&run_trials(
                &inst,
                || ForestPolicy::build(inst.clone(), &forest, ChainConfig::default()).unwrap(),
                &mc,
            )) / lb;
            println!(
                "{:>5} {n:>5} {policy_blocks:>7} {lb:>8.2} {gang:>8.2} {greedy:>8.2} {suu_t:>8.2}",
                if out { "out" } else { "in" }
            );
        }
    }

    println!("\npaper: O(log n log(n+m) log log min(m,n)) via ≤ log2(n)+1 blocks");
    println!("of disjoint chains (Appendix B). blocks column confirms the");
    println!("decomposition size; ratios should track the chains experiment");
    println!("within the extra O(log n) block factor.");
    println!("[{:.1}s]", watch.secs());
}
