//! **F-EQUIV — Theorem 10 / Corollary 11**: the SUU and SUU* semantics
//! induce the same makespan distribution for any schedule.
//!
//! Runs registry-built policies under both engine semantics through the
//! parallel evaluator and applies a two-sample chi-square test to the
//! makespan histograms. Statistics below the 0.001 critical value ⇒ the
//! empirical distributions are indistinguishable, as the theorem demands.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin fig_equivalence
//! ```

use suu_bench::report::ResultsBuilder;
use suu_bench::scenario::Scenario;
use suu_bench::{print_header, Stopwatch};
use suu_core::json::Json;
use suu_sim::stats::{chi_square_critical_001, chi_square_two_sample, histogram_pair};
use suu_sim::{EvalConfig, Evaluator, ExecConfig, PolicySpec, Semantics};

fn main() {
    let watch = Stopwatch::start();
    println!("== F-EQUIV: SUU vs SUU* makespan distributions (Theorem 10) ==\n");
    let trials = 4000;
    println!("{trials} trials per semantics; chi-square @ 0.001\n");
    print_header(&[
        ("instance", 24),
        ("policy", 12),
        ("chi2", 8),
        ("crit", 8),
        ("verdict", 8),
    ]);

    let registry = suu_algos::standard_registry();
    let scenarios = [
        (
            Scenario::uniform(3, 6, 0.3, 0.9, 7001),
            vec!["round-robin", "suu-i-sem"],
        ),
        (
            Scenario::chains(3, 6, 2, 7002),
            vec!["round-robin", "greedy-lr"],
        ),
        (
            Scenario::adversarial(4, 5, 7003),
            vec!["greedy-lr", "best-machine"],
        ),
    ];

    let mut builder = ResultsBuilder::new("fig_equivalence");
    let mut all_pass = true;
    for (sc, policies) in scenarios {
        builder.add_scenario(&sc);
        let inst = sc.instantiate();
        for policy in policies {
            let spec = PolicySpec::parse(policy).expect("valid spec");
            let run = |semantics| {
                Evaluator::new(EvalConfig {
                    trials,
                    master_seed: 31337,
                    threads: 0,
                    exec: ExecConfig {
                        semantics,
                        max_steps: 5_000_000,

                        ..ExecConfig::default()
                    },
                    ..EvalConfig::default()
                })
                .run_spec(&registry, &inst, &spec)
                .expect("policy builds")
            };
            let a = run(Semantics::Suu);
            let b = run(Semantics::SuuStar);
            let ma: Vec<u64> = a.outcomes.iter().map(|o| o.makespan).collect();
            let mb: Vec<u64> = b.outcomes.iter().map(|o| o.makespan).collect();
            let (ha, hb) = histogram_pair(&ma, &mb);
            let (chi2, dof) = chi_square_two_sample(&ha, &hb);
            let crit = chi_square_critical_001(dof);
            let pass = chi2 <= crit;
            all_pass &= pass;
            builder.add_cell(
                &sc.id,
                policy,
                &b.to_stats(),
                &[
                    ("chi2", Json::Num(chi2)),
                    ("chi2_dof", Json::UInt(dof as u64)),
                    ("chi2_critical_001", Json::Num(crit)),
                    ("suu_mean", Json::Num(a.mean_makespan())),
                    ("distributions_match", Json::Bool(pass)),
                ],
            );
            println!(
                "{:>24} {policy:>12} {chi2:>8.2} {crit:>8.2} {:>8}",
                sc.id,
                if pass { "match" } else { "DIFFER" }
            );
        }
    }

    let doc = builder.finish();
    std::fs::create_dir_all("target/results").ok();
    std::fs::write("target/results/fig_equivalence.json", doc.to_pretty()).ok();

    println!(
        "\nexpected: every row 'match' — the Principle of Deferred Decisions\n\
         reformulation (Appendix A) is distribution-preserving. {}",
        if all_pass { "OK." } else { "VIOLATION!" }
    );
    println!("results written to target/results/fig_equivalence.json");
    println!("[{:.1}s]", watch.secs());
}
