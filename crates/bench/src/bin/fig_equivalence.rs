//! **F-EQUIV — Theorem 10 / Corollary 11**: the SUU and SUU* semantics
//! induce the same makespan distribution for any schedule.
//!
//! Runs the same policies under both engine semantics on a spread of
//! instances and applies a two-sample chi-square test to the makespan
//! histograms. Statistics below the 0.001 critical value ⇒ the empirical
//! distributions are indistinguishable, as the theorem demands.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin fig_equivalence
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu_algos::baselines::{LrGreedyPolicy, RoundRobinPolicy};
use suu_algos::SemPolicy;
use suu_bench::{print_header, Stopwatch};
use suu_core::{workload, Precedence};
use suu_dag::generators::random_chain_set;
use suu_sim::stats::{chi_square_critical_001, chi_square_two_sample, histogram_pair};
use suu_sim::{run_trials, ExecConfig, MonteCarloConfig, Semantics};

fn collect(
    inst: &Arc<suu_core::SuuInstance>,
    which: &str,
    semantics: Semantics,
    trials: usize,
) -> Vec<u64> {
    let mc = MonteCarloConfig {
        trials,
        base_seed: 31337,
        threads: 0,
        exec: ExecConfig {
            semantics,
            max_steps: 5_000_000,
        },
    };
    let outcomes = match which {
        "round-robin" => run_trials(inst, RoundRobinPolicy::new, &mc),
        "greedy-lr" => run_trials(inst, || LrGreedyPolicy::new(inst.clone()), &mc),
        "SUU-I-SEM" => run_trials(inst, || SemPolicy::build(inst.clone()).unwrap(), &mc),
        other => unreachable!("unknown policy {other}"),
    };
    outcomes.into_iter().map(|o| o.makespan).collect()
}

fn main() {
    let watch = Stopwatch::start();
    println!("== F-EQUIV: SUU vs SUU* makespan distributions (Theorem 10) ==\n");
    let trials = 4000;
    println!("{trials} trials per semantics; chi-square @ 0.001\n");
    print_header(&[
        ("instance", 22),
        ("policy", 12),
        ("chi2", 8),
        ("crit", 8),
        ("verdict", 8),
    ]);

    let mut grng = SmallRng::seed_from_u64(7000);
    let independent = Arc::new(workload::uniform_unrelated(
        3,
        6,
        0.3,
        0.9,
        Precedence::Independent,
        &mut grng,
    ));
    let cs = random_chain_set(6, 2, &mut grng);
    let chained = Arc::new(workload::uniform_unrelated(
        3,
        6,
        0.3,
        0.9,
        Precedence::Chains(cs),
        &mut grng,
    ));
    let bimodal = Arc::new(workload::volunteer_grid(
        4,
        5,
        0.5,
        0.2,
        0.9,
        Precedence::Independent,
        &mut grng,
    ));

    let cases: Vec<(&str, &Arc<suu_core::SuuInstance>, &str)> = vec![
        ("uniform/independent", &independent, "round-robin"),
        ("uniform/independent", &independent, "SUU-I-SEM"),
        ("uniform/chains", &chained, "round-robin"),
        ("uniform/chains", &chained, "greedy-lr"),
        ("bimodal/independent", &bimodal, "greedy-lr"),
        ("bimodal/independent", &bimodal, "SUU-I-SEM"),
    ];

    let mut all_pass = true;
    for (label, inst, policy) in cases {
        let a = collect(inst, policy, Semantics::Suu, trials);
        let b = collect(inst, policy, Semantics::SuuStar, trials);
        let (ha, hb) = histogram_pair(&a, &b);
        let (chi2, dof) = chi_square_two_sample(&ha, &hb);
        let crit = chi_square_critical_001(dof);
        let pass = chi2 <= crit;
        all_pass &= pass;
        println!(
            "{label:>22} {policy:>12} {chi2:>8.2} {crit:>8.2} {:>8}",
            if pass { "match" } else { "DIFFER" }
        );
    }

    println!(
        "\nexpected: every row 'match' — the Principle of Deferred Decisions\n\
         reformulation (Appendix A) is distribution-preserving. {}",
        if all_pass { "OK." } else { "VIOLATION!" }
    );
    println!("[{:.1}s]", watch.secs());
}
