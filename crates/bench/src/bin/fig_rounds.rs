//! **F-ROUNDS — Theorem 4**: rounds used by `SUU-I-SEM` vs the bound
//! `K = ⌈log₂ log₂ min(m,n)⌉ + 3`.
//!
//! The doubling-target design means the number of rounds actually needed
//! grows doubly-logarithmically; this experiment records the empirical
//! round distribution and fallback frequency as `n = m` grows.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin fig_rounds
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu_algos::SemPolicy;
use suu_bench::{print_header, Stopwatch};
use suu_core::{workload, Precedence};
use suu_sim::{execute, ExecConfig};

fn main() {
    let watch = Stopwatch::start();
    println!("== F-ROUNDS: SUU-I-SEM rounds used vs K = ceil(log log min(m,n)) + 3 ==\n");
    println!("square instances n = m, q ~ U[0.3,0.97), 60 trials/point\n");
    print_header(&[
        ("n=m", 5),
        ("K", 4),
        ("mean rounds", 12),
        ("max rounds", 11),
        ("fallback%", 10),
    ]);

    for &n in &[4usize, 8, 16, 32, 64] {
        let mut rng = SmallRng::seed_from_u64(4000 + n as u64);
        let inst = Arc::new(workload::uniform_unrelated(
            n,
            n,
            0.3,
            0.97,
            Precedence::Independent,
            &mut rng,
        ));
        let mut policy = SemPolicy::build(inst.clone()).unwrap();
        let k = policy.k_max();
        let trials = 60;
        let mut rounds = Vec::with_capacity(trials);
        let mut fallbacks = 0u32;
        for seed in 0..trials as u64 {
            let out = execute(&inst, &mut policy, &ExecConfig::default(), seed);
            assert!(out.completed);
            let st = policy.stats();
            rounds.push(st.rounds_used as f64);
            fallbacks += st.fallback_entered as u32;
        }
        let mean = rounds.iter().sum::<f64>() / trials as f64;
        let max = rounds.iter().fold(0.0f64, |a, &b| a.max(b));
        println!(
            "{n:>5} {k:>4} {mean:>12.2} {max:>11.0} {:>9.1}%",
            100.0 * fallbacks as f64 / trials as f64
        );
    }

    println!("\nexpected: mean/max rounds track K (double-log growth: K only");
    println!("increases by 1 each time log min(m,n) doubles), and the post-K");
    println!("fallback fires rarely — it guards a probability-1/n tail event.");
    println!("[{:.1}s]", watch.secs());
}
