//! **F-DELAY — Theorem 7**: random start delays cut pseudoschedule
//! congestion to `O(log(n+m)/log log(n+m))`.
//!
//! Many short chains contending for few machines maximize collision
//! pressure; the experiment compares the max per-machine congestion with
//! and without the `U{0..H}` delays, against the theorem's bound.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin fig_congestion
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu_algos::{ChainConfig, ChainPolicy};
use suu_bench::{print_header, Stopwatch};
use suu_core::{workload, Precedence};
use suu_dag::generators::equal_chains;
use suu_sim::{execute, ExecConfig};

fn main() {
    let watch = Stopwatch::start();
    println!("== F-DELAY: max congestion with vs without random delays ==\n");
    println!("z chains of length 4, m = 4 machines, q ~ U[0.25,0.7), 25 trials\n");
    print_header(&[
        ("chains", 7),
        ("n", 5),
        ("bound", 7),
        ("no delay", 9),
        ("delayed", 9),
        ("makespan-", 10),
        ("makespan+", 10),
    ]);

    let m = 4;
    for &z in &[8usize, 16, 32, 64] {
        let n = z * 4;
        let mut rng = SmallRng::seed_from_u64(5000 + z as u64);
        let cs = equal_chains(n, 4);
        let chains = cs.chains().to_vec();
        let inst = Arc::new(workload::uniform_unrelated(
            m,
            n,
            0.25,
            0.7,
            Precedence::Chains(cs),
            &mut rng,
        ));
        let run = |use_delay: bool, seed: u64| {
            let cfg = ChainConfig {
                use_random_delay: use_delay,
                seed: 99 + seed,
                ..Default::default()
            };
            let mut policy = ChainPolicy::build(inst.clone(), chains.clone(), cfg).unwrap();
            let out = execute(&inst, &mut policy, &ExecConfig::default(), seed);
            assert!(out.completed);
            (policy.stats().max_congestion as f64, out.makespan as f64)
        };
        let trials = 25u64;
        let (mut c_no, mut c_yes, mut mk_no, mut mk_yes) = (0.0, 0.0, 0.0, 0.0);
        for seed in 0..trials {
            let (c, mk) = run(false, seed);
            c_no += c;
            mk_no += mk;
            let (c, mk) = run(true, seed);
            c_yes += c;
            mk_yes += mk;
        }
        let t = trials as f64;
        let nm = (n + m) as f64;
        let bound = nm.log2() / nm.log2().log2();
        println!(
            "{z:>7} {n:>5} {bound:>7.2} {:>9.2} {:>9.2} {:>10.1} {:>10.1}",
            c_no / t,
            c_yes / t,
            mk_no / t,
            mk_yes / t
        );
    }

    println!("\nexpected: delayed congestion stays near the log(n+m)/loglog(n+m)");
    println!("bound while undelayed congestion grows with the chain count.");
    println!("(delays trade a bounded additive makespan cost for that cap —");
    println!("the two makespan columns show the trade.)");
    println!("[{:.1}s]", watch.secs());
}
