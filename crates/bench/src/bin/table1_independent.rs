//! **T1-I — Table 1, row "Independent"**: measured approximation ratios of
//! the prior `O(log n)`-style schedules vs this paper's
//! `O(log log min(m,n))` schedule, as `n` grows.
//!
//! The paper's Table 1 is a table of *asymptotic bounds*; the reproducible
//! claim is the growth *shape*: `SUU-I-OBL`'s measured ratio (the
//! `O(log n)` repeated-timetable approach, here standing in for Lin &
//! Rajaraman's bound) grows markedly with `n`, while `SUU-I-SEM`'s stays
//! near-flat. Ratios are reported against the Lemma-1 LP lower bound
//! `t_LP1(J,1/2)/2`, so absolute values overstate the true ratio by the
//! bound's slack; the *trend across `n`* is the result.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin table1_independent
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu_algos::baselines::{GangSequentialPolicy, LrGreedyPolicy};
use suu_algos::bounds::lower_bound;
use suu_algos::{OblPolicy, SemPolicy};
use suu_bench::{mean_makespan, print_header, Stopwatch};
use suu_core::{workload, Precedence};
use suu_sim::{run_trials, MonteCarloConfig};

fn main() {
    let watch = Stopwatch::start();
    println!("== T1-I: Table 1 (Independent jobs) — E[T]/LB vs n ==\n");
    println!("workload: q_ij ~ U[0.15,0.95), m = max(4, n/4), 60 trials/point\n");
    print_header(&[
        ("n", 5),
        ("m", 4),
        ("LB", 8),
        ("gang", 8),
        ("greedy", 8),
        ("OBL", 8),
        ("SEM", 8),
        ("OBL/SEM", 9),
    ]);

    for &n in &[8usize, 16, 32, 64, 128] {
        let m = (n / 4).max(4);
        let mut rng = SmallRng::seed_from_u64(1000 + n as u64);
        let inst = Arc::new(workload::uniform_unrelated(
            m,
            n,
            0.15,
            0.95,
            Precedence::Independent,
            &mut rng,
        ));
        let lb = lower_bound(&inst).expect("lower bound");
        let mc = MonteCarloConfig {
            trials: 60,
            base_seed: n as u64,
            ..Default::default()
        };
        let gang = mean_makespan(&run_trials(&inst, GangSequentialPolicy::new, &mc)) / lb;
        let greedy =
            mean_makespan(&run_trials(&inst, || LrGreedyPolicy::new(inst.clone()), &mc)) / lb;
        let obl = mean_makespan(&run_trials(&inst, || OblPolicy::build(&inst).unwrap(), &mc)) / lb;
        let sem = mean_makespan(&run_trials(
            &inst,
            || SemPolicy::build(inst.clone()).unwrap(),
            &mc,
        )) / lb;
        println!(
            "{n:>5} {m:>4} {lb:>8.2} {gang:>8.2} {greedy:>8.2} {obl:>8.2} {sem:>8.2} {:>9.2}",
            obl / sem
        );
    }

    println!("\npaper: prior best O(log n) vs this work O(log log min(m,n)).");
    println!("expected shape: OBL ratio grows with n; SEM ratio stays near-flat,");
    println!("so OBL/SEM widens as n grows.");
    println!("[{:.1}s]", watch.secs());
}
