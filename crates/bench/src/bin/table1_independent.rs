//! **T1-I — Table 1, row "Independent"**: measured approximation ratios of
//! the prior `O(log n)`-style schedules vs this paper's
//! `O(log log min(m,n))` schedule, as `n` grows.
//!
//! The paper's Table 1 is a table of *asymptotic bounds*; the reproducible
//! claim is the growth *shape*: `SUU-I-OBL`'s measured ratio (the
//! `O(log n)` repeated-timetable approach, standing in for Lin &
//! Rajaraman's bound) grows markedly with `n`, while `SUU-I-SEM`'s stays
//! near-flat. Ratios are against the Lemma-1 LP lower bound.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin table1_independent
//! ```

use suu_bench::runner::{run_race, Race};
use suu_bench::scenario::Scenario;

fn main() {
    run_race(Race {
        title: "T1-I: Table 1 (Independent jobs) — E[T]/LB vs n".to_string(),
        generated_by: "table1_independent".to_string(),
        scenarios: [8usize, 16, 32, 64, 128]
            .into_iter()
            .map(|n| Scenario::uniform((n / 4).max(4), n, 0.15, 0.95, 1000 + n as u64))
            .collect(),
        policies: ["gang-sequential", "greedy-lr", "suu-i-obl", "suu-i-sem"]
            .map(String::from)
            .to_vec(),
        trials: 60,
        master_seed: 0x71,
        ratios_to_lower_bound: true,
        json_path: Some("target/results/table1_independent.json".into()),
        ..Race::default()
    });
    println!("\npaper: prior best O(log n) vs this work O(log log min(m,n)).");
    println!("expected shape: OBL ratio grows with n; SEM ratio stays near-flat.");
}
