//! **T1-I — Table 1, row "Independent"**: measured approximation ratios of
//! the prior `O(log n)`-style schedules vs this paper's
//! `O(log log min(m,n))` schedule, as `n` grows.
//!
//! The paper's Table 1 is a table of *asymptotic bounds*; the reproducible
//! claim is the growth *shape*: `SUU-I-OBL`'s measured ratio (the
//! `O(log n)` repeated-timetable approach, standing in for Lin &
//! Rajaraman's bound) grows markedly with `n`, while `SUU-I-SEM`'s stays
//! near-flat. Ratios are against the Lemma-1 LP lower bound.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin table1_independent
//! ```

use suu_bench::runner::{run_race, Race};
use suu_bench::scenario::Scenario;
use suu_sim::Precision;

fn main() {
    run_race(Race {
        title: "T1-I: Table 1 (Independent jobs) — E[T]/LB vs n".to_string(),
        generated_by: "table1_independent".to_string(),
        scenarios: [8usize, 16, 32, 64, 128]
            .into_iter()
            .map(|n| Scenario::uniform((n / 4).max(4), n, 0.15, 0.95, 1000 + n as u64))
            .collect(),
        policies: ["gang-sequential", "greedy-lr", "suu-i-obl", "suu-i-sem"]
            .map(String::from)
            .to_vec(),
        // Adaptive: stop each cell at a 2% relative CI half-width on the
        // mean — low-variance cells finish in a fraction of the old
        // fixed 60-trial budget, high-variance cells get more.
        precision: Some(Precision::TargetCi {
            half_width: 0.02,
            relative: true,
            min_trials: 24,
            max_trials: 240,
        }),
        // The paper's headline comparison, on common random numbers: the
        // O(log n)-style oblivious timetable vs this paper's
        // semioblivious rounds.
        paired: vec![("suu-i-obl".to_string(), "suu-i-sem".to_string())],
        master_seed: 0x71,
        ratios_to_lower_bound: true,
        json_path: Some("target/results/table1_independent.json".into()),
        ..Race::default()
    });
    println!("\npaper: prior best O(log n) vs this work O(log log min(m,n)).");
    println!("expected shape: OBL ratio grows with n; SEM ratio stays near-flat;");
    println!("the paired Δ(OBL − SEM) turns significantly positive as n grows.");
}
