//! **F-LP — Lemmas 2 & 6**: empirical verification of the rounding
//! guarantees and measurement of the integrality cost.
//!
//! For sweeps of random instances, report: minimum clamped mass over jobs
//! (must be ≥ L), max load vs cap (must hold), the scale factor the
//! adaptive rounding settled on, and the rounded/fractional makespan
//! ratio — Lemma 2 proves ≤ ~6+1; in practice far less.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin fig_lp_quality
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use suu_algos::lp1::solve_lp1;
use suu_algos::lp2::{round_lp2, solve_lp2};
use suu_algos::rounding::round_lp1;
use suu_bench::{print_header, Stopwatch};
use suu_core::{workload, Precedence};
use suu_dag::generators::random_chain_set;

fn main() {
    let watch = Stopwatch::start();
    println!("== F-LP: Lemma 2 / Lemma 6 rounding quality ==\n");

    println!("--- Lemma 2 (LP1, independent), 40 instances per row ---");
    print_header(&[
        ("n", 5),
        ("m", 4),
        ("L", 5),
        ("mass ok", 8),
        ("load ok", 8),
        ("mean scale", 11),
        ("rounded/t*", 11),
    ]);
    for &(n, m, target) in &[
        (8usize, 4usize, 0.5f64),
        (16, 4, 0.5),
        (32, 8, 0.5),
        (32, 8, 2.0),
        (64, 16, 1.0),
    ] {
        let mut mass_ok = 0u32;
        let mut load_ok = 0u32;
        let mut scales = 0.0f64;
        let mut blowups = 0.0f64;
        let reps = 40;
        for seed in 0..reps {
            let mut rng = SmallRng::seed_from_u64(seed * 31 + n as u64);
            let inst =
                workload::uniform_unrelated(m, n, 0.1, 0.97, Precedence::Independent, &mut rng);
            let jobs: Vec<u32> = (0..n as u32).collect();
            let sol = solve_lp1(&inst, &jobs, target).unwrap();
            let (_, report) = round_lp1(&inst, &sol).unwrap();
            mass_ok += (report.min_clamped_mass >= target - 1e-9) as u32;
            load_ok += (report.max_load <= report.load_cap) as u32;
            scales += report.scale as f64;
            blowups += report.max_load as f64 / sol.t_star.max(1e-9);
        }
        println!(
            "{n:>5} {m:>4} {target:>5.1} {:>7}/{reps} {:>7}/{reps} {:>11.2} {:>11.2}",
            mass_ok,
            load_ok,
            scales / reps as f64,
            blowups / reps as f64,
        );
    }

    println!("\n--- Lemma 6 (LP2, chains), 25 instances per row ---");
    print_header(&[
        ("n", 5),
        ("chains", 7),
        ("mass ok", 8),
        ("load ok", 8),
        ("len ok", 8),
        ("rounded/t*", 11),
    ]);
    for &(n, z) in &[(12usize, 3usize), (24, 6), (48, 12)] {
        let m = 6;
        let mut mass_ok = 0u32;
        let mut load_ok = 0u32;
        let mut len_ok = 0u32;
        let mut blowups = 0.0f64;
        let reps = 25;
        for seed in 0..reps {
            let mut rng = SmallRng::seed_from_u64(seed * 13 + n as u64);
            let cs = random_chain_set(n, z, &mut rng);
            let chains = cs.chains().to_vec();
            let inst =
                workload::uniform_unrelated(m, n, 0.15, 0.9, Precedence::Chains(cs), &mut rng);
            let sol = solve_lp2(&inst, &chains, 1.0).unwrap();
            let (asg, report) = round_lp2(&inst, &sol).unwrap();
            mass_ok += (report.min_clamped_mass >= 1.0 - 1e-9) as u32;
            load_ok += (report.max_load <= report.load_cap) as u32;
            // Chain-length preservation: rounded chain length <= 7 t* + |C|.
            let lengths_fine = chains.iter().all(|c| {
                let len: u64 = c.iter().map(|&j| asg.length(suu_core::JobId(j))).sum();
                (len as f64) <= 7.0 * sol.t_star + c.len() as f64
            });
            len_ok += lengths_fine as u32;
            blowups += report.max_load as f64 / sol.t_star.max(1e-9);
        }
        println!(
            "{n:>5} {z:>7} {:>7}/{reps} {:>7}/{reps} {:>7}/{reps} {:>11.2}",
            mass_ok,
            load_ok,
            len_ok,
            blowups / reps as f64,
        );
    }

    println!("\nexpected: all guarantee columns full; rounded/fractional stays");
    println!("well under the worst-case 6x of the lemmas (adaptive scale).");
    println!("[{:.1}s]", watch.secs());
}
