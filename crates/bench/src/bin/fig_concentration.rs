//! **F-CONC — Lemma 8**: concentration of `Σ_j y_j d_j` where `y_j` are
//! geometric repetition counts.
//!
//! Lemma 8 states: with `y_j ~ Geom(1/2)`, weights `1 ≤ d_j ≤ W/log η`,
//! and `W ≥ Σ_j 2 d_j`, the weighted sum exceeds `O(cW)` with probability
//! at most `η^(−c)`. The experiment samples the sum and reports empirical
//! exceedance frequencies at multiples of `W` against the bound's decay.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin fig_concentration
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suu_bench::{print_header, Stopwatch};

/// Geometric(1/2) on {1, 2, 3, …}: number of block repetitions until a
/// success with probability 1/2 per attempt.
fn geometric(rng: &mut StdRng) -> u64 {
    let mut k = 1;
    while rng.random_bool(0.5) {
        k += 1;
    }
    k
}

fn main() {
    let watch = Stopwatch::start();
    println!("== F-CONC: Lemma 8 tail of sum(y_j d_j), y_j ~ Geom(1/2) ==\n");
    let samples = 200_000usize;
    println!("{samples} samples per configuration\n");
    print_header(&[
        ("jobs", 6),
        ("eta", 6),
        ("W", 8),
        ("P[>2W]", 9),
        ("P[>3W]", 9),
        ("P[>4W]", 9),
        ("mean/W", 7),
    ]);

    for &(jobs, eta) in &[(16usize, 32f64), (64, 128.0), (256, 512.0)] {
        let mut rng = StdRng::seed_from_u64(6000 + jobs as u64);
        // Weights spread across the allowed range [1, W/log eta]:
        // W = sum 2 d_j by construction (the lemma's tight case).
        let log_eta = eta.log2();
        // Start with uniform weights then scale so max d <= W / log eta.
        let raw: Vec<f64> = (0..jobs).map(|j| 1.0 + (j % 7) as f64).collect();
        let w: f64 = raw.iter().map(|d| 2.0 * d).sum();
        let cap = w / log_eta;
        let d: Vec<f64> = raw.iter().map(|&x| x.min(cap).max(1.0)).collect();
        let w: f64 = d.iter().map(|x| 2.0 * x).sum();

        let mut exceed2 = 0u32;
        let mut exceed3 = 0u32;
        let mut exceed4 = 0u32;
        let mut total = 0.0f64;
        for _ in 0..samples {
            let s: f64 = d.iter().map(|&dj| dj * geometric(&mut rng) as f64).sum();
            total += s;
            exceed2 += (s > 2.0 * w) as u32;
            exceed3 += (s > 3.0 * w) as u32;
            exceed4 += (s > 4.0 * w) as u32;
        }
        let frac = |c: u32| c as f64 / samples as f64;
        println!(
            "{jobs:>6} {eta:>6.0} {w:>8.0} {:>9.6} {:>9.6} {:>9.6} {:>7.3}",
            frac(exceed2),
            frac(exceed3),
            frac(exceed4),
            total / samples as f64 / w,
        );
    }

    println!("\nexpected: E[sum] = W (each E[y]=2, W = sum 2d). exceedance");
    println!("probabilities fall off geometrically in the multiple, and faster");
    println!("for larger eta — the 1/eta^c shape of Lemma 8.");
    println!("[{:.1}s]", watch.secs());
}
