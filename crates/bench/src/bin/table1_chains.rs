//! **T1-C — Table 1, row "Disjoint Chains"**: measured `E[T]/LB` of
//! `SUU-C` (Theorem 9) vs baselines as `n` grows.
//!
//! LB is the Lemma-5-style bound `max(t_LP2(½)/2, longest chain, gang
//! rate)`. The reproducible shape: `SUU-C` stays within a slowly growing
//! factor of LB (the paper's `O(log(n+m) log log min(m,n))`), while the
//! sequential baseline's ratio grows with `n/m` — it can only exploit one
//! job's worth of parallelism per step.
//!
//! Machines scale with jobs (`m = n/4`) so the sweep stays in the regime
//! the chains algorithm targets (parallelism available, sequential
//! baselines waste it).
//!
//! ```sh
//! cargo run --release -p suu-bench --bin table1_chains
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use suu_algos::baselines::{GangSequentialPolicy, LrGreedyPolicy};
use suu_algos::bounds::lower_bound;
use suu_algos::lp2::{round_lp2, solve_lp2};
use suu_algos::{ChainConfig, ChainPolicy};
use suu_bench::{mean_makespan, print_header, Stopwatch};
use suu_core::{workload, Precedence};
use suu_dag::generators::equal_chains;
use suu_sim::{run_trials, MonteCarloConfig};

fn main() {
    let watch = Stopwatch::start();
    println!("== T1-C: Table 1 (Disjoint chains) — E[T]/LB vs n ==\n");
    println!("workload: n/8 chains of exactly 8 jobs, q ~ U[0.2,0.85), m = n/4,");
    println!("40 trials/point\n");
    print_header(&[
        ("n", 5),
        ("m", 4),
        ("chains", 7),
        ("LB", 8),
        ("gang", 8),
        ("greedy", 8),
        ("SUU-C", 8),
        ("gang/SUU-C", 11),
    ]);

    for &n in &[16usize, 32, 64, 96] {
        let m = (n / 4).max(4);
        let z = (n / 8).max(2);
        let mut rng = SmallRng::seed_from_u64(2000 + n as u64);
        let cs = equal_chains(n, 8);
        let chains = cs.chains().to_vec();
        let inst = Arc::new(workload::uniform_unrelated(
            m,
            n,
            0.2,
            0.85,
            Precedence::Chains(cs),
            &mut rng,
        ));
        let lb = lower_bound(&inst).expect("lower bound");
        let mc = MonteCarloConfig {
            trials: 40,
            base_seed: n as u64,
            ..Default::default()
        };
        // Amortize the LP2 solve + rounding across all trials/workers.
        let sol = solve_lp2(&inst, &chains, 1.0).expect("LP2");
        let (assignment, _) = round_lp2(&inst, &sol).expect("rounding");
        let seed_ctr = AtomicU64::new(0);

        let gang = mean_makespan(&run_trials(&inst, GangSequentialPolicy::new, &mc)) / lb;
        let greedy =
            mean_makespan(&run_trials(&inst, || LrGreedyPolicy::new(inst.clone()), &mc)) / lb;
        let suu_c = mean_makespan(&run_trials(
            &inst,
            || {
                let cfg = ChainConfig {
                    seed: 0xC4A1 + seed_ctr.fetch_add(1, Ordering::Relaxed),
                    ..ChainConfig::default()
                };
                ChainPolicy::from_parts(
                    inst.clone(),
                    chains.clone(),
                    assignment.clone(),
                    sol.t_star,
                    cfg,
                )
                .unwrap()
            },
            &mc,
        )) / lb;
        println!(
            "{n:>5} {m:>4} {z:>7} {lb:>8.2} {gang:>8.2} {greedy:>8.2} {suu_c:>8.2} {:>11.2}",
            gang / suu_c
        );
    }

    println!("\npaper: prior best O(log m log n log(n+m)/log log(n+m)) vs this");
    println!("work O(log(n+m) log log min(m,n)). expected shape: SUU-C's ratio");
    println!("grows slowly while the sequential baseline scales with n/m, so");
    println!("gang/SUU-C widens as n grows.");
    println!("[{:.1}s]", watch.secs());
}
