//! **T1-C — Table 1, row "Disjoint Chains"**: measured `E[T]/LB` of
//! `SUU-C` (Theorem 9) vs baselines as `n` grows.
//!
//! LB is the Lemma-5-style bound `max(t_LP2(½)/2, longest chain, gang
//! rate)`. The reproducible shape: `SUU-C` stays within a slowly growing
//! factor of LB (the paper's `O(log(n+m) log log min(m,n))`), while the
//! sequential baseline's ratio grows with `n/m` — it can only exploit one
//! job's worth of parallelism per step.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin table1_chains
//! ```

use suu_bench::runner::{run_race, Race};
use suu_bench::scenario::Scenario;
use suu_sim::Precision;

fn main() {
    run_race(Race {
        title: "T1-C: Table 1 (Disjoint chains) — E[T]/LB vs n".to_string(),
        generated_by: "table1_chains".to_string(),
        scenarios: [12usize, 24, 48, 96]
            .into_iter()
            .map(|n| Scenario::chains((n / 4).max(3), n, (n / 4).max(2), 2000 + n as u64))
            .collect(),
        policies: ["gang-sequential", "greedy-lr", "suu-c"]
            .map(String::from)
            .to_vec(),
        // Adaptive stopping at 2% relative CI (old fixed budget: 30).
        precision: Some(Precision::TargetCi {
            half_width: 0.02,
            relative: true,
            min_trials: 16,
            max_trials: 120,
        }),
        paired: vec![("suu-c".to_string(), "greedy-lr".to_string())],
        master_seed: 0x72,
        ratios_to_lower_bound: true,
        json_path: Some("target/results/table1_chains.json".into()),
        ..Race::default()
    });
    println!("\nexpected shape: SUU-C's ratio grows slowly; gang-sequential's");
    println!("ratio grows with n/m as it wastes the available parallelism.");
}
