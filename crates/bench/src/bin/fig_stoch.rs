//! **F-STOCH — Appendix C, Theorem 13**: `STC-I` competitive ratio
//! against the clairvoyant Lawler–Labetoulle bound.
//!
//! For each realization of the exponential lengths, `T_LL({p_j})` is the
//! *exact offline optimum* for `R|pmtn|Cmax` — no schedule can beat it —
//! so the measured ratio upper-bounds the true approximation factor.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin fig_stoch
//! ```

use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};
use suu_bench::{print_header, Stopwatch};
use suu_stoch::{StcI, StochInstance};

fn random_instance(seed: u64, m: usize, n: usize) -> StochInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lambda: Vec<f64> = (0..n).map(|_| rng.random_range(0.25..4.0)).collect();
    let v: Vec<f64> = (0..m * n).map(|_| rng.random_range(0.3..3.0)).collect();
    StochInstance::new(m, n, lambda, v).expect("valid instance")
}

fn main() {
    let watch = Stopwatch::start();
    println!("== F-STOCH: STC-I vs clairvoyant LL bound (Theorem 13) ==\n");
    println!("unrelated speeds ~ U[0.3,3), rates ~ U[0.25,4), 120 trials/point\n");
    print_header(&[
        ("n", 5),
        ("m", 4),
        ("K", 4),
        ("mean ratio", 11),
        ("p95 ratio", 10),
        ("mean rounds", 12),
        ("fallback%", 10),
    ]);

    for &(n, m) in &[(8usize, 3usize), (16, 4), (32, 8), (64, 8)] {
        let inst = random_instance(8000 + n as u64, m, n);
        let stc = StcI::new(&inst);
        let trials = 120u64;
        let mut ratios = Vec::with_capacity(trials as usize);
        let mut rounds = 0.0f64;
        let mut fallbacks = 0u32;
        for seed in 0..trials {
            let out = stc
                .run(&inst, &mut StdRng::seed_from_u64(seed))
                .expect("STC-I run");
            ratios.push(out.makespan / out.clairvoyant_lb.max(1e-12));
            rounds += out.rounds_used as f64;
            fallbacks += out.fallback_used as u32;
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let mean = ratios.iter().sum::<f64>() / trials as f64;
        let p95 = ratios[(trials as usize * 95) / 100];
        println!(
            "{n:>5} {m:>4} {:>4} {mean:>11.2} {p95:>10.2} {:>12.2} {:>9.1}%",
            stc.k_max(),
            rounds / trials as f64,
            100.0 * fallbacks as f64 / trials as f64,
        );
    }

    println!("\nexpected: mean competitive ratio a small constant, flat in n");
    println!("(Theorem 13's O(log log min(m,n)) with tiny constants); rounds");
    println!("track K; the sequential fallback almost never fires.");
    println!("[{:.1}s]", watch.secs());
}
