//! **Ablation — rounding scale (DESIGN.md §4.6)**: the paper's Lemma-2
//! proof scales fractional assignments by 6 before flooring; our default
//! rounding adaptively tries 1/2/3 first and verifies the identical
//! guarantees. This ablation measures what that buys end-to-end.
//!
//! Also ablates the `SUU-C` options through registry parameter specs —
//! the option toggles are just different policy columns of one race:
//! `suu-c`, `suu-c(delay=false)`, `suu-c(coarsen=true)`.
//!
//! ```sh
//! cargo run --release -p suu-bench --bin ablation_rounding
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use suu_algos::lp1::solve_lp1;
use suu_algos::rounding::{round_lp1_with, ScaleMode};
use suu_bench::runner::{run_race, Race};
use suu_bench::scenario::Scenario;
use suu_bench::{print_header, Stopwatch};
use suu_core::{workload, Precedence};

fn main() {
    let watch = Stopwatch::start();
    println!("== Ablation: adaptive vs paper-exact rounding scale ==\n");
    println!("--- schedule length (timetable period) for LP1(J, 1/2) ---");
    print_header(&[
        ("n", 5),
        ("m", 4),
        ("t*", 8),
        ("paper(6x)", 10),
        ("adaptive", 9),
        ("saving", 7),
    ]);
    for &(n, m) in &[(16usize, 4usize), (32, 8), (64, 8), (128, 16)] {
        let mut rng = SmallRng::seed_from_u64(9000 + n as u64);
        let inst = workload::uniform_unrelated(m, n, 0.15, 0.95, Precedence::Independent, &mut rng);
        let jobs: Vec<u32> = (0..n as u32).collect();
        let sol = solve_lp1(&inst, &jobs, 0.5).unwrap();
        let (asg_paper, rep_paper) = round_lp1_with(&inst, &sol, ScaleMode::PaperExact).unwrap();
        let (asg_adapt, rep_adapt) = round_lp1_with(&inst, &sol, ScaleMode::Adaptive).unwrap();
        // Both must meet the Lemma-2 guarantees.
        assert!(rep_paper.min_clamped_mass >= 0.5 - 1e-9);
        assert!(rep_adapt.min_clamped_mass >= 0.5 - 1e-9);
        let lp = asg_paper.max_load() as f64;
        let la = asg_adapt.max_load() as f64;
        println!(
            "{n:>5} {m:>4} {:>8.2} {lp:>10.0} {la:>9.0} {:>6.1}%",
            sol.t_star,
            100.0 * (1.0 - la / lp)
        );
    }

    println!("\n--- SUU-C end-to-end makespan under option toggles ---\n");
    run_race(Race {
        title: String::new(),
        generated_by: "ablation_rounding".to_string(),
        scenarios: vec![Scenario::chains(6, 36, 9, 9999)],
        policies: ["suu-c", "suu-c(delay=false)", "suu-c(coarsen=true)"]
            .map(String::from)
            .to_vec(),
        trials: 60,
        master_seed: 4,
        ratios_to_lower_bound: false,
        json_path: Some("target/results/ablation_rounding.json".into()),
        ..Race::default()
    });

    println!("\nexpected: adaptive rounding shortens periods ~2-4x with identical");
    println!("guarantees; disabling delays helps small instances (congestion is");
    println!("cheap there) but risks the Theorem-7 blowup at scale — see");
    println!("fig_congestion; coarsening is near-neutral when t_LP2 is small.");
    println!("[{:.1}s]", watch.secs());
}
