//! Adaptive frontier sweeps: a declarative parameter grid — scenario
//! family × m × n × q-range — refined until every point's policy
//! ranking is statistically resolved (or the budget cap is hit).
//!
//! The paper's central artifact is a *comparison*: which SUU-* policy
//! wins at which instance shape. This module turns the workspace's
//! ingredients — adaptive precision, common-random-number pairing,
//! resumable content-addressed cells — into that phase diagram:
//!
//! * [`SweepSpec`] parses the grid (`m`/`n` axes per family block, a
//!   `q` axis of `[lo, hi]` ranges for the uniform family, fixed extra
//!   params otherwise) and expands it into [`GridPoint`]s whose
//!   scenario parameters are normalized through
//!   [`RequestScenario::from_json`] — the same canonicalization the
//!   serving tier's cache keys hash, so sweep cells and ad-hoc race
//!   cells are the *same* cells.
//! * [`run_sweep`] drives the refinement loop against any
//!   [`RaceEvaluator`] (a spawned daemon or the in-process service —
//!   both answer the identical single-cell race request). Each round,
//!   every unresolved point evaluates all policies at the current rung
//!   of a shared [`BudgetLadder`]; a point retires when the winner's
//!   [`PairedMargin`] against **every** rival clears zero, and only the
//!   still-straddling points are granted the next rung.
//! * The artifact ([`suu_core::schemas::RESULTS_SWEEP_V1`]) records per
//!   point the winner, its margin against the closest rival, per-policy
//!   statistics with `cell_key` provenance, a phase-diagram section
//!   (winner regions plus the frontier edges between grid-adjacent
//!   points with different winners), and trial accounting against the
//!   equivalent fixed-budget grid.
//!
//! **Resume-invariance by construction.** The artifact records only
//! terminal per-cell state (statistics at the final trial count), never
//! the number of rounds the loop took to get there. A re-run over a
//! warm cache asks for rung `r` and gets the cached count `c ≥ r`; but
//! any cached count is a rung the cold run also visited, and the margin
//! decision at that count is the same pure function of the same
//! statistics — so an interrupted sweep re-run over its cache root, or
//! a completed sweep replayed, lands on a byte-identical document. No
//! wall clocks, no unordered iteration: the whole document is a pure
//! function of the spec.

use crate::request::RequestScenario;
use suu_core::json::Json;
use suu_sim::sweep::{BudgetLadder, PairedMargin};

/// Artifact schema identifier.
pub const SWEEP_SCHEMA: &str = suu_core::schemas::RESULTS_SWEEP_V1;

/// Most grid points one spec may expand to.
pub const MAX_POINTS: usize = 1024;
/// Most policies one sweep may race.
pub const MAX_SWEEP_POLICIES: usize = 8;

/// One expanded grid point: a normalized scenario plus its grid
/// coordinates (block index and per-axis indices, for adjacency).
pub struct GridPoint {
    /// Stable point identifier, e.g. `uniform-m2-n4-q0.25-0.55`.
    pub id: String,
    /// Index of the grid block this point came from.
    pub block: usize,
    /// Index into the block's `m` axis.
    pub mi: usize,
    /// Index into the block's `n` axis.
    pub ni: usize,
    /// Index into the block's `q` axis (0 when the block has none).
    pub qi: usize,
    /// The normalized scenario (same canonical params the cache hashes).
    pub scenario: RequestScenario,
}

impl GridPoint {
    /// Grid adjacency: same block, exactly one axis index differing by
    /// exactly one step — the neighbor relation the phase diagram's
    /// frontier edges are drawn over.
    pub fn is_neighbor(&self, other: &GridPoint) -> bool {
        if self.block != other.block {
            return false;
        }
        let dm = self.mi.abs_diff(other.mi);
        let dn = self.ni.abs_diff(other.ni);
        let dq = self.qi.abs_diff(other.qi);
        dm + dn + dq == 1
    }
}

/// A parsed, expanded sweep specification.
pub struct SweepSpec {
    /// Sweep name, echoed into the artifact.
    pub name: String,
    /// Master seed for every evaluation (the artifact is a pure
    /// function of the spec, this seed included).
    pub master_seed: u64,
    /// Scenario seed shared by every grid point.
    pub scenario_seed: u64,
    /// Policies raced at every point (2..=[`MAX_SWEEP_POLICIES`]).
    pub policies: Vec<String>,
    /// The trial-budget schedule every unresolved point climbs.
    pub ladder: BudgetLadder,
    /// The grid blocks as given (normalized echo for the artifact).
    pub grid_echo: Json,
    /// Every expanded grid point, in deterministic grid order.
    pub points: Vec<GridPoint>,
}

fn spec_err(what: impl Into<String>) -> String {
    format!("sweep spec: {}", what.into())
}

fn axis_u64(block: &Json, key: &str, bi: usize) -> Result<Vec<u64>, String> {
    let arr = block
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| spec_err(format!("grid block {bi}: missing array '{key}'")))?;
    if arr.is_empty() {
        return Err(spec_err(format!(
            "grid block {bi}: '{key}' must be non-empty"
        )));
    }
    arr.iter()
        .map(|v| {
            v.as_u64().ok_or_else(|| {
                spec_err(format!("grid block {bi}: '{key}' entries must be integers"))
            })
        })
        .collect()
}

impl SweepSpec {
    /// Parse and expand a spec document.
    pub fn from_json(doc: &Json) -> Result<SweepSpec, String> {
        let name = match doc.get("name") {
            None => "sweep".to_string(),
            Some(v) => {
                let s = v
                    .as_str()
                    .ok_or_else(|| spec_err("'name' must be a string"))?;
                if s.is_empty()
                    || !s
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
                {
                    return Err(spec_err("'name' must be non-empty [a-z0-9-]"));
                }
                s.to_string()
            }
        };
        let master_seed = doc
            .get("master_seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| spec_err("missing integer 'master_seed'"))?;
        let scenario_seed = match doc.get("scenario_seed") {
            None => 1,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| spec_err("'scenario_seed' must be an integer"))?,
        };
        let policies: Vec<String> = doc
            .get("policies")
            .and_then(Json::as_array)
            .ok_or_else(|| spec_err("missing array 'policies'"))?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| spec_err("'policies' entries must be strings"))
            })
            .collect::<Result<_, _>>()?;
        if policies.len() < 2 || policies.len() > MAX_SWEEP_POLICIES {
            return Err(spec_err(format!(
                "need 2..={MAX_SWEEP_POLICIES} policies, got {}",
                policies.len()
            )));
        }
        let mut dedup = policies.clone();
        dedup.sort();
        dedup.dedup();
        if dedup.len() != policies.len() {
            return Err(spec_err("'policies' entries must be distinct"));
        }
        let budget = doc
            .get("budget")
            .ok_or_else(|| spec_err("missing object 'budget'"))?;
        let initial = budget
            .get("initial")
            .and_then(Json::as_u64)
            .filter(|&v| v > 0)
            .ok_or_else(|| spec_err("'budget.initial' must be a positive integer"))?;
        let max = budget
            .get("max")
            .and_then(Json::as_u64)
            .filter(|&v| v > 0)
            .ok_or_else(|| spec_err("'budget.max' must be a positive integer"))?;
        if initial > max || max > crate::request::MAX_TRIALS {
            return Err(spec_err(format!(
                "need budget.initial <= budget.max <= {}",
                crate::request::MAX_TRIALS
            )));
        }
        let ladder = BudgetLadder::new(initial as usize, max as usize);

        let blocks = doc
            .get("grid")
            .and_then(Json::as_array)
            .ok_or_else(|| spec_err("missing array 'grid'"))?;
        if blocks.is_empty() {
            return Err(spec_err("'grid' must be non-empty"));
        }
        let mut points = Vec::new();
        let mut echo_blocks = Vec::new();
        for (bi, block) in blocks.iter().enumerate() {
            let family = block
                .get("family")
                .and_then(Json::as_str)
                .ok_or_else(|| spec_err(format!("grid block {bi}: missing string 'family'")))?
                .to_string();
            let ms = axis_u64(block, "m", bi)?;
            let ns = axis_u64(block, "n", bi)?;
            let extra = match block.get("params") {
                None => Json::obj(),
                Some(p @ Json::Obj(_)) => p.clone(),
                Some(_) => {
                    return Err(spec_err(format!(
                        "grid block {bi}: 'params' must be an object"
                    )))
                }
            };
            // The q axis: `[lo, hi]` survival-probability ranges, only
            // meaningful for the uniform family (the one whose params
            // are a range). Other families vary through 'params'.
            let qs: Vec<Option<(f64, f64)>> = match block.get("q") {
                None if family == "uniform" => {
                    return Err(spec_err(format!(
                        "grid block {bi}: uniform blocks need a 'q' axis of [lo, hi] ranges"
                    )))
                }
                None => vec![None],
                Some(_) if family != "uniform" => {
                    return Err(spec_err(format!(
                        "grid block {bi}: 'q' axis only applies to the uniform family"
                    )))
                }
                Some(q) => {
                    let arr = q.as_array().filter(|a| !a.is_empty()).ok_or_else(|| {
                        spec_err(format!("grid block {bi}: 'q' must be a non-empty array"))
                    })?;
                    arr.iter()
                        .map(|pair| {
                            let pair = pair.as_array().unwrap_or(&[]);
                            match pair {
                                [lo, hi] => lo.as_f64().zip(hi.as_f64()).ok_or_else(|| {
                                    spec_err(format!(
                                        "grid block {bi}: 'q' entries must be [lo, hi] numbers"
                                    ))
                                }),
                                _ => Err(spec_err(format!(
                                    "grid block {bi}: 'q' entries must be [lo, hi] pairs"
                                ))),
                            }
                            .map(Some)
                        })
                        .collect::<Result<Vec<_>, _>>()?
                }
            };
            for (mi, &m) in ms.iter().enumerate() {
                for (ni, &n) in ns.iter().enumerate() {
                    for (qi, q) in qs.iter().enumerate() {
                        let mut params = extra
                            .clone()
                            .field("family", family.as_str())
                            .field("m", m)
                            .field("n", n)
                            .field("seed", scenario_seed);
                        let mut id = format!("{family}-m{m}-n{n}");
                        if let Some((lo, hi)) = q {
                            params = params.field("lo", *lo).field("hi", *hi);
                            id.push_str(&format!("-q{lo}-{hi}"));
                        }
                        let scenario = RequestScenario::from_json(&params)
                            .map_err(|e| spec_err(format!("point {id}: {e}")))?;
                        points.push(GridPoint {
                            id,
                            block: bi,
                            mi,
                            ni,
                            qi,
                            scenario,
                        });
                        if points.len() > MAX_POINTS {
                            return Err(spec_err(format!("grid exceeds {MAX_POINTS} points")));
                        }
                    }
                }
            }
            let q_echo = match block.get("q") {
                Some(q) => q.clone(),
                None => Json::Null,
            };
            echo_blocks.push(
                Json::obj()
                    .field("family", family)
                    .field("m", Json::Arr(ms.into_iter().map(Json::UInt).collect()))
                    .field("n", Json::Arr(ns.into_iter().map(Json::UInt).collect()))
                    .field("q", q_echo)
                    .field("params", extra),
            );
        }
        let mut ids: Vec<&str> = points.iter().map(|p| p.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != points.len() {
            return Err(spec_err("grid expands to duplicate points"));
        }
        Ok(SweepSpec {
            name,
            master_seed,
            scenario_seed,
            policies,
            ladder,
            grid_echo: Json::Arr(echo_blocks),
            points,
        })
    }

    /// The built-in smoke grid: a 2×2×2 uniform frontier (m × n × q)
    /// racing the paper's semi-oblivious policy against the greedy
    /// Lin–Rajaraman baseline. Small enough for CI, structured enough
    /// that some points resolve on the first rung and others climb.
    pub fn smoke() -> SweepSpec {
        let doc = Json::obj()
            .field("name", "smoke")
            .field("master_seed", 42u64)
            .field("scenario_seed", 1u64)
            .field(
                "policies",
                Json::Arr(vec![
                    Json::Str("suu-i-sem".into()),
                    Json::Str("greedy-lr".into()),
                ]),
            )
            .field(
                "budget",
                Json::obj().field("initial", 8u64).field("max", 96u64),
            )
            .field(
                "grid",
                Json::Arr(vec![Json::obj()
                    .field("family", "uniform")
                    .field("m", Json::Arr(vec![Json::UInt(2), Json::UInt(3)]))
                    .field("n", Json::Arr(vec![Json::UInt(4), Json::UInt(6)]))
                    .field(
                        "q",
                        Json::Arr(vec![
                            Json::Arr(vec![Json::Num(0.25), Json::Num(0.55)]),
                            Json::Arr(vec![Json::Num(0.55), Json::Num(0.85)]),
                        ]),
                    )]),
            );
        // The literal above is well-formed by construction.
        match SweepSpec::from_json(&doc) {
            Ok(spec) => spec,
            Err(e) => unreachable!("built-in smoke spec must parse: {e}"),
        }
    }

    /// The single-cell race request for one (point, policy, budget)
    /// evaluation — the exact JSON both the daemon's `POST /v1/race`
    /// and the in-process service accept, so both modes compute (and
    /// cache) the identical cell.
    pub fn cell_request(&self, point: &GridPoint, policy: &str, trials: usize) -> Json {
        Json::obj()
            .field("scenarios", Json::Arr(vec![point.scenario.params.clone()]))
            .field("policies", Json::Arr(vec![Json::Str(policy.to_string())]))
            .field("trials", trials)
            .field("master_seed", self.master_seed)
    }
}

/// One completed race evaluation: anything that can answer the
/// single-cell race requests a sweep issues — a spawned daemon over
/// HTTP, the in-process [`Service`](../../suu_serve) path, or a stub in
/// tests — returning the parsed `suu-results/v2` document.
pub trait RaceEvaluator {
    /// Evaluate one single-cell race request to completion.
    fn race(&mut self, request: &Json) -> Result<Json, String>;
}

impl<F> RaceEvaluator for F
where
    F: FnMut(&Json) -> Result<Json, String>,
{
    fn race(&mut self, request: &Json) -> Result<Json, String> {
        self(request)
    }
}

/// The per-policy terminal statistics the sweep extracts from each
/// results document.
#[derive(Clone)]
struct PolicyCell {
    policy: String,
    mean: f64,
    ci95: f64,
    trials_used: u64,
    cell_key: String,
}

/// Pull the single cell out of a `suu-results/v2` document.
fn extract_cell(doc: &Json, point: &str, policy: &str) -> Result<PolicyCell, String> {
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some(suu_core::schemas::RESULTS_V2) {
        return Err(format!(
            "point {point}: unexpected results schema {schema:?}"
        ));
    }
    if let Some(failures) = doc.get("failures").and_then(Json::as_array) {
        if let Some(first) = failures.first() {
            return Err(format!(
                "point {point}: policy {policy} failed: {}",
                first.to_compact()
            ));
        }
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("point {point}: results document has no cells"))?;
    let [cell] = cells else {
        return Err(format!(
            "point {point}: expected exactly one cell, got {}",
            cells.len()
        ));
    };
    // A capability-gated or failed cell carries a reason instead of
    // statistics — surface it; a sweep's policy set must be able to run
    // on every grid point.
    for key in ["skipped", "error"] {
        if let Some(reason) = cell.get(key) {
            return Err(format!(
                "point {point}: policy {policy} {key}: {} \
                 (every sweep policy must support every grid point)",
                reason.to_compact()
            ));
        }
    }
    let num = |key: &str| {
        cell.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("point {point}: cell missing numeric '{key}'"))
    };
    Ok(PolicyCell {
        policy: policy.to_string(),
        mean: num("mean_makespan")?,
        ci95: num("ci95")?,
        trials_used: cell
            .get("trials_used")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("point {point}: cell missing 'trials_used'"))?,
        cell_key: cell
            .get("cell_key")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("point {point}: cell missing 'cell_key' provenance"))?
            .to_string(),
    })
}

/// Terminal state of one grid point.
struct PointOutcome {
    /// Index of the winning policy (lowest mean makespan).
    winner: usize,
    /// Margin against the closest rival.
    margin: PairedMargin,
    /// `true` when every rival's margin cleared zero before the cap.
    resolved: bool,
    /// Per-policy terminal cells, in spec policy order.
    cells: Vec<PolicyCell>,
}

/// Judge one point from its per-policy cells: winner by lowest mean,
/// resolution by the winner's conservative CRN margin against every
/// rival.
fn judge(cells: &[PolicyCell]) -> (usize, PairedMargin, bool) {
    let winner = cells
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.mean.total_cmp(&b.mean))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut closest: Option<PairedMargin> = None;
    let mut resolved = true;
    for (i, rival) in cells.iter().enumerate() {
        if i == winner {
            continue;
        }
        let m = PairedMargin::from_marginals(
            rival.mean,
            rival.ci95,
            cells[winner].mean,
            cells[winner].ci95,
        );
        resolved &= m.resolved();
        if closest.is_none_or(|c| m.delta < c.delta) {
            closest = Some(m);
        }
    }
    (
        winner,
        closest.unwrap_or(PairedMargin {
            delta: 0.0,
            ci95: 0.0,
        }),
        resolved,
    )
}

/// Run the sweep to completion against `eval`, reporting round progress
/// through `progress`, and return the `suu-results/sweep/v1` artifact.
pub fn run_sweep(
    spec: &SweepSpec,
    eval: &mut dyn RaceEvaluator,
    progress: &mut dyn FnMut(String),
) -> Result<Json, String> {
    let n_points = spec.points.len();
    let mut budgets: Vec<usize> = vec![spec.ladder.initial.min(spec.ladder.max); n_points];
    let mut outcomes: Vec<Option<PointOutcome>> = Vec::new();
    outcomes.resize_with(n_points, || None);
    let mut live: Vec<usize> = (0..n_points).collect();
    let mut round = 0u64;
    while !live.is_empty() {
        round += 1;
        progress(format!(
            "round {round}: {} unresolved point(s), budget rungs {:?}..",
            live.len(),
            budgets[live[0]]
        ));
        let mut still = Vec::new();
        for &pi in &live {
            let point = &spec.points[pi];
            let budget = budgets[pi];
            let mut cells = Vec::with_capacity(spec.policies.len());
            for policy in &spec.policies {
                let request = spec.cell_request(point, policy, budget);
                let doc = eval.race(&request)?;
                cells.push(extract_cell(&doc, &point.id, policy)?);
            }
            let (winner, margin, resolved) = judge(&cells);
            match spec.ladder.next(budget) {
                Some(next) if !resolved => {
                    budgets[pi] = next;
                    still.push(pi);
                }
                _ => {
                    outcomes[pi] = Some(PointOutcome {
                        winner,
                        margin,
                        resolved,
                        cells,
                    });
                }
            }
        }
        progress(format!(
            "round {round} done: {} point(s) retired, {} still open",
            live.len() - still.len(),
            still.len()
        ));
        live = still;
    }
    build_artifact(spec, &outcomes)
}

fn build_artifact(spec: &SweepSpec, outcomes: &[Option<PointOutcome>]) -> Result<Json, String> {
    let mut cells_out = Vec::with_capacity(spec.points.len());
    let mut trials_adaptive: u64 = 0;
    let mut max_cell_trials: u64 = 0;
    let mut resolved_count: u64 = 0;
    for (point, outcome) in spec.points.iter().zip(outcomes) {
        let outcome = outcome
            .as_ref()
            .ok_or_else(|| format!("point {} never retired", point.id))?;
        let mut policy_entries = Vec::with_capacity(outcome.cells.len());
        for cell in &outcome.cells {
            trials_adaptive += cell.trials_used;
            max_cell_trials = max_cell_trials.max(cell.trials_used);
            policy_entries.push(
                Json::obj()
                    .field("policy", cell.policy.as_str())
                    .field("mean_makespan", cell.mean)
                    .field("ci95", cell.ci95)
                    .field("trials_used", cell.trials_used)
                    .field("cell_key", cell.cell_key.as_str()),
            );
        }
        resolved_count += u64::from(outcome.resolved);
        cells_out.push(
            Json::obj()
                .field("point", point.id.as_str())
                .field("scenario_id", point.scenario.scenario.id.as_str())
                .field("params", point.scenario.params.clone())
                .field("winner", spec.policies[outcome.winner].as_str())
                .field("resolved", outcome.resolved)
                .field("margin_mean", outcome.margin.delta)
                .field("margin_ci95", outcome.margin.ci95)
                .field(
                    "trials_total",
                    outcome.cells.iter().map(|c| c.trials_used).sum::<u64>(),
                )
                .field("policies", Json::Arr(policy_entries)),
        );
    }

    // Phase diagram: resolved points grouped by winner (regions), open
    // points listed, and frontier edges between grid-adjacent points
    // whose winners differ.
    let mut regions: Vec<(String, Vec<Json>)> = Vec::new();
    let mut open = Vec::new();
    for (point, outcome) in spec.points.iter().zip(outcomes) {
        let Some(outcome) = outcome.as_ref() else {
            continue;
        };
        if !outcome.resolved {
            open.push(Json::Str(point.id.clone()));
            continue;
        }
        let winner = spec.policies[outcome.winner].as_str();
        match regions.iter_mut().find(|(w, _)| w == winner) {
            Some((_, pts)) => pts.push(Json::Str(point.id.clone())),
            None => regions.push((winner.to_string(), vec![Json::Str(point.id.clone())])),
        }
    }
    regions.sort_by(|(a, _), (b, _)| a.cmp(b));
    let mut frontier = Vec::new();
    for i in 0..spec.points.len() {
        for j in (i + 1)..spec.points.len() {
            let (Some(a), Some(b)) = (&outcomes[i], &outcomes[j]) else {
                continue;
            };
            if !spec.points[i].is_neighbor(&spec.points[j]) {
                continue;
            }
            if a.resolved && b.resolved && a.winner != b.winner {
                frontier.push(
                    Json::obj()
                        .field("a", spec.points[i].id.as_str())
                        .field("winner_a", spec.policies[a.winner].as_str())
                        .field("b", spec.points[j].id.as_str())
                        .field("winner_b", spec.policies[b.winner].as_str()),
                );
            }
        }
    }

    let n_points = spec.points.len() as u64;
    let n_policies = spec.policies.len() as u64;
    // The fixed-budget grid reaching the same worst-case final CI gives
    // *every* cell the budget the hungriest cell needed.
    let trials_fixed = n_points * n_policies * max_cell_trials;
    Ok(Json::obj()
        .field("schema", SWEEP_SCHEMA)
        .field("generated_by", "suu-sweep")
        .field("name", spec.name.as_str())
        .field("master_seed", spec.master_seed)
        .field("scenario_seed", spec.scenario_seed)
        .field(
            "policies",
            Json::Arr(spec.policies.iter().map(|p| Json::Str(p.clone())).collect()),
        )
        .field(
            "budget",
            Json::obj()
                .field("initial", spec.ladder.initial)
                .field("max", spec.ladder.max),
        )
        .field("grid", spec.grid_echo.clone())
        .field("cells", Json::Arr(cells_out))
        .field(
            "phase_diagram",
            Json::obj()
                .field(
                    "regions",
                    Json::Arr(
                        regions
                            .into_iter()
                            .map(|(w, pts)| {
                                Json::obj()
                                    .field("winner", w)
                                    .field("points", Json::Arr(pts))
                            })
                            .collect(),
                    ),
                )
                .field("open", Json::Arr(open))
                .field("frontier", Json::Arr(frontier)),
        )
        .field(
            "totals",
            Json::obj()
                .field("points", n_points)
                .field("resolved", resolved_count)
                .field("open", n_points - resolved_count)
                .field("trials_adaptive", trials_adaptive)
                .field("trials_fixed_equivalent", trials_fixed)
                .field("max_trials_per_cell", max_cell_trials),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A synthetic evaluator with extend-semantics caching: a request
    /// for `trials` on a cell already computed deeper returns the
    /// deeper statistics, exactly like the serving tier's cache. The
    /// two policies differ by a per-point separation; CI shrinks as
    /// `1/sqrt(trials)`.
    struct FakeEval {
        /// cell id -> deepest trial count computed so far.
        cache: BTreeMap<String, u64>,
    }

    impl FakeEval {
        fn new() -> FakeEval {
            FakeEval {
                cache: BTreeMap::new(),
            }
        }

        fn separation(m: u64, lo: f64) -> f64 {
            match (m, (lo * 10.0) as u64) {
                (2, 2) => 5.0, // resolves on the first rung
                (2, 5) => 1.0, // resolves mid-ladder
                (3, 2) => 0.1, // never resolves within the cap
                _ => 0.0,      // exact tie: open at the cap
            }
        }
    }

    impl RaceEvaluator for FakeEval {
        fn race(&mut self, req: &Json) -> Result<Json, String> {
            let sc = &req.get("scenarios").and_then(Json::as_array).unwrap()[0];
            let m = sc.get("m").and_then(Json::as_u64).unwrap();
            let lo = sc.get("lo").and_then(Json::as_f64).unwrap();
            let policy = req.get("policies").and_then(Json::as_array).unwrap()[0]
                .as_str()
                .unwrap()
                .to_string();
            let trials = req.get("trials").and_then(Json::as_u64).unwrap();
            let id = format!("m{m}-lo{lo}-{policy}");
            let have = self.cache.entry(id.clone()).or_insert(0);
            *have = (*have).max(trials);
            let n = *have;
            let mean = if policy == "pol-a" {
                10.0
            } else {
                10.0 + FakeEval::separation(m, lo)
            };
            let cell = Json::obj()
                .field("scenario", sc.get("family").unwrap().clone())
                .field("policy", policy.as_str())
                .field("trials_used", n)
                .field("mean_makespan", mean)
                .field("ci95", 4.0 / (n as f64).sqrt())
                .field("cell_key", format!("fake-{id}"));
            Ok(Json::obj()
                .field("schema", suu_core::schemas::RESULTS_V2)
                .field("cells", Json::Arr(vec![cell])))
        }
    }

    fn test_spec() -> SweepSpec {
        let doc = Json::obj()
            .field("name", "fake")
            .field("master_seed", 7u64)
            .field(
                "policies",
                Json::Arr(vec![Json::Str("pol-a".into()), Json::Str("pol-b".into())]),
            )
            .field(
                "budget",
                Json::obj().field("initial", 8u64).field("max", 64u64),
            )
            .field(
                "grid",
                Json::Arr(vec![Json::obj()
                    .field("family", "uniform")
                    .field("m", Json::Arr(vec![Json::UInt(2), Json::UInt(3)]))
                    .field("n", Json::Arr(vec![Json::UInt(4)]))
                    .field(
                        "q",
                        Json::Arr(vec![
                            Json::Arr(vec![Json::Num(0.2), Json::Num(0.5)]),
                            Json::Arr(vec![Json::Num(0.5), Json::Num(0.8)]),
                        ]),
                    )]),
            );
        SweepSpec::from_json(&doc).expect("test spec parses")
    }

    fn get_total(doc: &Json, key: &str) -> u64 {
        doc.get("totals")
            .unwrap()
            .get(key)
            .and_then(Json::as_u64)
            .unwrap()
    }

    #[test]
    fn refinement_spends_fewer_trials_than_fixed_budget() {
        let spec = test_spec();
        assert_eq!(spec.points.len(), 4);
        let mut eval = FakeEval::new();
        let doc = run_sweep(&spec, &mut eval, &mut |_| {}).expect("sweep runs");

        // The easy point retires on the first rung; the hard ones climb
        // to the cap — so the adaptive total is strictly below giving
        // every cell the hungriest cell's budget.
        let adaptive = get_total(&doc, "trials_adaptive");
        let fixed = get_total(&doc, "trials_fixed_equivalent");
        assert!(adaptive < fixed, "adaptive {adaptive} !< fixed {fixed}");
        assert_eq!(get_total(&doc, "max_trials_per_cell"), 64);
        assert_eq!(get_total(&doc, "points"), 4);
        assert_eq!(get_total(&doc, "resolved"), 2);
        assert_eq!(get_total(&doc, "open"), 2);

        // Every resolved point is won by the lower-mean policy, with
        // cell_key provenance on every policy entry.
        for cell in doc.get("cells").and_then(Json::as_array).unwrap() {
            assert_eq!(cell.get("winner").and_then(Json::as_str), Some("pol-a"));
            for p in cell.get("policies").and_then(Json::as_array).unwrap() {
                let key = p.get("cell_key").and_then(Json::as_str).unwrap();
                assert!(key.starts_with("fake-"), "provenance missing: {key}");
            }
        }
        let regions = doc
            .get("phase_diagram")
            .unwrap()
            .get("regions")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(regions.len(), 1, "one winner, one region");
        assert_eq!(
            doc.get("phase_diagram")
                .unwrap()
                .get("open")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            2
        );
        // Single-winner diagram has no frontier edges.
        assert_eq!(
            doc.get("phase_diagram")
                .unwrap()
                .get("frontier")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn rerun_over_warm_or_partial_cache_is_byte_identical() {
        let spec = test_spec();
        let mut eval = FakeEval::new();
        let cold = run_sweep(&spec, &mut eval, &mut |_| {}).expect("cold sweep");

        // Fully warm cache (a completed run replayed).
        let warm = run_sweep(&spec, &mut eval, &mut |_| {}).expect("warm sweep");
        assert_eq!(cold.to_pretty(), warm.to_pretty(), "warm replay diverged");

        // A cache that is a mid-round prefix of the cold trajectory —
        // what a kill between rounds leaves behind: some cells at the
        // first rung, some already at the second.
        let mut partial = FakeEval::new();
        for (i, (k, v)) in eval.cache.iter().enumerate() {
            let cap = if i % 2 == 0 { 8 } else { 12 };
            partial.cache.insert(k.clone(), (*v).min(cap));
        }
        let resumed = run_sweep(&spec, &mut partial, &mut |_| {}).expect("resumed sweep");
        assert_eq!(cold.to_pretty(), resumed.to_pretty(), "resume diverged");
    }

    #[test]
    fn spec_rejects_malformed_grids() {
        let base = || {
            Json::obj()
                .field("master_seed", 1u64)
                .field(
                    "policies",
                    Json::Arr(vec![Json::Str("a".into()), Json::Str("b".into())]),
                )
                .field(
                    "budget",
                    Json::obj().field("initial", 4u64).field("max", 8u64),
                )
        };
        let uniform_block = |q: Json| {
            Json::obj()
                .field("family", "uniform")
                .field("m", Json::Arr(vec![Json::UInt(2)]))
                .field("n", Json::Arr(vec![Json::UInt(4)]))
                .field("q", q)
        };
        let q_ok = Json::Arr(vec![Json::Arr(vec![Json::Num(0.2), Json::Num(0.5)])]);

        // Well-formed baseline.
        let ok = base().field("grid", Json::Arr(vec![uniform_block(q_ok.clone())]));
        assert!(SweepSpec::from_json(&ok).is_ok());

        // Missing master_seed.
        let doc = ok.clone().field("master_seed", Json::Null);
        assert!(SweepSpec::from_json(&doc).is_err());

        // One policy only.
        let doc = ok
            .clone()
            .field("policies", Json::Arr(vec![Json::Str("a".into())]));
        assert!(SweepSpec::from_json(&doc).is_err());

        // Duplicate policies.
        let doc = ok.clone().field(
            "policies",
            Json::Arr(vec![Json::Str("a".into()), Json::Str("a".into())]),
        );
        assert!(SweepSpec::from_json(&doc).is_err());

        // Uniform without a q axis.
        let no_q = Json::obj()
            .field("family", "uniform")
            .field("m", Json::Arr(vec![Json::UInt(2)]))
            .field("n", Json::Arr(vec![Json::UInt(4)]));
        let doc = base().field("grid", Json::Arr(vec![no_q]));
        assert!(SweepSpec::from_json(&doc).is_err());

        // q on a non-uniform family.
        let chains_q = Json::obj()
            .field("family", "chains")
            .field("m", Json::Arr(vec![Json::UInt(2)]))
            .field("n", Json::Arr(vec![Json::UInt(4)]))
            .field("q", q_ok.clone())
            .field("params", Json::obj().field("chains", 2u64));
        let doc = base().field("grid", Json::Arr(vec![chains_q]));
        assert!(SweepSpec::from_json(&doc).is_err());

        // Duplicate expanded points (same block repeated).
        let doc = base().field(
            "grid",
            Json::Arr(vec![
                uniform_block(q_ok.clone()),
                uniform_block(q_ok.clone()),
            ]),
        );
        assert!(SweepSpec::from_json(&doc).is_err());

        // Invalid scenario params surface with the point id.
        let bad_q = Json::Arr(vec![Json::Arr(vec![Json::Num(0.9), Json::Num(0.2)])]);
        let doc = base().field("grid", Json::Arr(vec![uniform_block(bad_q)]));
        let err = match SweepSpec::from_json(&doc) {
            Err(e) => e,
            Ok(_) => panic!("inverted range must fail"),
        };
        assert!(err.contains("uniform-m2-n4"), "{err}");
    }

    #[test]
    fn smoke_spec_expands_with_grid_adjacency() {
        let spec = SweepSpec::smoke();
        assert_eq!(spec.points.len(), 8);
        assert_eq!(spec.policies.len(), 2);
        // Distinct ids, and ids key the q range even though scenario
        // ids do not (uniform scenario ids omit lo/hi).
        let n_neighbors: usize = (0..spec.points.len())
            .map(|i| {
                (0..spec.points.len())
                    .filter(|&j| j != i && spec.points[i].is_neighbor(&spec.points[j]))
                    .count()
            })
            .sum();
        // A 2×2×2 lattice has 12 edges, counted twice here.
        assert_eq!(n_neighbors, 24);
        assert!(spec.points.iter().any(|p| p.id.contains("-q0.25-0.55")));
    }

    #[test]
    fn judge_picks_lowest_mean_and_requires_every_rival_clear() {
        let cell = |policy: &str, mean: f64, ci95: f64| PolicyCell {
            policy: policy.into(),
            mean,
            ci95,
            trials_used: 10,
            cell_key: "k".into(),
        };
        // Winner clears one rival but not the other: unresolved.
        let cells = [
            cell("a", 10.0, 0.5),
            cell("b", 20.0, 0.5),
            cell("c", 10.4, 0.5),
        ];
        let (winner, margin, resolved) = judge(&cells);
        assert_eq!(winner, 0);
        assert!(!resolved);
        // The recorded margin is the closest rival's.
        assert!((margin.delta - 0.4).abs() < 1e-12);

        // Clear of every rival: resolved.
        let cells = [
            cell("a", 10.0, 0.1),
            cell("b", 20.0, 0.1),
            cell("c", 11.0, 0.1),
        ];
        let (winner, _, resolved) = judge(&cells);
        assert_eq!(winner, 0);
        assert!(resolved);
    }
}
