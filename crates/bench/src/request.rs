//! Wire form of a [`Race`](crate::runner::Race): the request schema the
//! `suu-serve` daemon accepts on `POST /v1/race`.
//!
//! A request names scenarios by **family + constructor parameters**
//! (never by opaque id — the id omits distribution parameters like a
//! uniform family's `[lo, hi)`), the policy specs to race, one stopping
//! rule, and the evaluation context:
//!
//! ```json
//! {
//!   "scenarios": [
//!     {"family": "uniform", "m": 3, "n": 8, "lo": 0.2, "hi": 0.9, "seed": 7},
//!     {"family": "chains",  "m": 3, "n": 9, "chains": 3, "seed": 11}
//!   ],
//!   "policies": ["greedy-lr", "suu-c"],
//!   "trials": 24,
//!   "master_seed": 99,
//!   "semantics": "suu-star",
//!   "ratios_to_lower_bound": false
//! }
//! ```
//!
//! `"trials": n` requests a fixed budget; an adaptive request instead
//! carries `"precision": {"half_width": 0.05, "relative": true,
//! "min_trials": 8, "max_trials": 512}`. Exactly one of the two must be
//! present.
//!
//! Parsing **normalizes**: every scenario's parameters are re-emitted as
//! a fixed field set with fixed spellings ([`RequestScenario::params`]),
//! so two requests that differ only in JSON key order, whitespace, or
//! numeric spelling (`0.20` vs `0.2`) normalize identically — the
//! foundation of the daemon's content-addressed cache keys (canonical
//! JSON via [`Json::to_canonical`], hashed with [`suu_core::fnv1a`]).
//!
//! Sizes are capped ([`MAX_MACHINES`], [`MAX_JOBS`], [`MAX_TRIALS`],
//! [`MAX_SCENARIOS`], [`MAX_POLICIES`]) because this shape is parsed
//! from untrusted network input.

use crate::scenario::Scenario;
use suu_core::json::Json;
use suu_sim::{EngineKind, ExecConfig, Precision, Semantics};

/// Largest accepted `m`.
pub const MAX_MACHINES: u64 = 256;
/// Largest accepted `n` (total jobs, including mapreduce maps+reduces).
pub const MAX_JOBS: u64 = 4096;
/// Largest accepted trial budget (fixed or adaptive ceiling).
pub const MAX_TRIALS: u64 = 1 << 20;
/// Most scenarios per request.
pub const MAX_SCENARIOS: usize = 64;
/// Most policies per request.
pub const MAX_POLICIES: usize = 32;

/// One parsed scenario plus its normalized parameter object.
#[derive(Debug)]
pub struct RequestScenario {
    /// The instantiable scenario.
    pub scenario: Scenario,
    /// Normalized constructor parameters: fixed field set, canonical
    /// spellings. Hash `params.to_canonical()` for a content address.
    pub params: Json,
}

/// A parsed `POST /v1/race` request.
#[derive(Debug)]
pub struct RaceRequest {
    /// Scenarios to sweep, with normalized parameters.
    pub scenarios: Vec<RequestScenario>,
    /// Policy specs to race (textual form, validated downstream by the
    /// registry).
    pub policies: Vec<String>,
    /// The stopping rule (`trials` or `precision` in the wire form).
    pub precision: Precision,
    /// Race master seed (per-scenario seeds derive from it).
    pub master_seed: u64,
    /// Engine configuration.
    pub exec: ExecConfig,
    /// Compute LP lower bounds and report ratios.
    pub ratios_to_lower_bound: bool,
}

fn ctx_err(ctx: &str, msg: impl std::fmt::Display) -> String {
    format!("{ctx}: {msg}")
}

fn get_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ctx_err(ctx, format!("missing non-negative integer '{key}'")))
}

fn get_f64(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ctx_err(ctx, format!("missing number '{key}'")))?;
    if !v.is_finite() {
        return Err(ctx_err(ctx, format!("'{key}' must be finite")));
    }
    Ok(v)
}

fn get_sized(obj: &Json, key: &str, max: u64, ctx: &str) -> Result<usize, String> {
    let v = get_u64(obj, key, ctx)?;
    if v == 0 || v > max {
        return Err(ctx_err(
            ctx,
            format!("'{key}' must be in 1..={max}, got {v}"),
        ));
    }
    Ok(v as usize)
}

impl RequestScenario {
    /// Parse one scenario object (`{"family": ..., ...}`), normalizing
    /// its parameters.
    pub fn from_json(v: &Json) -> Result<RequestScenario, String> {
        let family = v
            .get("family")
            .and_then(Json::as_str)
            .ok_or("scenario: missing string 'family'")?
            .to_string();
        let ctx = format!("scenario '{family}'");
        let seed = get_u64(v, "seed", &ctx)?;
        // Every family takes (m, n)-style sizes except mapreduce, which
        // splits n into maps × reduces.
        let mn = |v: &Json| -> Result<(usize, usize), String> {
            Ok((
                get_sized(v, "m", MAX_MACHINES, &ctx)?,
                get_sized(v, "n", MAX_JOBS, &ctx)?,
            ))
        };
        let base = Json::obj()
            .field("family", family.as_str())
            .field("seed", seed);
        let (scenario, params) = match family.as_str() {
            "uniform" => {
                let (m, n) = mn(v)?;
                let (lo, hi) = (get_f64(v, "lo", &ctx)?, get_f64(v, "hi", &ctx)?);
                if !(0.0 < lo && lo < hi && hi < 1.0) {
                    return Err(ctx_err(&ctx, "need 0 < lo < hi < 1"));
                }
                (
                    Scenario::uniform(m, n, lo, hi, seed),
                    base.field("m", m)
                        .field("n", n)
                        .field("lo", lo)
                        .field("hi", hi),
                )
            }
            "power-law" => {
                let (m, n) = mn(v)?;
                let q_base = get_f64(v, "q_base", &ctx)?;
                let alpha = get_f64(v, "alpha", &ctx)?;
                if !(0.0 < q_base && q_base < 1.0) || alpha <= 0.0 {
                    return Err(ctx_err(&ctx, "need 0 < q_base < 1 and alpha > 0"));
                }
                (
                    Scenario::power_law(m, n, q_base, alpha, seed),
                    base.field("m", m)
                        .field("n", n)
                        .field("q_base", q_base)
                        .field("alpha", alpha),
                )
            }
            "chains" => {
                let (m, n) = mn(v)?;
                let chains = get_sized(v, "chains", n as u64, &ctx)?;
                (
                    Scenario::chains(m, n, chains, seed),
                    base.field("m", m).field("n", n).field("chains", chains),
                )
            }
            "forest" => {
                let (m, n) = mn(v)?;
                let roots = get_sized(v, "roots", n as u64, &ctx)?;
                (
                    Scenario::forest(m, n, roots, seed),
                    base.field("m", m).field("n", n).field("roots", roots),
                )
            }
            "in-forest" => {
                let (m, n) = mn(v)?;
                let roots = get_sized(v, "roots", n as u64, &ctx)?;
                (
                    Scenario::in_forest(m, n, roots, seed),
                    base.field("m", m).field("n", n).field("roots", roots),
                )
            }
            "mapreduce" => {
                let m = get_sized(v, "m", MAX_MACHINES, &ctx)?;
                let maps = get_sized(v, "maps", MAX_JOBS, &ctx)?;
                let reduces = get_sized(v, "reduces", MAX_JOBS, &ctx)?;
                if (maps + reduces) as u64 > MAX_JOBS {
                    return Err(ctx_err(&ctx, format!("maps + reduces exceeds {MAX_JOBS}")));
                }
                (
                    Scenario::mapreduce(maps, reduces, m, seed),
                    base.field("m", m)
                        .field("maps", maps)
                        .field("reduces", reduces),
                )
            }
            "layered" => {
                let (m, n) = mn(v)?;
                let layers = get_sized(v, "layers", n as u64, &ctx)?;
                let density = get_f64(v, "density", &ctx)?;
                if !(0.0..=1.0).contains(&density) {
                    return Err(ctx_err(&ctx, "need 0 <= density <= 1"));
                }
                (
                    Scenario::layered(m, n, layers, density, seed),
                    base.field("m", m)
                        .field("n", n)
                        .field("layers", layers)
                        .field("density", density),
                )
            }
            "bimodal" => {
                let (m, n) = mn(v)?;
                let frac_good = get_f64(v, "frac_good", &ctx)?;
                if !(0.0..=1.0).contains(&frac_good) {
                    return Err(ctx_err(&ctx, "need 0 <= frac_good <= 1"));
                }
                (
                    Scenario::bimodal(m, n, frac_good, seed),
                    base.field("m", m)
                        .field("n", n)
                        .field("frac_good", frac_good),
                )
            }
            "hetero-pareto" => {
                let (m, n) = mn(v)?;
                let q_floor = get_f64(v, "q_floor", &ctx)?;
                let alpha = get_f64(v, "alpha", &ctx)?;
                if !(0.0 < q_floor && q_floor < 1.0) || alpha <= 0.0 {
                    return Err(ctx_err(&ctx, "need 0 < q_floor < 1 and alpha > 0"));
                }
                (
                    Scenario::hetero_pareto(m, n, q_floor, alpha, seed),
                    base.field("m", m)
                        .field("n", n)
                        .field("q_floor", q_floor)
                        .field("alpha", alpha),
                )
            }
            "adversarial" => {
                let (m, n) = mn(v)?;
                (
                    Scenario::adversarial(m, n, seed),
                    base.field("m", m).field("n", n),
                )
            }
            other => return Err(format!("unknown scenario family {other:?}")),
        };
        Ok(RequestScenario { scenario, params })
    }
}

/// Parse the stopping rule: exactly one of `"trials": n` or
/// `"precision": {...}`.
fn parse_precision(v: &Json) -> Result<Precision, String> {
    match (v.get("trials"), v.get("precision")) {
        (Some(_), Some(_)) => Err("give either 'trials' or 'precision', not both".into()),
        (Some(t), None) => {
            let n = t
                .as_u64()
                .ok_or("'trials' must be a non-negative integer")?;
            if n == 0 || n > MAX_TRIALS {
                return Err(format!("'trials' must be in 1..={MAX_TRIALS}, got {n}"));
            }
            Ok(Precision::FixedTrials(n as usize))
        }
        (None, Some(p)) => {
            let ctx = "precision";
            let half_width = get_f64(p, "half_width", ctx)?;
            if half_width <= 0.0 {
                return Err("precision: 'half_width' must be positive".into());
            }
            let relative = p
                .get("relative")
                .map(|r| r.as_bool().ok_or("precision: 'relative' must be a bool"))
                .transpose()?
                .unwrap_or(false);
            let min_trials = get_sized(p, "min_trials", MAX_TRIALS, ctx)?;
            let max_trials = get_sized(p, "max_trials", MAX_TRIALS, ctx)?;
            if min_trials > max_trials {
                return Err("precision: min_trials exceeds max_trials".into());
            }
            Ok(Precision::TargetCi {
                half_width,
                relative,
                min_trials,
                max_trials,
            })
        }
        (None, None) => Err("missing stopping rule: give 'trials' or 'precision'".into()),
    }
}

impl RaceRequest {
    /// Parse and validate a full request document.
    pub fn from_json(v: &Json) -> Result<RaceRequest, String> {
        let scenarios_json = v
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or("missing array 'scenarios'")?;
        if scenarios_json.is_empty() || scenarios_json.len() > MAX_SCENARIOS {
            return Err(format!("'scenarios' must have 1..={MAX_SCENARIOS} entries"));
        }
        let scenarios = scenarios_json
            .iter()
            .map(RequestScenario::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        {
            let mut ids: Vec<String> = scenarios.iter().map(|s| s.params.to_canonical()).collect();
            ids.sort_unstable();
            ids.dedup();
            if ids.len() != scenarios.len() {
                return Err("duplicate scenario in request".into());
            }
        }

        let policies_json = v
            .get("policies")
            .and_then(Json::as_array)
            .ok_or("missing array 'policies'")?;
        if policies_json.is_empty() || policies_json.len() > MAX_POLICIES {
            return Err(format!("'policies' must have 1..={MAX_POLICIES} entries"));
        }
        let policies = policies_json
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "policies entries must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;

        let precision = parse_precision(v)?;

        let master_seed = match v.get("master_seed") {
            Some(s) => s
                .as_u64()
                .ok_or("'master_seed' must be a non-negative integer")?,
            None => 0x5EED,
        };

        let mut exec = ExecConfig::default();
        if let Some(s) = v.get("semantics") {
            exec.semantics = match s.as_str() {
                Some("suu") => Semantics::Suu,
                Some("suu-star") => Semantics::SuuStar,
                _ => return Err("'semantics' must be \"suu\" or \"suu-star\"".into()),
            };
        }
        if let Some(e) = v.get("engine") {
            exec.engine = match e.as_str() {
                Some("events") => EngineKind::Events,
                Some("dense") => EngineKind::Dense,
                _ => return Err("'engine' must be \"events\" or \"dense\"".into()),
            };
        }
        if let Some(ms) = v.get("max_steps") {
            exec.max_steps = ms
                .as_u64()
                .filter(|&s| s > 0)
                .ok_or("'max_steps' must be a positive integer")?;
        }

        let ratios_to_lower_bound = match v.get("ratios_to_lower_bound") {
            Some(r) => r
                .as_bool()
                .ok_or("'ratios_to_lower_bound' must be a bool")?,
            None => false,
        };

        Ok(RaceRequest {
            scenarios,
            policies,
            precision,
            master_seed,
            exec,
            ratios_to_lower_bound,
        })
    }

    /// Re-emit the parsed request in wire form. Every execution field is
    /// spelled out explicitly (even where it matches a default), so the
    /// emitted document re-parses to an identical request regardless of
    /// how future defaults drift — the property a proxy needs to forward
    /// requests to backends without changing their meaning (or their
    /// content-addressed cell keys).
    pub fn to_json(&self) -> Json {
        let scenario_refs: Vec<&RequestScenario> = self.scenarios.iter().collect();
        let policy_refs: Vec<&str> = self.policies.iter().map(String::as_str).collect();
        self.wire_json(&scenario_refs, &policy_refs)
    }

    /// The wire form of the **single-cell sub-request** for
    /// `(scenarios[scenario], policies[policy])`: same stopping rule,
    /// master seed, and execution context as the whole request, so the
    /// cell a backend computes for it is bit-identical to the one it
    /// would compute inside the full request (per-scenario seeds derive
    /// only from `master_seed` and the scenario itself).
    pub fn cell_request_json(&self, scenario: usize, policy: usize) -> Json {
        self.wire_json(
            &[&self.scenarios[scenario]],
            &[self.policies[policy].as_str()],
        )
    }

    fn wire_json(&self, scenarios: &[&RequestScenario], policies: &[&str]) -> Json {
        let mut doc = Json::obj()
            .field(
                "scenarios",
                Json::Arr(scenarios.iter().map(|rs| rs.params.clone()).collect()),
            )
            .field(
                "policies",
                Json::Arr(
                    policies
                        .iter()
                        .map(|p| Json::Str((*p).to_string()))
                        .collect(),
                ),
            );
        doc = match self.precision {
            Precision::FixedTrials(n) => doc.field("trials", n as u64),
            Precision::TargetCi {
                half_width,
                relative,
                min_trials,
                max_trials,
            } => doc.field(
                "precision",
                Json::obj()
                    .field("half_width", half_width)
                    .field("relative", relative)
                    .field("min_trials", min_trials as u64)
                    .field("max_trials", max_trials as u64),
            ),
        };
        doc.field("master_seed", self.master_seed)
            .field(
                "semantics",
                match self.exec.semantics {
                    Semantics::Suu => "suu",
                    Semantics::SuuStar => "suu-star",
                },
            )
            .field(
                "engine",
                match self.exec.engine {
                    EngineKind::Events => "events",
                    EngineKind::Dense => "dense",
                },
            )
            .field("max_steps", self.exec.max_steps)
            .field("ratios_to_lower_bound", self.ratios_to_lower_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::json::parse;

    fn req(text: &str) -> Result<RaceRequest, String> {
        RaceRequest::from_json(&parse(text).expect("test request is valid JSON"))
    }

    #[test]
    fn full_request_parses_and_normalizes() {
        // Deliberately scrambled key order and redundant float spellings.
        let r = req(r#"{
            "policies": ["greedy-lr", "suu-c"],
            "trials": 24,
            "scenarios": [
                {"seed": 7, "n": 8, "family": "uniform", "hi": 0.90, "m": 3, "lo": 0.20},
                {"family": "chains", "m": 3, "n": 9, "chains": 3, "seed": 11}
            ],
            "master_seed": 99,
            "semantics": "suu-star"
        }"#)
        .unwrap();
        assert_eq!(r.scenarios.len(), 2);
        assert_eq!(r.scenarios[0].scenario.id, "uniform-m3-n8-s7");
        assert_eq!(r.scenarios[1].scenario.id, "chains-m3-n9-c3-s11");
        assert_eq!(r.policies, vec!["greedy-lr", "suu-c"]);
        assert!(matches!(r.precision, Precision::FixedTrials(24)));
        assert_eq!(r.master_seed, 99);
        assert!(!r.ratios_to_lower_bound);
        // Normalized params are key-order- and spelling-insensitive.
        assert_eq!(
            r.scenarios[0].params.to_canonical(),
            r#"{"family":"uniform","hi":0.9,"lo":0.2,"m":3,"n":8,"seed":7}"#
        );
        let reordered = req(r#"{
            "scenarios": [
                {"family": "uniform", "m": 3, "n": 8, "lo": 0.2, "hi": 0.9, "seed": 7},
                {"family": "chains", "chains": 3, "seed": 11, "m": 3, "n": 9}
            ],
            "policies": ["greedy-lr", "suu-c"],
            "trials": 24
        }"#)
        .unwrap();
        for (a, b) in r.scenarios.iter().zip(&reordered.scenarios) {
            assert_eq!(a.params.to_canonical(), b.params.to_canonical());
        }
    }

    #[test]
    fn adaptive_precision_parses() {
        let r = req(r#"{
            "scenarios": [{"family": "adversarial", "m": 3, "n": 6, "seed": 1}],
            "policies": ["best-machine"],
            "precision": {"half_width": 0.05, "relative": true,
                          "min_trials": 8, "max_trials": 128}
        }"#)
        .unwrap();
        match r.precision {
            Precision::TargetCi {
                half_width,
                relative,
                min_trials,
                max_trials,
            } => {
                assert_eq!(half_width, 0.05);
                assert!(relative);
                assert_eq!((min_trials, max_trials), (8, 128));
            }
            other => panic!("wrong precision {other:?}"),
        }
    }

    #[test]
    fn every_family_round_trips_through_the_wire_form() {
        for (text, id) in [
            (
                r#"{"family":"uniform","m":2,"n":4,"lo":0.2,"hi":0.8,"seed":1}"#,
                "uniform-m2-n4-s1",
            ),
            (
                r#"{"family":"power-law","m":2,"n":4,"q_base":0.5,"alpha":1.2,"seed":2}"#,
                "power-law-m2-n4-s2",
            ),
            (
                r#"{"family":"chains","m":2,"n":6,"chains":2,"seed":3}"#,
                "chains-m2-n6-c2-s3",
            ),
            (
                r#"{"family":"forest","m":2,"n":6,"roots":2,"seed":4}"#,
                "forest-m2-n6-r2-s4",
            ),
            (
                r#"{"family":"in-forest","m":2,"n":6,"roots":2,"seed":5}"#,
                "in-forest-m2-n6-r2-s5",
            ),
            (
                r#"{"family":"mapreduce","maps":4,"reduces":2,"m":2,"seed":6}"#,
                "mapreduce-4x2-m2-s6",
            ),
            (
                r#"{"family":"layered","m":2,"n":6,"layers":2,"density":0.4,"seed":7}"#,
                "layered-m2-n6-l2-s7",
            ),
            (
                r#"{"family":"bimodal","m":2,"n":6,"frac_good":0.5,"seed":8}"#,
                "bimodal-m2-n6-s8",
            ),
            (
                r#"{"family":"hetero-pareto","m":2,"n":6,"q_floor":0.3,"alpha":1.5,"seed":9}"#,
                "hetero-pareto-m2-n6-s9",
            ),
            (
                r#"{"family":"adversarial","m":2,"n":6,"seed":10}"#,
                "adversarial-m2-n6-s10",
            ),
        ] {
            let rs = RequestScenario::from_json(&parse(text).unwrap())
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(rs.scenario.id, id);
            // The scenario instantiates (generator parameters in range).
            let inst = rs.scenario.instantiate();
            assert_eq!(inst.num_jobs(), rs.scenario.n);
            // Params re-parse to the same canonical bytes.
            let reparsed = RequestScenario::from_json(&rs.params).unwrap();
            assert_eq!(reparsed.params.to_canonical(), rs.params.to_canonical());
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        for (text, needle) in [
            (r#"{}"#, "scenarios"),
            (
                r#"{"scenarios":[],"policies":["x"],"trials":4}"#,
                "scenarios",
            ),
            (
                r#"{"scenarios":[{"family":"nope","seed":1}],"policies":["x"],"trials":4}"#,
                "unknown scenario family",
            ),
            (
                r#"{"scenarios":[{"family":"uniform","m":3,"n":8,"lo":0.9,"hi":0.2,"seed":1}],"policies":["x"],"trials":4}"#,
                "lo < hi",
            ),
            (
                r#"{"scenarios":[{"family":"uniform","m":0,"n":8,"lo":0.2,"hi":0.9,"seed":1}],"policies":["x"],"trials":4}"#,
                "'m'",
            ),
            (
                r#"{"scenarios":[{"family":"uniform","m":3,"n":8,"lo":0.2,"hi":0.9,"seed":1}],"policies":[],"trials":4}"#,
                "policies",
            ),
            (
                r#"{"scenarios":[{"family":"uniform","m":3,"n":8,"lo":0.2,"hi":0.9,"seed":1}],"policies":["x"]}"#,
                "stopping rule",
            ),
            (
                r#"{"scenarios":[{"family":"uniform","m":3,"n":8,"lo":0.2,"hi":0.9,"seed":1}],"policies":["x"],"trials":4,"precision":{"half_width":1.0,"min_trials":2,"max_trials":4}}"#,
                "not both",
            ),
            (
                r#"{"scenarios":[{"family":"uniform","m":3,"n":8,"lo":0.2,"hi":0.9,"seed":1}],"policies":["x"],"trials":0}"#,
                "'trials'",
            ),
            (
                r#"{"scenarios":[{"family":"uniform","m":3,"n":8,"lo":0.2,"hi":0.9,"seed":1},{"family":"uniform","m":3,"n":8,"lo":0.2,"hi":0.9,"seed":1}],"policies":["x"],"trials":4}"#,
                "duplicate scenario",
            ),
            (
                r#"{"scenarios":[{"family":"uniform","m":3,"n":8,"lo":0.2,"hi":0.9,"seed":1}],"policies":["x"],"trials":4,"semantics":"wat"}"#,
                "semantics",
            ),
        ] {
            let err = req(text).expect_err(text);
            assert!(
                err.contains(needle),
                "{text}: error {err:?} lacks {needle:?}"
            );
        }
    }

    #[test]
    fn wire_form_round_trips_exactly() {
        for text in [
            // Fixed trials, defaults everywhere.
            r#"{"scenarios":[{"family":"uniform","m":3,"n":8,"lo":0.2,"hi":0.9,"seed":7},
                             {"family":"chains","m":3,"n":9,"chains":3,"seed":11}],
                "policies":["greedy-lr","suu-c"],"trials":24}"#,
            // Adaptive precision + every explicit knob.
            r#"{"scenarios":[{"family":"adversarial","m":2,"n":4,"seed":1}],
                "policies":["best-machine"],
                "precision":{"half_width":0.05,"relative":true,"min_trials":8,"max_trials":128},
                "master_seed":99,"semantics":"suu-star","engine":"dense",
                "max_steps":5000,"ratios_to_lower_bound":true}"#,
        ] {
            let first = req(text).unwrap();
            let emitted = first.to_json();
            let second = RaceRequest::from_json(&emitted).expect("wire form re-parses");
            // Emit → parse → emit is a fixed point (bytewise).
            assert_eq!(emitted.to_canonical(), second.to_json().to_canonical());
            assert_eq!(first.master_seed, second.master_seed);
            assert_eq!(first.policies, second.policies);
            for (a, b) in first.scenarios.iter().zip(&second.scenarios) {
                assert_eq!(a.params.to_canonical(), b.params.to_canonical());
            }
        }
    }

    #[test]
    fn cell_request_preserves_the_cell_identity_fields() {
        let race = req(r#"{
            "scenarios":[{"family":"uniform","m":3,"n":8,"lo":0.2,"hi":0.9,"seed":7},
                         {"family":"chains","m":3,"n":9,"chains":3,"seed":11}],
            "policies":["greedy-lr","suu-c"],
            "trials":24,"master_seed":99,"semantics":"suu-star"}"#)
        .unwrap();
        let sub = RaceRequest::from_json(&race.cell_request_json(1, 0)).unwrap();
        assert_eq!(sub.scenarios.len(), 1);
        assert_eq!(sub.policies, vec!["greedy-lr"]);
        assert_eq!(
            sub.scenarios[0].params.to_canonical(),
            race.scenarios[1].params.to_canonical()
        );
        assert_eq!(sub.master_seed, race.master_seed);
        assert_eq!(sub.exec.semantics, race.exec.semantics);
        assert_eq!(sub.exec.max_steps, race.exec.max_steps);
        assert!(matches!(sub.precision, Precision::FixedTrials(24)));
    }

    #[test]
    fn oversized_requests_are_rejected() {
        let err = req(&format!(
            r#"{{"scenarios":[{{"family":"uniform","m":3,"n":{},"lo":0.2,"hi":0.9,"seed":1}}],"policies":["x"],"trials":4}}"#,
            MAX_JOBS + 1
        ))
        .unwrap_err();
        assert!(err.contains("'n'"), "{err}");
        let err = req(&format!(
            r#"{{"scenarios":[{{"family":"uniform","m":3,"n":8,"lo":0.2,"hi":0.9,"seed":1}}],"policies":["x"],"trials":{}}}"#,
            MAX_TRIALS + 1
        ))
        .unwrap_err();
        assert!(err.contains("'trials'"), "{err}");
    }
}
