//! The shared JSON results schema (`suu-results/v2`).
//!
//! Every experiment binary and example emits one document shape, so
//! downstream tooling (plots, regression tracking, the perf trajectory in
//! `BENCH_baseline.json`) can consume any of them:
//!
//! ```json
//! {
//!   "schema": "suu-results/v2",
//!   "generated_by": "bench_baseline",
//!   "suite": "standard",
//!   "scenarios": [
//!     {"id": "...", "description": "...", "structure": "chains",
//!      "m": 4, "n": 24, "seed": 42}
//!   ],
//!   "policies": ["suu-c", "greedy-lr"],
//!   "cells": [
//!     {"scenario": "...", "policy": "...", "trials": 200,
//!      "trials_used": 128, "stop_reason": "ci-reached",
//!      "master_seed": 7, "semantics": "suu-star",
//!      "mean_makespan": 31.4, "std_err": 0.4, "ci95": 0.79,
//!      "min": 24.0, "median": 31.0, "p95": 40.0, "max": 48.0,
//!      "quantile_mode": "exact",
//!      "completion_rate": 1.0, "wall_clock_s": 0.031,
//!      "lower_bound": 12.5, "ratio_to_lb": 2.51}
//!   ],
//!   "paired": [
//!     {"scenario": "...", "policy_a": "suu-c", "policy_b": "greedy-lr",
//!      "trials_used": 64, "stop_reason": "ci-reached",
//!      "delta_mean": -2.4, "delta_ci95": 0.9, "significant": true}
//!   ]
//! }
//! ```
//!
//! **v2** (adaptive precision): cells carry `trials_used` (trials
//! actually executed before the stopping rule fired), `stop_reason`
//! (`fixed-budget` | `ci-reached` | `max-trials`), and `ci95` (Student-t
//! 95% half-width of the mean); the document gains a `paired` array of
//! CRN policy comparisons (per-trial makespan differences under shared
//! trial seeds: mean, Student-t CI, and whether zero lies outside it).
//! `wall_clock_s` fields can be omitted (`record_wall_clocks(false)`) to
//! make documents byte-identical across reruns of the same master seed.
//! When a scenario's lower bound was requested but failed, its run cells
//! carry `lower_bound_error` (the error string) in place of
//! `lower_bound`/`ratio_to_lb`. Cells produced by the `suu-serve` daemon
//! additionally carry `cell_key` (the content address of the cached
//! evaluation); cache status (`hit` | `miss` | `extended`) deliberately
//! lives in the daemon's response *headers*, not the body, so the body
//! stays a pure function of the cache state and identical requests
//! replay byte-identically.
//!
//! Cells are fed from streaming [`EvalStats`] (the evaluator never
//! buffers per-trial outcomes for reporting): `quantile_mode` is
//! `"exact"` while the sample fits the accumulator's exact cap and
//! `"p2-sketch"` once median/p95 come from the P² sketches. `cells` may
//! also carry `"error"` (policy failed to build — e.g. `exact-opt` past
//! its limits) or `"skipped"` (capability below the scenario's structure
//! class); such cells have no statistics.

use crate::scenario::{Scenario, ScenarioSuite};
use suu_core::json::Json;
use suu_sim::{EvalStats, PairedStats, Semantics};

/// Schema identifier stamped on every document.
pub const SCHEMA: &str = suu_core::schemas::RESULTS_V2;

/// Incrementally builds a `suu-results/v2` document.
pub struct ResultsBuilder {
    generated_by: String,
    suite: Option<String>,
    scenarios: Vec<Json>,
    scenario_ids: Vec<String>,
    policies: Vec<String>,
    cells: Vec<Json>,
    paired: Vec<Json>,
    record_wall_clocks: bool,
}

impl ResultsBuilder {
    /// New document attributed to `generated_by` (binary/example name).
    pub fn new(generated_by: impl Into<String>) -> Self {
        ResultsBuilder {
            generated_by: generated_by.into(),
            suite: None,
            scenarios: Vec::new(),
            scenario_ids: Vec::new(),
            policies: Vec::new(),
            cells: Vec::new(),
            paired: Vec::new(),
            record_wall_clocks: true,
        }
    }

    /// Record the suite name.
    pub fn suite(mut self, suite: &ScenarioSuite) -> Self {
        self.suite = Some(suite.name.clone());
        self
    }

    /// Whether cells record `wall_clock_s` (default `true`). Disable to
    /// make the document a pure function of the master seed —
    /// byte-identical across reruns — for determinism pinning.
    pub fn record_wall_clocks(mut self, record: bool) -> Self {
        self.record_wall_clocks = record;
        self
    }

    /// Register a scenario (idempotent per id).
    pub fn add_scenario(&mut self, sc: &Scenario) {
        if self.scenario_ids.contains(&sc.id) {
            return;
        }
        self.scenario_ids.push(sc.id.clone());
        self.scenarios.push(
            Json::obj()
                .field("id", sc.id.as_str())
                .field("description", sc.description.as_str())
                .field("structure", sc.structure.name())
                .field("m", sc.m)
                .field("n", sc.n)
                .field("seed", sc.seed),
        );
    }

    fn register_policy(&mut self, policy: &str) {
        if !self.policies.iter().any(|p| p == policy) {
            self.policies.push(policy.to_string());
        }
    }

    /// Record one `(scenario, policy)` evaluation from streaming
    /// statistics, with optional extra fields (e.g. `lower_bound`).
    pub fn add_cell(
        &mut self,
        scenario_id: &str,
        policy: &str,
        stats: &EvalStats,
        extra: &[(&str, Json)],
    ) {
        self.register_policy(policy);
        let semantics = match stats.config.exec.semantics {
            Semantics::Suu => "suu",
            Semantics::SuuStar => "suu-star",
        };
        let mut cell = Json::obj()
            .field("scenario", scenario_id)
            .field("policy", policy)
            .field("trials", stats.config.trials)
            .field("trials_used", stats.trials())
            .field("master_seed", stats.config.master_seed)
            .field("semantics", semantics);
        if let Some(summary) = stats.summary() {
            cell = cell
                .field("mean_makespan", summary.mean)
                .field("std_err", summary.std_err)
                .field("ci95", summary.ci95)
                .field("min", summary.min)
                .field("median", summary.median)
                .field("p95", summary.p95)
                .field("max", summary.max)
                .field(
                    "quantile_mode",
                    if summary.exact_quantiles {
                        "exact"
                    } else {
                        "p2-sketch"
                    },
                );
        }
        cell = cell.field("completion_rate", stats.completion_rate());
        if self.record_wall_clocks {
            cell = cell.field("wall_clock_s", stats.wall_clock.as_secs_f64());
        }
        for (key, value) in extra {
            cell = cell.field(*key, value.clone());
        }
        self.cells.push(cell);
    }

    /// Record one already-rendered cell **verbatim** (registering its
    /// policy in first-use order, like [`ResultsBuilder::add_cell`]).
    /// This is the reassembly path for a scatter/gather proxy: cell
    /// JSON produced by a backend daemon is spliced into the merged
    /// document byte-for-byte, so the merge of single-cell sub-responses
    /// is indistinguishable from a single-process run.
    pub fn add_cell_json(&mut self, policy: &str, cell: Json) {
        self.register_policy(policy);
        self.cells.push(cell);
    }

    /// Record one paired CRN comparison (`suu-results/v2` `paired[]`).
    pub fn add_paired(
        &mut self,
        scenario_id: &str,
        policy_a: &str,
        policy_b: &str,
        paired: &PairedStats,
    ) {
        self.register_policy(policy_a);
        self.register_policy(policy_b);
        let mut cell = Json::obj()
            .field("scenario", scenario_id)
            .field("policy_a", policy_a)
            .field("policy_b", policy_b)
            .field("trials_used", paired.trials_used())
            .field("stop_reason", paired.stop_reason.as_str())
            .field(
                "delta_mean",
                paired.delta_mean().map(Json::Num).unwrap_or(Json::Null),
            )
            .field(
                "delta_ci95",
                paired.delta_ci95().map(Json::Num).unwrap_or(Json::Null),
            )
            .field(
                "significant",
                paired.significant().map(Json::Bool).unwrap_or(Json::Null),
            );
        if self.record_wall_clocks {
            cell = cell.field("wall_clock_s", paired.wall_clock.as_secs_f64());
        }
        self.paired.push(cell);
    }

    /// Record a paired comparison that could not run.
    pub fn add_paired_failure(
        &mut self,
        scenario_id: &str,
        policy_a: &str,
        policy_b: &str,
        detail: String,
    ) {
        self.paired.push(
            Json::obj()
                .field("scenario", scenario_id)
                .field("policy_a", policy_a)
                .field("policy_b", policy_b)
                .field("error", detail),
        );
    }

    /// Record a `(scenario, policy)` pair that could not run.
    pub fn add_failure(&mut self, scenario_id: &str, policy: &str, kind: &str, detail: String) {
        self.register_policy(policy);
        self.cells.push(
            Json::obj()
                .field("scenario", scenario_id)
                .field("policy", policy)
                .field(kind, detail),
        );
    }

    /// Assemble the document.
    pub fn finish(self) -> Json {
        let mut doc = Json::obj()
            .field("schema", SCHEMA)
            .field("generated_by", self.generated_by);
        if let Some(suite) = self.suite {
            doc = doc.field("suite", suite);
        }
        doc.field("scenarios", Json::Arr(self.scenarios))
            .field(
                "policies",
                Json::Arr(self.policies.into_iter().map(Json::Str).collect()),
            )
            .field("cells", Json::Arr(self.cells))
            .field("paired", Json::Arr(self.paired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_sim::{Assignment, Decision, Evaluator, Policy, StateView};

    struct Gang;
    impl Policy for Gang {
        fn name(&self) -> &str {
            "gang"
        }
        fn reset(&mut self) {}
        fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
            out.fill(view.eligible.first().map(suu_core::JobId));
            Decision::HOLD
        }
    }

    #[test]
    fn document_shape_roundtrips() {
        let sc = Scenario::uniform(2, 4, 0.2, 0.8, 1);
        let inst = sc.instantiate();
        let stats = Evaluator::seeded(20, 9).run_stats(&inst, || Gang);

        let suite = ScenarioSuite::smoke(1);
        let mut builder = ResultsBuilder::new("report-test").suite(&suite);
        builder.add_scenario(&sc);
        builder.add_scenario(&sc); // idempotent
        builder.add_cell(&sc.id, "gang", &stats, &[("lower_bound", Json::Num(2.0))]);
        builder.add_failure(&sc.id, "exact-opt", "error", "too big".to_string());
        let doc = builder.finish();

        let parsed = suu_core::json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(
            parsed.get("scenarios").unwrap().as_array().unwrap().len(),
            1
        );
        let cells = parsed.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("trials").unwrap().as_u64(), Some(20));
        assert!(cells[0].get("mean_makespan").unwrap().as_f64().unwrap() >= 1.0);
        assert_eq!(
            cells[0].get("quantile_mode").unwrap().as_str(),
            Some("exact")
        );
        assert_eq!(cells[0].get("lower_bound").unwrap().as_f64(), Some(2.0));
        assert_eq!(cells[1].get("error").unwrap().as_str(), Some("too big"));
        let policies = parsed.get("policies").unwrap().as_array().unwrap();
        assert_eq!(policies.len(), 2);
    }

    #[test]
    fn raw_cell_splicing_reassembles_byte_identically() {
        // The scatter/gather foundation: a document rebuilt from its own
        // parsed-and-re-emitted cells is bytewise the original.
        let sc = Scenario::uniform(2, 4, 0.2, 0.8, 1);
        let inst = sc.instantiate();
        let stats = Evaluator::seeded(20, 9).run_stats(&inst, || Gang);
        let mut direct = ResultsBuilder::new("suud").record_wall_clocks(false);
        direct.add_scenario(&sc);
        direct.add_cell(
            &sc.id,
            "gang",
            &stats,
            &[("lower_bound", Json::Num(0.1 + 0.2))],
        );
        direct.add_failure(&sc.id, "exact-opt", "error", "too big".to_string());
        let original = direct.finish().to_pretty();

        let parsed = suu_core::json::parse(&original).unwrap();
        let cells = parsed.get("cells").unwrap().as_array().unwrap();
        let mut merged = ResultsBuilder::new("suud").record_wall_clocks(false);
        merged.add_scenario(&sc);
        for (cell, policy) in cells.iter().zip(["gang", "exact-opt"]) {
            merged.add_cell_json(policy, cell.clone());
        }
        assert_eq!(merged.finish().to_pretty(), original);
    }
}
