//! Bench: Dinic max-flow and Hopcroft–Karp matching.
//!
//! ```sh
//! cargo bench -p suu-bench --bench maxflow
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use suu_bench::harness::{black_box, Bench};
use suu_flow::{BipartiteMatcher, FlowNetwork};

fn layered_network(layers: usize, width: usize, seed: u64) -> (FlowNetwork, usize, usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = layers * width + 2;
    let (s, t) = (n - 2, n - 1);
    let mut net = FlowNetwork::new(n);
    for w in 0..width {
        net.add_edge(s, w, rng.random_range(1..50));
        net.add_edge((layers - 1) * width + w, t, rng.random_range(1..50));
    }
    for l in 0..layers - 1 {
        for a in 0..width {
            for b in 0..width {
                if rng.random_bool(0.4) {
                    net.add_edge(l * width + a, (l + 1) * width + b, rng.random_range(1..25));
                }
            }
        }
    }
    (net, s, t)
}

fn main() {
    let bench = Bench::group("dinic_max_flow");
    for &(layers, width) in &[(4usize, 8usize), (6, 16), (8, 32)] {
        bench.bench_batched(
            &format!("{layers}x{width}"),
            || layered_network(layers, width, 42),
            |(mut net, s, t)| black_box(net.max_flow(s, t)),
        );
    }

    let bench = Bench::group("hopcroft_karp");
    for &n in &[32usize, 128, 512] {
        bench.bench_batched(
            &n.to_string(),
            || {
                let mut rng = SmallRng::seed_from_u64(7);
                let mut m = BipartiteMatcher::new(n, n);
                for u in 0..n {
                    for _ in 0..4 {
                        m.add_edge(u, rng.random_range(0..n));
                    }
                }
                m
            },
            |mut m| black_box(m.solve()),
        );
    }
}
