//! Bench: Lawler–Labetoulle LP + Birkhoff timetable pipeline and whole
//! STC-I executions.
//!
//! ```sh
//! cargo bench -p suu-bench --bench stoch
//! ```

use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};
use suu_bench::harness::{black_box, Bench};
use suu_stoch::{solve_ll, StcI, StochInstance};

fn random_instance(seed: u64, m: usize, n: usize) -> StochInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lambda: Vec<f64> = (0..n).map(|_| rng.random_range(0.25..4.0)).collect();
    let v: Vec<f64> = (0..m * n).map(|_| rng.random_range(0.3..3.0)).collect();
    StochInstance::new(m, n, lambda, v).expect("valid")
}

fn main() {
    let bench = Bench::group("lawler_labetoulle").sample_size(10);
    for &(n, m) in &[(8usize, 3usize), (24, 6), (48, 8)] {
        let inst = random_instance(n as u64, m, n);
        let jobs: Vec<u32> = (0..n as u32).collect();
        let p: Vec<f64> = (0..n).map(|j| 1.0 + (j % 5) as f64 * 0.5).collect();
        bench.bench(&format!("n{n}_m{m}"), || {
            black_box(solve_ll(&inst, &jobs, &p).unwrap().slices.len())
        });
    }

    let bench = Bench::group("stc_i_execution").sample_size(10);
    for &(n, m) in &[(8usize, 3usize), (16, 4)] {
        let inst = random_instance(100 + n as u64, m, n);
        let stc = StcI::new(&inst);
        let mut seed = 0u64;
        bench.bench(&format!("n{n}_m{m}"), || {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(stc.run(&inst, &mut rng).unwrap().makespan)
        });
    }
}
