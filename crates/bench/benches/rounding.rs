//! Bench: Lemma 2 rounding (grouping + integral flow).
//!
//! ```sh
//! cargo bench -p suu-bench --bench rounding
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use suu_algos::lp1::solve_lp1;
use suu_algos::rounding::{round_lp1_with, ScaleMode};
use suu_bench::harness::{black_box, Bench};
use suu_core::{workload, Precedence};

fn main() {
    let bench = Bench::group("lemma2_rounding");
    for &(n, m) in &[(32usize, 8usize), (128, 16), (256, 32)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let inst = workload::uniform_unrelated(m, n, 0.1, 0.95, Precedence::Independent, &mut rng);
        let jobs: Vec<u32> = (0..n as u32).collect();
        let sol = solve_lp1(&inst, &jobs, 0.5).unwrap();
        for (label, mode) in [
            ("adaptive", ScaleMode::Adaptive),
            ("paper6x", ScaleMode::PaperExact),
        ] {
            bench.bench(&format!("{label}/n{n}_m{m}"), || {
                black_box(round_lp1_with(&inst, &sol, mode).unwrap().1.max_load)
            });
        }
    }
}
