//! Criterion bench: simplex solve cost on the paper's LP shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use suu_algos::lp1::solve_lp1;
use suu_algos::lp2::solve_lp2;
use suu_core::{workload, Precedence};
use suu_dag::generators::random_chain_set;

fn bench_lp1(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp1_solve");
    group.sample_size(10);
    for &(n, m) in &[(16usize, 4usize), (64, 8), (128, 16)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let inst = workload::uniform_unrelated(m, n, 0.1, 0.95, Precedence::Independent, &mut rng);
        let jobs: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(inst, jobs),
            |b, (inst, jobs)| b.iter(|| black_box(solve_lp1(inst, jobs, 0.5).unwrap().t_star)),
        );
    }
    group.finish();
}

fn bench_lp2(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp2_solve");
    group.sample_size(10);
    for &(n, m) in &[(16usize, 4usize), (32, 6), (64, 8)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let cs = random_chain_set(n, n / 4, &mut rng);
        let chains = cs.chains().to_vec();
        let inst = workload::uniform_unrelated(m, n, 0.1, 0.95, Precedence::Chains(cs), &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(inst, chains),
            |b, (inst, chains)| b.iter(|| black_box(solve_lp2(inst, chains, 1.0).unwrap().t_star)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lp1, bench_lp2);
criterion_main!(benches);
