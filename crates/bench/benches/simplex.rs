//! Bench: simplex solve cost on the paper's LP shapes.
//!
//! ```sh
//! cargo bench -p suu-bench --bench simplex
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use suu_algos::lp1::solve_lp1;
use suu_algos::lp2::solve_lp2;
use suu_bench::harness::{black_box, Bench};
use suu_core::{workload, Precedence};
use suu_dag::generators::random_chain_set;

fn main() {
    let bench = Bench::group("lp1_solve").sample_size(10);
    for &(n, m) in &[(16usize, 4usize), (64, 8), (128, 16)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let inst = workload::uniform_unrelated(m, n, 0.1, 0.95, Precedence::Independent, &mut rng);
        let jobs: Vec<u32> = (0..n as u32).collect();
        bench.bench(&format!("n{n}_m{m}"), || {
            black_box(solve_lp1(&inst, &jobs, 0.5).unwrap().t_star)
        });
    }

    let bench = Bench::group("lp2_solve").sample_size(10);
    for &(n, m) in &[(16usize, 4usize), (32, 6), (64, 8)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let cs = random_chain_set(n, n / 4, &mut rng);
        let chains = cs.chains().to_vec();
        let inst = workload::uniform_unrelated(m, n, 0.1, 0.95, Precedence::Chains(cs), &mut rng);
        bench.bench(&format!("n{n}_m{m}"), || {
            black_box(solve_lp2(&inst, &chains, 1.0).unwrap().t_star)
        });
    }
}
