//! Criterion bench: end-to-end schedule construction cost (LP + rounding +
//! timetable) for each algorithm family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use suu_algos::{ChainConfig, ChainPolicy, ForestPolicy, OblPolicy, SemPolicy};
use suu_core::{workload, Precedence};
use suu_dag::generators::{random_chain_set, random_out_forest};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_construction");
    group.sample_size(10);
    for &(n, m) in &[(32usize, 8usize), (64, 8)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let ind = Arc::new(workload::uniform_unrelated(
            m,
            n,
            0.1,
            0.95,
            Precedence::Independent,
            &mut rng,
        ));
        group.bench_with_input(
            BenchmarkId::new("suu_i_obl", format!("n{n}_m{m}")),
            &ind,
            |b, inst| b.iter(|| black_box(OblPolicy::build(inst).unwrap().period())),
        );
        group.bench_with_input(
            BenchmarkId::new("suu_i_sem", format!("n{n}_m{m}")),
            &ind,
            |b, inst| b.iter(|| black_box(SemPolicy::build(inst.clone()).unwrap().k_max())),
        );

        let mut rng = SmallRng::seed_from_u64(n as u64 + 1);
        let cs = random_chain_set(n, n / 4, &mut rng);
        let chains = cs.chains().to_vec();
        let chained = Arc::new(workload::uniform_unrelated(
            m,
            n,
            0.1,
            0.95,
            Precedence::Chains(cs),
            &mut rng,
        ));
        group.bench_with_input(
            BenchmarkId::new("suu_c", format!("n{n}_m{m}")),
            &(chained, chains),
            |b, (inst, chains)| {
                b.iter(|| {
                    black_box(
                        ChainPolicy::build(inst.clone(), chains.clone(), ChainConfig::default())
                            .unwrap()
                            .gamma(),
                    )
                })
            },
        );

        let mut rng = SmallRng::seed_from_u64(n as u64 + 2);
        let forest = random_out_forest(n, 2, &mut rng);
        let forested = Arc::new(workload::uniform_unrelated(
            m,
            n,
            0.1,
            0.95,
            Precedence::Forest(forest.clone()),
            &mut rng,
        ));
        group.bench_with_input(
            BenchmarkId::new("suu_t", format!("n{n}_m{m}")),
            &(forested, forest),
            |b, (inst, forest)| {
                b.iter(|| {
                    black_box(
                        ForestPolicy::build(inst.clone(), forest, ChainConfig::default())
                            .unwrap()
                            .num_blocks(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
