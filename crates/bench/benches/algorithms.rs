//! Bench: end-to-end schedule construction cost (LP + rounding +
//! timetable) for each algorithm family.
//!
//! ```sh
//! cargo bench -p suu-bench --bench algorithms
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu_algos::{ChainConfig, ChainPolicy, ForestPolicy, OblPolicy, SemPolicy};
use suu_bench::harness::{black_box, Bench};
use suu_core::{workload, Precedence};
use suu_dag::generators::{random_chain_set, random_out_forest};

fn main() {
    let bench = Bench::group("schedule_construction").sample_size(10);
    for &(n, m) in &[(32usize, 8usize), (64, 8)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let ind = Arc::new(workload::uniform_unrelated(
            m,
            n,
            0.1,
            0.95,
            Precedence::Independent,
            &mut rng,
        ));
        bench.bench(&format!("suu_i_obl/n{n}_m{m}"), || {
            black_box(OblPolicy::build(&ind).unwrap().period())
        });
        bench.bench(&format!("suu_i_sem/n{n}_m{m}"), || {
            black_box(SemPolicy::build(ind.clone()).unwrap().k_max())
        });

        let mut rng = SmallRng::seed_from_u64(n as u64 + 1);
        let cs = random_chain_set(n, n / 4, &mut rng);
        let chains = cs.chains().to_vec();
        let chained = Arc::new(workload::uniform_unrelated(
            m,
            n,
            0.1,
            0.95,
            Precedence::Chains(cs),
            &mut rng,
        ));
        bench.bench(&format!("suu_c/n{n}_m{m}"), || {
            black_box(
                ChainPolicy::build(chained.clone(), chains.clone(), ChainConfig::default())
                    .unwrap()
                    .gamma(),
            )
        });

        let mut rng = SmallRng::seed_from_u64(n as u64 + 2);
        let forest = random_out_forest(n, 2, &mut rng);
        let forested = Arc::new(workload::uniform_unrelated(
            m,
            n,
            0.1,
            0.95,
            Precedence::Forest(forest.clone()),
            &mut rng,
        ));
        bench.bench(&format!("suu_t/n{n}_m{m}"), || {
            black_box(
                ForestPolicy::build(forested.clone(), &forest, ChainConfig::default())
                    .unwrap()
                    .num_blocks(),
            )
        });
    }
}
