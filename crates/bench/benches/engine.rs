//! Bench: execution-engine throughput under both semantics.
//!
//! ```sh
//! cargo bench -p suu-bench --bench engine
//! ```

use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;
use suu_algos::baselines::RoundRobinPolicy;
use suu_bench::harness::{black_box, Bench};
use suu_core::{workload, Precedence};
use suu_sim::{execute, ExecConfig, Semantics};

fn main() {
    let bench = Bench::group("engine_execute");
    for &(n, m) in &[(32usize, 8usize), (128, 16), (512, 32)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let inst = workload::uniform_unrelated(m, n, 0.4, 0.95, Precedence::Independent, &mut rng);
        for (label, semantics) in [("suu", Semantics::Suu), ("suustar", Semantics::SuuStar)] {
            let cfg = ExecConfig {
                semantics,
                max_steps: 1_000_000,
            };
            let mut policy = RoundRobinPolicy::new();
            let mut seed = 0u64;
            bench.bench(&format!("{label}/n{n}_m{m}"), || {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(execute(&inst, &mut policy, &cfg, &mut rng).makespan)
            });
        }
    }
}
