//! Bench: execution-engine throughput — dense stepper vs. event engine,
//! under both semantics.
//!
//! ```sh
//! cargo bench -p suu-bench --bench engine
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu_algos::baselines::{GangSequentialPolicy, LrGreedyPolicy};
use suu_bench::harness::{black_box, Bench};
use suu_core::{workload, Precedence};
use suu_sim::{execute, EngineKind, ExecConfig, Policy, Semantics};

fn main() {
    let bench = Bench::group("engine_execute");
    for &(n, m) in &[(32usize, 8usize), (128, 16), (512, 32)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let inst = Arc::new(workload::uniform_unrelated(
            m,
            n,
            0.4,
            0.95,
            Precedence::Independent,
            &mut rng,
        ));
        for (label, semantics) in [("suu", Semantics::Suu), ("suustar", Semantics::SuuStar)] {
            for (engine_label, engine) in
                [("dense", EngineKind::Dense), ("events", EngineKind::Events)]
            {
                let cfg = ExecConfig {
                    semantics,
                    engine,
                    max_steps: 1_000_000,
                };
                let mut gang = GangSequentialPolicy::new();
                let mut greedy = LrGreedyPolicy::new(inst.clone());
                let mut seed = 0u64;
                bench.bench(&format!("{label}/{engine_label}/gang/n{n}_m{m}"), || {
                    seed += 1;
                    black_box(execute(&inst, &mut gang as &mut dyn Policy, &cfg, seed).makespan)
                });
                bench.bench(&format!("{label}/{engine_label}/greedy/n{n}_m{m}"), || {
                    seed += 1;
                    black_box(execute(&inst, &mut greedy as &mut dyn Policy, &cfg, seed).makespan)
                });
            }
        }
    }
}
