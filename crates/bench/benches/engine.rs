//! Criterion bench: execution-engine throughput under both semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;
use std::hint::black_box;
use suu_algos::baselines::RoundRobinPolicy;
use suu_core::{workload, Precedence};
use suu_sim::{execute, ExecConfig, Semantics};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_execute");
    for &(n, m) in &[(32usize, 8usize), (128, 16), (512, 32)] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let inst = workload::uniform_unrelated(m, n, 0.4, 0.95, Precedence::Independent, &mut rng);
        for (label, semantics) in [("suu", Semantics::Suu), ("suustar", Semantics::SuuStar)] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("n{n}_m{m}")),
                &(&inst, semantics),
                |b, (inst, semantics)| {
                    let cfg = ExecConfig {
                        semantics: *semantics,
                        max_steps: 1_000_000,
                    };
                    let mut policy = RoundRobinPolicy::new();
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut rng = StdRng::seed_from_u64(seed);
                        black_box(execute(inst, &mut policy, &cfg, &mut rng).makespan)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
