//! Cross-module and property tests for the stochastic-scheduling stack.

use crate::instance::StochInstance;
use crate::ll::solve_ll;
use crate::sim::{run_timetable, ExecState};
use crate::stc_i::StcI;
use proptest::prelude::*;
use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};

fn random_instance(seed: u64, m: usize, n: usize) -> StochInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lambda = (0..n).map(|_| rng.random_range(0.2..3.0)).collect();
    let v = (0..m * n)
        .map(|_| {
            if rng.random_bool(0.15) {
                0.0
            } else {
                rng.random_range(0.2..4.0)
            }
        })
        .collect();
    // Guarantee servability: bump column maxima if needed.
    match StochInstance::new(m, n, lambda, v) {
        Ok(i) => i,
        Err(_) => {
            // Regenerate with all-positive speeds.
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xFFFF);
            let lambda = (0..n).map(|_| rng.random_range(0.2..3.0)).collect();
            let v = (0..m * n).map(|_| rng.random_range(0.2..4.0)).collect();
            StochInstance::new(m, n, lambda, v).unwrap()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ll_timetables_are_always_feasible(seed in 0u64..10_000, m in 1usize..5, n in 1usize..7) {
        let inst = random_instance(seed, m, n);
        let jobs: Vec<u32> = (0..n as u32).collect();
        let mut rng = SmallRng::seed_from_u64(seed + 1);
        let p: Vec<f64> = (0..n).map(|_| rng.random_range(0.1..5.0)).collect();
        let tt = solve_ll(&inst, &jobs, &p).unwrap();
        // No job on two machines in any slice.
        prop_assert!(tt.find_conflict().is_none());
        // Slice durations are positive and sum to the makespan.
        let span: f64 = tt.slices.iter().map(|s| s.duration).sum();
        prop_assert!((span - tt.makespan).abs() < 1e-5);
        for s in &tt.slices {
            prop_assert!(s.duration > 0.0);
        }
        // Every job receives its demanded work.
        for (c, &j) in jobs.iter().enumerate() {
            let work: f64 = (0..m)
                .map(|i| tt.work_time(i, j) * inst.speed(i, j as usize))
                .sum();
            prop_assert!(work >= p[c] - 1e-5, "job {j}: {work} < {}", p[c]);
        }
    }

    #[test]
    fn ll_optimum_meets_known_lower_bounds(seed in 0u64..10_000, m in 1usize..5, n in 1usize..7) {
        let inst = random_instance(seed, m, n);
        let jobs: Vec<u32> = (0..n as u32).collect();
        let mut rng = SmallRng::seed_from_u64(seed + 2);
        let p: Vec<f64> = (0..n).map(|_| rng.random_range(0.1..5.0)).collect();
        let tt = solve_ll(&inst, &jobs, &p).unwrap();
        // T >= each job's solo time on its fastest machine.
        for (c, &j) in jobs.iter().enumerate() {
            let (_, v) = inst.fastest_machine(j as usize);
            prop_assert!(tt.makespan >= p[c] / v - 1e-6);
        }
    }

    #[test]
    fn stc_always_completes(seed in 0u64..5_000, m in 1usize..4, n in 1usize..6) {
        let inst = random_instance(seed, m, n);
        let stc = StcI::new(&inst);
        let out = stc.run(&inst, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert!(out.makespan.is_finite());
        prop_assert!(out.makespan >= out.clairvoyant_lb - 1e-6);
    }
}

#[test]
fn execution_is_work_conserving_until_completion() {
    // A job is never credited more work than its length.
    let inst = random_instance(3, 2, 4);
    let jobs: Vec<u32> = (0..4).collect();
    let mut state = ExecState::draw(&inst, &mut StdRng::seed_from_u64(5));
    let p = state.p.clone();
    let tt = solve_ll(&inst, &jobs, &[1.0; 4]).unwrap();
    run_timetable(&inst, &tt, &mut state);
    for (progress, cap) in state.progress.iter().zip(&p) {
        assert!(*progress <= cap + 1e-9);
    }
}

#[test]
fn stc_mean_tracks_instance_scale() {
    // Doubling all mean lengths should roughly double mean makespan.
    let short = StochInstance::new(2, 6, vec![2.0; 6], vec![1.0; 12]).unwrap();
    let long = StochInstance::new(2, 6, vec![0.5; 6], vec![1.0; 12]).unwrap();
    let mean = |inst: &StochInstance| {
        let stc = StcI::new(inst);
        let total: f64 = (0..40u64)
            .map(|s| {
                stc.run(inst, &mut StdRng::seed_from_u64(s))
                    .unwrap()
                    .makespan
            })
            .sum();
        total / 40.0
    };
    let ms = mean(&short);
    let ml = mean(&long);
    assert!(
        ml > 2.5 * ms,
        "4x mean lengths should scale makespan: short {ms:.2}, long {ml:.2}"
    );
}
