//! `STC-I`: the `O(log log min(m,n))`-approximation for
//! `R|pmtn, p_j~Exp(λ_j)|E[Cmax]` (Appendix C, Theorem 13).
//!
//! Mirror of `SUU-I-SEM` in the stochastic-lengths world: round `k`
//! pretends every remaining job has deterministic length `2^{k−2}/λ_j`,
//! solves the Lawler–Labetoulle LP for that `R|pmtn|Cmax` instance, and
//! plays the resulting preemptive timetable obliviously. A job whose
//! hidden `p_j` is at most its pretended length is guaranteed to finish in
//! the round. After `K = ⌈log₂ log₂ min(m,n)⌉ + 3` rounds, stragglers run
//! sequentially on their fastest machines (probability `≤ 1/n` territory,
//! exactly as in the SUU analysis).

use crate::instance::StochInstance;
use crate::ll::{solve_ll, LlError};
use crate::sim::{run_sequential_fastest, run_timetable, ExecState};
use rand::Rng;

/// Result of one `STC-I` execution.
#[derive(Debug, Clone)]
pub struct StcOutcome {
    /// Latest job completion instant.
    pub makespan: f64,
    /// Rounds actually played (a round with no remaining jobs is skipped).
    pub rounds_used: u32,
    /// Whether the sequential fallback ran.
    pub fallback_used: bool,
    /// The clairvoyant lower bound for this realization: the LL optimum
    /// for the *true* lengths. Any schedule needs at least this long.
    pub clairvoyant_lb: f64,
}

/// The `STC-I` scheduler.
#[derive(Debug, Clone)]
pub struct StcI {
    k_max: u32,
}

impl StcI {
    /// New scheduler for the given instance size (computes `K`).
    pub fn new(inst: &StochInstance) -> Self {
        let v = inst.num_machines().min(inst.num_jobs()).max(4) as f64;
        StcI {
            k_max: (v.log2().log2().ceil() as u32) + 3,
        }
    }

    /// The round bound `K`.
    pub fn k_max(&self) -> u32 {
        self.k_max
    }

    /// Execute once: draw hidden lengths from `rng`, play the rounds,
    /// return the outcome (including the clairvoyant LL lower bound for
    /// the same realization).
    pub fn run<R: Rng>(&self, inst: &StochInstance, rng: &mut R) -> Result<StcOutcome, LlError> {
        let mut state = ExecState::draw(inst, rng);

        // Clairvoyant lower bound: LL optimum on the true lengths.
        let all_jobs: Vec<u32> = (0..inst.num_jobs() as u32).collect();
        let clairvoyant_lb = solve_ll(inst, &all_jobs, &state.p)?.makespan;

        let mut rounds_used = 0;
        for k in 1..=self.k_max {
            let remaining = state.remaining();
            if remaining.is_empty() {
                break;
            }
            rounds_used = k;
            let pretend: Vec<f64> = remaining
                .iter()
                .map(|&j| (2.0f64).powi(k as i32 - 2) / inst.lambda(j as usize))
                .collect();
            let tt = solve_ll(inst, &remaining, &pretend)?;
            run_timetable(inst, &tt, &mut state);
        }

        let fallback_used = !state.all_done();
        if fallback_used {
            run_sequential_fastest(inst, &mut state);
        }

        Ok(StcOutcome {
            makespan: state.makespan(),
            rounds_used,
            fallback_used,
            clairvoyant_lb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform(m: usize, n: usize) -> StochInstance {
        StochInstance::new(m, n, vec![1.0; n], vec![1.0; m * n]).unwrap()
    }

    #[test]
    fn k_scales_with_min_dimension() {
        assert_eq!(StcI::new(&uniform(4, 100)).k_max(), 4);
        assert_eq!(StcI::new(&uniform(16, 100)).k_max(), 5);
        assert_eq!(StcI::new(&uniform(100, 256)).k_max(), 6);
    }

    #[test]
    fn completes_and_bounds_hold() {
        let inst = uniform(3, 8);
        let stc = StcI::new(&inst);
        for seed in 0..20u64 {
            let out = stc.run(&inst, &mut StdRng::seed_from_u64(seed)).unwrap();
            assert!(out.makespan.is_finite() && out.makespan > 0.0);
            assert!(
                out.makespan >= out.clairvoyant_lb - 1e-6,
                "seed {seed}: {} < LB {}",
                out.makespan,
                out.clairvoyant_lb
            );
            assert!(out.rounds_used >= 1 && out.rounds_used <= stc.k_max());
        }
    }

    #[test]
    fn mean_ratio_is_modest() {
        // The measured competitive ratio vs the clairvoyant LB should be a
        // small constant on benign instances (Theorem 13's content).
        let inst = uniform(4, 12);
        let stc = StcI::new(&inst);
        let mut ratios = Vec::new();
        for seed in 0..60u64 {
            let out = stc.run(&inst, &mut StdRng::seed_from_u64(seed)).unwrap();
            ratios.push(out.makespan / out.clairvoyant_lb.max(1e-9));
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean < 8.0, "mean competitive ratio {mean:.2} too large");
    }

    #[test]
    fn heterogeneous_speeds_complete() {
        let v = vec![
            2.0, 0.1, 1.0, 0.5, //
            0.1, 3.0, 0.2, 1.5, //
        ];
        let inst = StochInstance::new(2, 4, vec![0.5, 2.0, 1.0, 1.0], v).unwrap();
        let stc = StcI::new(&inst);
        let out = stc.run(&inst, &mut StdRng::seed_from_u64(7)).unwrap();
        assert!(out.makespan.is_finite());
        assert!(out.makespan >= out.clairvoyant_lb - 1e-6);
    }

    #[test]
    fn rate_scaling_scales_makespan() {
        // Exponential lengths are scale-free: multiplying every λ by c
        // divides every realized length — and hence the makespan and the
        // clairvoyant bound — by exactly c (same seed ⇒ same uniforms).
        let slow = StochInstance::new(2, 4, vec![1.0; 4], vec![1.0; 8]).unwrap();
        let fast = StochInstance::new(2, 4, vec![10.0; 4], vec![1.0; 8]).unwrap();
        let stc = StcI::new(&slow);
        let a = stc.run(&slow, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = stc.run(&fast, &mut StdRng::seed_from_u64(1)).unwrap();
        assert!((a.makespan / b.makespan - 10.0).abs() < 1e-6);
        assert!((a.clairvoyant_lb / b.clairvoyant_lb - 10.0).abs() < 1e-6);
        assert_eq!(a.rounds_used, b.rounds_used);
    }
}
