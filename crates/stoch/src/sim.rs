//! Continuous-time execution of preemptive timetables against hidden
//! exponential job lengths.

use crate::instance::StochInstance;
use crate::ll::PreemptiveTimetable;
use rand::Rng;

/// Mutable execution state across rounds.
///
/// The continuous-time executors are event-driven by construction (they
/// jump between slice boundaries and completion instants); `epochs`
/// makes the *decision epochs* — the instants at which a scheduler
/// re-decides, the continuous analogue of the discrete engine's
/// wake-ups — explicit and inspectable.
#[derive(Debug, Clone)]
pub struct ExecState {
    /// Hidden lengths `p_j` (drawn once per execution).
    pub p: Vec<f64>,
    /// Work accrued per job so far.
    pub progress: Vec<f64>,
    /// Completion instants (absolute time), `f64::INFINITY` if pending.
    pub completion: Vec<f64>,
    /// Current absolute time.
    pub now: f64,
    /// Decision-epoch instants: one per oblivious phase start
    /// ([`run_timetable`] / [`run_sequential_fastest`] invocation).
    pub epochs: Vec<f64>,
}

impl ExecState {
    /// Fresh state with lengths drawn `Exp(λ_j)` from `rng`.
    pub fn draw<R: Rng>(inst: &StochInstance, rng: &mut R) -> Self {
        let n = inst.num_jobs();
        let p = (0..n)
            .map(|j| {
                let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                -u.ln() / inst.lambda(j)
            })
            .collect();
        ExecState {
            p,
            progress: vec![0.0; n],
            completion: vec![f64::INFINITY; n],
            now: 0.0,
            epochs: Vec::new(),
        }
    }

    /// Jobs not yet complete.
    pub fn remaining(&self) -> Vec<u32> {
        self.completion
            .iter()
            .enumerate()
            .filter(|(_, &c)| c.is_infinite())
            .map(|(j, _)| j as u32)
            .collect()
    }

    /// `true` once everything is done.
    pub fn all_done(&self) -> bool {
        self.completion.iter().all(|c| c.is_finite())
    }

    /// Latest completion instant (the makespan once `all_done`).
    pub fn makespan(&self) -> f64 {
        self.completion.iter().fold(0.0f64, |a, &b| a.max(b))
    }
}

/// Execute one timetable obliviously: slices run to their full duration;
/// completed jobs idle their machines. Advances `state.now` by the
/// timetable's span and records exact completion instants.
pub fn run_timetable(inst: &StochInstance, tt: &PreemptiveTimetable, state: &mut ExecState) {
    state.epochs.push(state.now);
    for slice in &tt.slices {
        for (i, slot) in slice.assignment.iter().enumerate() {
            let Some(j) = *slot else { continue };
            let j = j as usize;
            if state.completion[j].is_finite() {
                continue; // already done; machine idles
            }
            let v = inst.speed(i, j);
            if v <= 0.0 {
                continue;
            }
            let deficit = state.p[j] - state.progress[j];
            let gained = v * slice.duration;
            if gained >= deficit {
                // Completes mid-slice at an exact instant.
                state.completion[j] = state.now + deficit / v;
                state.progress[j] = state.p[j];
            } else {
                state.progress[j] += gained;
            }
        }
        state.now += slice.duration;
    }
}

/// Run each remaining job to completion, one at a time, on its fastest
/// machine (the post-K fallback of `STC-I`).
pub fn run_sequential_fastest(inst: &StochInstance, state: &mut ExecState) {
    state.epochs.push(state.now);
    for j in state.remaining() {
        let j = j as usize;
        let (_, v) = inst.fastest_machine(j);
        debug_assert!(v > 0.0, "unservable job escaped validation");
        let deficit = state.p[j] - state.progress[j];
        state.now += deficit / v;
        state.progress[j] = state.p[j];
        state.completion[j] = state.now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ll::{solve_ll, Slice};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn inst2() -> StochInstance {
        StochInstance::new(2, 2, vec![1.0, 1.0], vec![1.0; 4]).unwrap()
    }

    #[test]
    fn draw_is_positive_and_seeded() {
        let inst = inst2();
        let a = ExecState::draw(&inst, &mut StdRng::seed_from_u64(1));
        let b = ExecState::draw(&inst, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.p, b.p);
        assert!(a.p.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn timetable_completes_exactly_at_deficit() {
        let inst = inst2();
        let mut state = ExecState::draw(&inst, &mut StdRng::seed_from_u64(2));
        state.p = vec![1.0, 2.0];
        let tt = PreemptiveTimetable {
            makespan: 3.0,
            slices: vec![Slice {
                duration: 3.0,
                assignment: vec![Some(0), Some(1)],
            }],
        };
        run_timetable(&inst, &tt, &mut state);
        assert_eq!(state.epochs, vec![0.0], "one decision epoch per phase");
        assert!((state.completion[0] - 1.0).abs() < 1e-12);
        assert!((state.completion[1] - 2.0).abs() < 1e-12);
        assert!((state.now - 3.0).abs() < 1e-12);
        assert!(state.all_done());
        assert!((state.makespan() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oblivious_slices_do_not_rescue_unfinished_jobs() {
        let inst = inst2();
        let mut state = ExecState::draw(&inst, &mut StdRng::seed_from_u64(3));
        state.p = vec![5.0, 0.5];
        let tt = solve_ll(&inst, &[0, 1], &[1.0, 1.0]).unwrap();
        run_timetable(&inst, &tt, &mut state);
        assert!(state.completion[1].is_finite());
        assert!(state.completion[0].is_infinite(), "job 0 needs more rounds");
        assert_eq!(state.remaining(), vec![0]);
    }

    #[test]
    fn sequential_fallback_finishes_everything() {
        let inst = inst2();
        let mut state = ExecState::draw(&inst, &mut StdRng::seed_from_u64(4));
        state.p = vec![2.0, 3.0];
        run_sequential_fastest(&inst, &mut state);
        assert!(state.all_done());
        // Sequential on speed-1 machines: 2 + 3 = 5.
        assert!((state.makespan() - 5.0).abs() < 1e-12);
    }
}
