//! `RESTART-I`: the Appendix C variant for `R|restart, p_j~stoch|E[Cmax]`.
//!
//! In the *restart* setting a job must run on a single machine at a time
//! and accrues no credit when moved: restarting on a different machine
//! loses all progress. The paper notes the `STC-I` construction carries
//! over by substituting, in each round, a solution to the nonpreemptive
//! `R||Cmax` for the preemptive `R|pmtn|Cmax`.
//!
//! The `R||Cmax` component here is the classic Lenstra–Shmoys–Tardos
//! 2-approximation, built from this workspace's substrates:
//!
//! 1. **Bisection** over the makespan guess `T`; for each guess, an LP
//!    feasibility check over the *filtered* pairs (`p_ij ≤ T`):
//!    `Σ_i x_ij = 1`, `Σ_j p_ij x_ij ≤ λ`, minimizing `λ`.
//! 2. **Slot rounding** (Shmoys–Tardos): machine `i` gets
//!    `⌈Σ_j x_ij⌉` slots; its fractional jobs are poured into slots in
//!    nonincreasing `p_ij` order; a perfect matching of jobs to slots on
//!    the fractional support (Hopcroft–Karp) yields an integral
//!    assignment with makespan `≤ 2T`.

use crate::instance::StochInstance;
use crate::ll::LlError;
use rand::Rng;
use suu_flow::BipartiteMatcher;
use suu_lp::{Cmp, LpBuilder, LpStatus};

/// A nonpreemptive assignment: for each machine, the jobs it runs (in
/// order), plus the LP makespan guess it was rounded against.
#[derive(Debug, Clone)]
pub struct NonpreemptiveAssignment {
    /// `per_machine[i]` lists global job ids machine `i` executes.
    pub per_machine: Vec<Vec<u32>>,
    /// The feasible LP makespan `T` (rounded schedule is ≤ `2T`).
    pub t_guess: f64,
}

/// Solve `R||Cmax` approximately for lengths `p` over `jobs`
/// (Lenstra–Shmoys–Tardos). Processing time of job `jobs[c]` on machine
/// `i` is `p[c] / v_ij`; pairs with zero speed are excluded.
pub fn solve_r_cmax(
    inst: &StochInstance,
    jobs: &[u32],
    p: &[f64],
) -> Result<NonpreemptiveAssignment, LlError> {
    assert_eq!(jobs.len(), p.len());
    let m = inst.num_machines();
    let k = jobs.len();
    if k == 0 {
        return Ok(NonpreemptiveAssignment {
            per_machine: vec![Vec::new(); m],
            t_guess: 0.0,
        });
    }
    // Processing times.
    let proc = |i: usize, c: usize| -> Option<f64> {
        let v = inst.speed(i, jobs[c] as usize);
        (v > 0.0).then(|| p[c].max(0.0) / v)
    };

    // Bisection bounds: lower = max_j best processing time; upper = run
    // everything on its best machine back-to-back.
    let best: Vec<f64> = (0..k)
        .map(|c| {
            (0..m)
                .filter_map(|i| proc(i, c))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mut lo = best.iter().fold(0.0f64, |a, &b| a.max(b));
    let mut hi: f64 = best.iter().sum::<f64>().max(lo);

    // Feasibility: min λ over the filtered pair set; feasible iff λ* ≤ T.
    type MachineSlices = Vec<Vec<(usize, f64)>>;
    let feasibility = |t: f64| -> Result<Option<MachineSlices>, LlError> {
        let mut lp = LpBuilder::minimize();
        let lambda = lp.add_var(1.0);
        let mut vars: Vec<Vec<(usize, suu_lp::VarId, f64)>> = Vec::with_capacity(k);
        for c in 0..k {
            let mut row = Vec::new();
            for i in 0..m {
                if let Some(pt) = proc(i, c) {
                    if pt <= t + 1e-9 {
                        row.push((i, lp.add_var(0.0), pt));
                    }
                }
            }
            if row.is_empty() {
                return Ok(None); // some job has no machine under this T
            }
            vars.push(row);
        }
        for row in &vars {
            let terms: Vec<_> = row.iter().map(|&(_, v, _)| (v, 1.0)).collect();
            lp.add_constraint(&terms, Cmp::Eq, 1.0);
        }
        for i in 0..m {
            let mut terms: Vec<_> = vars
                .iter()
                .flat_map(|row| row.iter().filter(|&&(mi, _, _)| mi == i))
                .map(|&(_, v, pt)| (v, pt))
                .collect();
            if terms.is_empty() {
                continue;
            }
            terms.push((lambda, -1.0));
            lp.add_constraint(&terms, Cmp::Le, 0.0);
        }
        let sol = lp.solve()?;
        if sol.status != LpStatus::Optimal || sol.objective > t + 1e-6 {
            return Ok(None);
        }
        // Extract fractional assignment per job.
        let x = vars
            .iter()
            .map(|row| {
                row.iter()
                    .filter_map(|&(i, v, _)| {
                        let val = sol.value(v);
                        (val > 1e-9).then_some((i, val))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        Ok(Some(x))
    };

    // Bisection (relative precision 1%, ~12 LP solves).
    let mut best_x = feasibility(hi)?.ok_or(LlError::UnexpectedStatus(
        "R||Cmax infeasible at upper bound",
    ))?;
    let mut best_t = hi;
    for _ in 0..24 {
        if hi - lo <= 0.01 * hi.max(1e-12) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        match feasibility(mid)? {
            Some(x) => {
                best_x = x;
                best_t = mid;
                hi = mid;
            }
            None => lo = mid,
        }
    }

    // --- Shmoys–Tardos slot rounding ---
    // Machine i gets ceil(total fraction) slots; jobs poured in
    // nonincreasing processing-time order.
    let mut slots_of_machine: Vec<usize> = Vec::new(); // slot -> machine
    let mut edges: Vec<(usize, usize)> = Vec::new(); // (job c, slot)
    for i in 0..m {
        let mut frac_jobs: Vec<(usize, f64, f64)> = Vec::new(); // (c, x, ptime)
        for (c, row) in best_x.iter().enumerate() {
            for &(mi, x) in row {
                if mi == i {
                    frac_jobs.push((c, x, proc(i, c).expect("pair in support")));
                }
            }
        }
        if frac_jobs.is_empty() {
            continue;
        }
        frac_jobs.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite times"));
        let total: f64 = frac_jobs.iter().map(|f| f.1).sum();
        let num_slots = total.ceil().max(1.0) as usize;
        let first_slot = slots_of_machine.len();
        for _ in 0..num_slots {
            slots_of_machine.push(i);
        }
        // Pour fractions into unit-capacity slots.
        let mut slot = 0usize;
        let mut room = 1.0f64;
        for (c, mut x, _) in frac_jobs {
            while x > 1e-12 {
                debug_assert!(slot < num_slots, "slot overflow");
                edges.push((c, first_slot + slot));
                let poured = x.min(room);
                x -= poured;
                room -= poured;
                if room <= 1e-12 {
                    slot += 1;
                    room = 1.0;
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    let num_slots = slots_of_machine.len();
    let mut matcher = BipartiteMatcher::new(k, num_slots);
    for &(c, s) in &edges {
        matcher.add_edge(c, s);
    }
    if matcher.solve() != k {
        return Err(LlError::NoPerfectMatching);
    }

    let mut per_machine = vec![Vec::new(); m];
    for (c, &job) in jobs.iter().enumerate().take(k) {
        let s = matcher.partner_of_left(c).expect("perfect on jobs");
        per_machine[slots_of_machine[s]].push(job);
    }
    Ok(NonpreemptiveAssignment {
        per_machine,
        t_guess: best_t,
    })
}

/// Outcome of one `RESTART-I` execution.
#[derive(Debug, Clone)]
pub struct RestartOutcome {
    /// Latest completion instant.
    pub makespan: f64,
    /// Rounds played.
    pub rounds_used: u32,
    /// Whether the sequential fallback ran.
    pub fallback_used: bool,
    /// Decision-epoch instants: when each restart round (and the
    /// fallback, if any) began — the wake-up schedule of the adaptive
    /// outer loop, mirroring the discrete engine's policy wake-ups.
    pub round_epochs: Vec<f64>,
}

/// The `RESTART-I` scheduler: `STC-I` with nonpreemptive rounds and
/// restart semantics (no progress carries across rounds).
#[derive(Debug, Clone)]
pub struct RestartI {
    k_max: u32,
}

impl RestartI {
    /// New scheduler (same `K` as `STC-I`).
    pub fn new(inst: &StochInstance) -> Self {
        let v = inst.num_machines().min(inst.num_jobs()).max(4) as f64;
        RestartI {
            k_max: (v.log2().log2().ceil() as u32) + 3,
        }
    }

    /// The round bound `K`.
    pub fn k_max(&self) -> u32 {
        self.k_max
    }

    /// Execute once with hidden `Exp(λ)` lengths drawn from `rng`.
    pub fn run<R: Rng>(
        &self,
        inst: &StochInstance,
        rng: &mut R,
    ) -> Result<RestartOutcome, LlError> {
        let n = inst.num_jobs();
        let p: Vec<f64> = (0..n)
            .map(|j| {
                let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                -u.ln() / inst.lambda(j)
            })
            .collect();
        let mut done = vec![false; n];
        let mut completion = vec![f64::INFINITY; n];
        let mut now = 0.0f64;
        let mut rounds_used = 0;
        let mut round_epochs = Vec::new();

        for k in 1..=self.k_max {
            let remaining: Vec<u32> = (0..n as u32).filter(|&j| !done[j as usize]).collect();
            if remaining.is_empty() {
                break;
            }
            rounds_used = k;
            // Each round start is a decision epoch: the scheduler wakes,
            // observes the remaining set, and commits a nonpreemptive
            // R||Cmax assignment for the round's span.
            round_epochs.push(now);
            let pretend: Vec<f64> = remaining
                .iter()
                .map(|&j| (2.0f64).powi(k as i32 - 2) / inst.lambda(j as usize))
                .collect();
            let asg = solve_r_cmax(inst, &remaining, &pretend)?;

            // Execute: each machine runs its jobs back-to-back; a job
            // completes iff its true length fits inside the pretend
            // budget (restart semantics: unfinished work is discarded).
            let mut round_end = 0.0f64;
            for (i, job_list) in asg.per_machine.iter().enumerate() {
                let mut cursor = now;
                for &j in job_list {
                    let ji = j as usize;
                    let v = inst.speed(i, ji);
                    debug_assert!(v > 0.0, "assigned to zero-speed machine");
                    let c = remaining
                        .iter()
                        .position(|&r| r == j)
                        .expect("assigned job remains");
                    let budget = pretend[c] / v;
                    if p[ji] <= pretend[c] {
                        let finish = cursor + p[ji] / v;
                        done[ji] = true;
                        completion[ji] = finish;
                        cursor = finish;
                    } else {
                        cursor += budget; // ran out; progress discarded
                    }
                }
                round_end = round_end.max(cursor);
            }
            now = round_end.max(now);
        }

        let fallback_used = done.iter().any(|&d| !d);
        if fallback_used {
            round_epochs.push(now);
            // Stragglers: fastest machine, sequentially, to completion.
            for j in 0..n {
                if !done[j] {
                    let (_, v) = inst.fastest_machine(j);
                    now += p[j] / v;
                    completion[j] = now;
                    done[j] = true;
                }
            }
        }

        let makespan = completion.iter().fold(0.0f64, |a, &b| a.max(b));
        Ok(RestartOutcome {
            makespan,
            rounds_used,
            fallback_used,
            round_epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform(m: usize, n: usize) -> StochInstance {
        StochInstance::new(m, n, vec![1.0; n], vec![1.0; m * n]).unwrap()
    }

    #[test]
    fn r_cmax_single_machine_sums() {
        let inst = uniform(1, 3);
        let asg = solve_r_cmax(&inst, &[0, 1, 2], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(asg.per_machine[0].len(), 3);
        // T >= total work / 1 machine = 6 (within bisection slack).
        assert!(asg.t_guess >= 6.0 - 1e-6);
    }

    #[test]
    fn r_cmax_balances_two_machines() {
        let inst = uniform(2, 4);
        let asg = solve_r_cmax(&inst, &[0, 1, 2, 3], &[1.0; 4]).unwrap();
        // Every job assigned exactly once.
        let total: usize = asg.per_machine.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        // 2-approx guarantee: per-machine load <= 2T.
        for (i, list) in asg.per_machine.iter().enumerate() {
            let _ = i;
            let load = list.len() as f64; // unit times, speed 1
            assert!(load <= 2.0 * asg.t_guess + 1e-6);
        }
    }

    #[test]
    fn r_cmax_respects_speeds() {
        // Machine 1 is 10x faster: it should receive most of the work.
        let inst = StochInstance::new(
            2,
            4,
            vec![1.0; 4],
            vec![0.1, 0.1, 0.1, 0.1, 1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let asg = solve_r_cmax(&inst, &[0, 1, 2, 3], &[1.0; 4]).unwrap();
        assert!(asg.per_machine[1].len() >= 3, "{:?}", asg.per_machine);
    }

    #[test]
    fn r_cmax_assignment_within_2t() {
        // Load check under heterogeneous speeds.
        let inst = StochInstance::new(
            3,
            6,
            vec![1.0; 6],
            vec![
                1.0, 2.0, 0.5, 1.0, 0.7, 1.5, //
                2.0, 0.5, 1.0, 0.6, 1.2, 0.8, //
                0.4, 1.1, 2.0, 1.5, 0.9, 1.0,
            ],
        )
        .unwrap();
        let p = [2.0, 1.0, 3.0, 0.5, 1.5, 2.5];
        let asg = solve_r_cmax(&inst, &[0, 1, 2, 3, 4, 5], &p).unwrap();
        for (i, list) in asg.per_machine.iter().enumerate() {
            let load: f64 = list
                .iter()
                .map(|&j| {
                    let c = j as usize;
                    p[c] / inst.speed(i, c)
                })
                .sum();
            assert!(
                load <= 2.0 * asg.t_guess + 1e-6,
                "machine {i} load {load} vs 2T {}",
                2.0 * asg.t_guess
            );
        }
    }

    #[test]
    fn restart_completes_and_scales() {
        let inst = uniform(3, 8);
        let sched = RestartI::new(&inst);
        for seed in 0..15u64 {
            let out = sched.run(&inst, &mut StdRng::seed_from_u64(seed)).unwrap();
            assert!(out.makespan.is_finite() && out.makespan > 0.0);
            assert!(out.rounds_used >= 1 && out.rounds_used <= sched.k_max());
            // One epoch per round (+1 if the fallback engaged), in order.
            let expected = out.rounds_used as usize + out.fallback_used as usize;
            assert_eq!(out.round_epochs.len(), expected);
            assert!(out.round_epochs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn restart_never_beats_preemptive_clairvoyant() {
        use crate::ll::solve_ll;
        use crate::stc_i::StcI;
        let inst = uniform(2, 6);
        let _ = StcI::new(&inst);
        let sched = RestartI::new(&inst);
        for seed in 0..10u64 {
            // Reconstruct the same hidden draws the scheduler saw by
            // comparing against the LL bound on an independent draw set —
            // weaker but sufficient: makespan must exceed the *expected*
            // minimum possible. Here: makespan >= max_j p_j / v_best and
            // >= total work / m. We recompute with the same seed.
            let mut rng = StdRng::seed_from_u64(seed);
            let out = sched.run(&inst, &mut rng).unwrap();
            // Re-draw identical lengths.
            let mut rng2 = StdRng::seed_from_u64(seed);
            let p: Vec<f64> = (0..6)
                .map(|_| {
                    use rand::Rng;
                    let u: f64 = rng2.random_range(f64::MIN_POSITIVE..1.0);
                    -u.ln() / 1.0
                })
                .collect();
            let jobs: Vec<u32> = (0..6).collect();
            let lb = solve_ll(&inst, &jobs, &p).unwrap().makespan;
            assert!(
                out.makespan >= lb - 1e-6,
                "seed {seed}: restart {} under preemptive LB {lb}",
                out.makespan
            );
        }
    }
}
