//! Stochastic scheduling instances.

/// Errors constructing a [`StochInstance`].
#[derive(Debug, Clone, PartialEq)]
pub enum StochError {
    /// Speed matrix has the wrong number of entries.
    BadDimensions { expected: usize, got: usize },
    /// A rate `λ_j` was non-positive or non-finite.
    BadRate { job: u32, lambda: f64 },
    /// A speed was negative or non-finite.
    BadSpeed { machine: u32, job: u32, v: f64 },
    /// A job no machine can process (`v_ij = 0` for all `i`).
    UnservableJob(u32),
}

impl std::fmt::Display for StochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StochError::BadDimensions { expected, got } => {
                write!(f, "speed matrix has {got} entries, expected {expected}")
            }
            StochError::BadRate { job, lambda } => write!(f, "λ[{job}] = {lambda} invalid"),
            StochError::BadSpeed { machine, job, v } => {
                write!(f, "v[{machine},{job}] = {v} invalid")
            }
            StochError::UnservableJob(j) => write!(f, "job {j} has zero speed everywhere"),
        }
    }
}

impl std::error::Error for StochError {}

/// An instance of `R|pmtn, p_j~Exp(λ_j)|E[Cmax]`.
///
/// `v[i*n + j]` is the speed at which machine `i` processes job `j`
/// (work units per unit time); job `j` completes once its accrued work
/// reaches its hidden length `p_j ~ Exp(λ_j)`.
#[derive(Debug, Clone)]
pub struct StochInstance {
    n: usize,
    m: usize,
    lambda: Vec<f64>,
    v: Vec<f64>,
}

impl StochInstance {
    /// Build and validate.
    pub fn new(m: usize, n: usize, lambda: Vec<f64>, v: Vec<f64>) -> Result<Self, StochError> {
        if v.len() != m * n {
            return Err(StochError::BadDimensions {
                expected: m * n,
                got: v.len(),
            });
        }
        if lambda.len() != n {
            return Err(StochError::BadDimensions {
                expected: n,
                got: lambda.len(),
            });
        }
        for (j, &l) in lambda.iter().enumerate() {
            if l.is_nan() || l <= 0.0 || !l.is_finite() {
                return Err(StochError::BadRate {
                    job: j as u32,
                    lambda: l,
                });
            }
        }
        for i in 0..m {
            for j in 0..n {
                let s = v[i * n + j];
                if s.is_nan() || s < 0.0 || !s.is_finite() {
                    return Err(StochError::BadSpeed {
                        machine: i as u32,
                        job: j as u32,
                        v: s,
                    });
                }
            }
        }
        for j in 0..n {
            if (0..m).all(|i| v[i * n + j] == 0.0) {
                return Err(StochError::UnservableJob(j as u32));
            }
        }
        Ok(StochInstance { n, m, lambda, v })
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.n
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.m
    }

    /// Rate `λ_j` (mean length `1/λ_j`).
    pub fn lambda(&self, j: usize) -> f64 {
        self.lambda[j]
    }

    /// Speed of machine `i` on job `j`.
    pub fn speed(&self, i: usize, j: usize) -> f64 {
        self.v[i * self.n + j]
    }

    /// The fastest machine for job `j` and its speed.
    pub fn fastest_machine(&self, j: usize) -> (usize, f64) {
        (0..self.m)
            .map(|i| (i, self.speed(i, j)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("speeds are finite"))
            .expect("at least one machine")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_instance() {
        let inst = StochInstance::new(2, 2, vec![1.0, 2.0], vec![1.0, 0.5, 0.0, 2.0]).unwrap();
        assert_eq!(inst.num_jobs(), 2);
        assert_eq!(inst.speed(1, 1), 2.0);
        assert_eq!(inst.fastest_machine(1), (1, 2.0));
    }

    #[test]
    fn rejects_bad_rate() {
        let err = StochInstance::new(1, 1, vec![0.0], vec![1.0]).unwrap_err();
        assert!(matches!(err, StochError::BadRate { .. }));
    }

    #[test]
    fn rejects_unservable() {
        let err = StochInstance::new(2, 2, vec![1.0, 1.0], vec![1.0, 0.0, 1.0, 0.0]).unwrap_err();
        assert_eq!(err, StochError::UnservableJob(1));
    }

    #[test]
    fn rejects_negative_speed() {
        let err = StochInstance::new(1, 1, vec![1.0], vec![-0.5]).unwrap_err();
        assert!(matches!(err, StochError::BadSpeed { .. }));
    }
}
