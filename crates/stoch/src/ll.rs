//! Lawler–Labetoulle preemptive scheduling of unrelated machines.
//!
//! For deterministic lengths `{p_j}` the makespan-optimal preemptive
//! schedule on unrelated machines (`R|pmtn|Cmax`, Lawler & Labetoulle
//! 1978) is given by the LP
//!
//! ```text
//! min T   s.t.  Σ_i v_ij x_ij >= p_j   ∀j     (work)
//!               Σ_j x_ij      <= T     ∀i     (machine busy time)
//!               Σ_i x_ij      <= T     ∀j     (job elapsed time)
//!               x_ij >= 0
//! ```
//!
//! plus a constructive step turning `{x_ij}` into an actual timetable with
//! no job on two machines at once. We realize that step with the classic
//! Birkhoff–von Neumann peeling: pad `x` to an `(m+n)×(n+m)` matrix whose
//! every row and column sums to exactly `T` (dummy rows/columns absorb
//! idle time), then repeatedly extract a perfect matching on the positive
//! entries — one exists at every step because a doubly stochastic matrix
//! satisfies Hall's condition — and emit it as a time slice of duration
//! equal to its minimum entry.

use crate::instance::StochInstance;
use suu_flow::BipartiteMatcher;
use suu_lp::{Cmp, LpBuilder, LpStatus};

/// One slice of a preemptive timetable: for `duration` time units, machine
/// `i` processes `assignment[i]` (or idles on `None`).
#[derive(Debug, Clone)]
pub struct Slice {
    /// Slice length (time units).
    pub duration: f64,
    /// Per machine: the job it processes during this slice.
    pub assignment: Vec<Option<u32>>,
}

/// A preemptive schedule: consecutive [`Slice`]s.
#[derive(Debug, Clone)]
pub struct PreemptiveTimetable {
    /// The LP optimum `T` (total schedule span).
    pub makespan: f64,
    /// Time slices, in order; durations sum to `makespan` (within fp
    /// tolerance).
    pub slices: Vec<Slice>,
}

impl PreemptiveTimetable {
    /// Total time machine `i` spends on job `j` across slices.
    pub fn work_time(&self, i: usize, j: u32) -> f64 {
        self.slices
            .iter()
            .filter(|s| s.assignment[i] == Some(j))
            .map(|s| s.duration)
            .sum()
    }

    /// Check the defining feasibility property: within every slice, no job
    /// appears on two machines. (Each machine trivially runs ≤ 1 job since
    /// a slice stores one job per machine.) Returns the violating slice
    /// index if any.
    pub fn find_conflict(&self) -> Option<usize> {
        for (idx, s) in self.slices.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for j in s.assignment.iter().flatten() {
                if !seen.insert(*j) {
                    return Some(idx);
                }
            }
        }
        None
    }
}

/// Errors from the LL pipeline.
#[derive(Debug, Clone)]
pub enum LlError {
    /// LP solver failure.
    Lp(suu_lp::LpError),
    /// Unexpected LP status (valid instances are always feasible/bounded).
    UnexpectedStatus(&'static str),
    /// The Birkhoff peeling failed to find a perfect matching — impossible
    /// for a correctly padded matrix; indicates a numeric breakdown.
    NoPerfectMatching,
}

impl std::fmt::Display for LlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlError::Lp(e) => write!(f, "LL LP failed: {e}"),
            LlError::UnexpectedStatus(s) => write!(f, "LL LP status: {s}"),
            LlError::NoPerfectMatching => write!(f, "Birkhoff peeling: no perfect matching"),
        }
    }
}

impl std::error::Error for LlError {}

impl From<suu_lp::LpError> for LlError {
    fn from(e: suu_lp::LpError) -> Self {
        LlError::Lp(e)
    }
}

/// Entries below this are treated as zero during peeling.
const PEEL_EPS: f64 = 1e-9;

/// Solve `R|pmtn|Cmax` for deterministic lengths `p` over the instance's
/// speeds, returning the optimal preemptive timetable.
///
/// `jobs` selects the (global) job indices to schedule; `p[k]` is the
/// length of `jobs[k]`.
pub fn solve_ll(
    inst: &StochInstance,
    jobs: &[u32],
    p: &[f64],
) -> Result<PreemptiveTimetable, LlError> {
    assert_eq!(jobs.len(), p.len(), "length per selected job");
    let m = inst.num_machines();
    let k = jobs.len();
    if k == 0 {
        return Ok(PreemptiveTimetable {
            makespan: 0.0,
            slices: Vec::new(),
        });
    }

    // --- LP ---
    let mut lp = LpBuilder::minimize();
    let t = lp.add_var(1.0);
    // x[c][i]: time machine i spends on the c-th selected job.
    let mut x = vec![Vec::with_capacity(m); k];
    for (c, &j) in jobs.iter().enumerate() {
        for i in 0..m {
            let v = inst.speed(i, j as usize);
            x[c].push(if v > 0.0 { Some(lp.add_var(0.0)) } else { None });
        }
    }
    for (c, &j) in jobs.iter().enumerate() {
        let terms: Vec<_> = (0..m)
            .filter_map(|i| x[c][i].map(|var| (var, inst.speed(i, j as usize))))
            .collect();
        lp.add_constraint(&terms, Cmp::Ge, p[c].max(0.0));
        // Job elapsed-time constraint.
        let mut terms: Vec<_> = (0..m)
            .filter_map(|i| x[c][i].map(|var| (var, 1.0)))
            .collect();
        terms.push((t, -1.0));
        lp.add_constraint(&terms, Cmp::Le, 0.0);
    }
    // `i` walks the second dimension of `x`; an iterator form would hide it.
    #[allow(clippy::needless_range_loop)]
    for i in 0..m {
        let mut terms: Vec<_> = (0..k)
            .filter_map(|c| x[c][i].map(|var| (var, 1.0)))
            .collect();
        if terms.is_empty() {
            continue;
        }
        terms.push((t, -1.0));
        lp.add_constraint(&terms, Cmp::Le, 0.0);
    }
    let sol = lp.solve()?;
    match sol.status {
        LpStatus::Optimal => {}
        LpStatus::Infeasible => return Err(LlError::UnexpectedStatus("infeasible")),
        LpStatus::Unbounded => return Err(LlError::UnexpectedStatus("unbounded")),
    }
    let big_t = sol.objective;
    if big_t <= PEEL_EPS {
        return Ok(PreemptiveTimetable {
            makespan: 0.0,
            slices: Vec::new(),
        });
    }

    // --- Pad to a doubly-T square matrix of size s = m + k ---
    // Layout: rows = real machines (0..m) then dummy machines (m..m+k);
    // cols = real jobs (0..k) then dummy jobs (k..k+m).
    let s = m + k;
    let mut y = vec![0.0f64; s * s];
    let mut row_sum = vec![0.0f64; m];
    let mut col_sum = vec![0.0f64; k];
    for c in 0..k {
        for i in 0..m {
            if let Some(var) = x[c][i] {
                let val = sol.value(var).max(0.0);
                y[i * s + c] = val;
                row_sum[i] += val;
                col_sum[c] += val;
            }
        }
    }
    // Machine idle time -> dummy job k+i.
    for i in 0..m {
        y[i * s + (k + i)] = (big_t - row_sum[i]).max(0.0);
    }
    // Job idle time -> dummy machine m+c.
    for c in 0..k {
        y[(m + c) * s + c] = (big_t - col_sum[c]).max(0.0);
    }
    // Fill the dummy-dummy block so row m+c sums to T and column k+i sums
    // to T: row m+c still needs col_sum[c]; column k+i still needs
    // row_sum[i]; totals agree, so a northwest-corner fill works.
    {
        let mut need_row: Vec<f64> = col_sum.clone(); // per dummy machine m+c
        let mut need_col: Vec<f64> = row_sum.clone(); // per dummy job k+i
        let (mut r, mut c) = (0usize, 0usize);
        while r < k && c < m {
            let amount = need_row[r].min(need_col[c]);
            if amount > PEEL_EPS {
                y[(m + r) * s + (k + c)] = amount;
            }
            need_row[r] -= amount;
            need_col[c] -= amount;
            if need_row[r] <= PEEL_EPS {
                r += 1;
            } else {
                c += 1;
            }
        }
    }

    // --- Birkhoff peeling ---
    let mut slices = Vec::new();
    let mut remaining = big_t;
    let max_iters = s * s + s + 8;
    for _ in 0..max_iters {
        if remaining <= PEEL_EPS * (s as f64) {
            break;
        }
        let mut matcher = BipartiteMatcher::new(s, s);
        for r in 0..s {
            for c in 0..s {
                if y[r * s + c] > PEEL_EPS {
                    matcher.add_edge(r, c);
                }
            }
        }
        if matcher.solve() != s {
            return Err(LlError::NoPerfectMatching);
        }
        // Slice duration = min matched entry (capped by remaining time).
        let mut delta = remaining;
        for r in 0..s {
            let c = matcher.partner_of_left(r).expect("perfect matching");
            delta = delta.min(y[r * s + c]);
        }
        let mut assignment = vec![None; m];
        for (r, slot) in assignment.iter_mut().enumerate() {
            let c = matcher.partner_of_left(r).expect("perfect matching");
            if c < k {
                *slot = Some(jobs[c]);
            }
        }
        for r in 0..s {
            let c = matcher.partner_of_left(r).expect("perfect matching");
            y[r * s + c] -= delta;
        }
        slices.push(Slice {
            duration: delta,
            assignment,
        });
        remaining -= delta;
    }

    Ok(PreemptiveTimetable {
        makespan: big_t,
        slices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_inst(m: usize, n: usize, speed: f64) -> StochInstance {
        StochInstance::new(m, n, vec![1.0; n], vec![speed; m * n]).unwrap()
    }

    #[test]
    fn single_job_single_machine() {
        let inst = uniform_inst(1, 1, 2.0);
        let tt = solve_ll(&inst, &[0], &[4.0]).unwrap();
        assert!((tt.makespan - 2.0).abs() < 1e-6); // 4 work / speed 2
        assert!(tt.find_conflict().is_none());
        assert!((tt.work_time(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn one_job_cannot_parallelize() {
        // 3 machines but a single job: elapsed-time constraint forces
        // T = p / v_max, not p / (3v).
        let inst = uniform_inst(3, 1, 1.0);
        let tt = solve_ll(&inst, &[0], &[3.0]).unwrap();
        assert!((tt.makespan - 3.0).abs() < 1e-6, "T = {}", tt.makespan);
        assert!(tt.find_conflict().is_none());
    }

    #[test]
    fn jobs_spread_across_machines() {
        // 2 machines, 2 unit-length jobs, speed 1: T = 1.
        let inst = uniform_inst(2, 2, 1.0);
        let tt = solve_ll(&inst, &[0, 1], &[1.0, 1.0]).unwrap();
        assert!((tt.makespan - 1.0).abs() < 1e-6);
        assert!(tt.find_conflict().is_none());
        // Each job receives its full work.
        for j in 0..2u32 {
            let total: f64 = (0..2).map(|i| tt.work_time(i, j)).sum();
            assert!((total - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn preemption_beats_nonpreemptive_assignment() {
        // Classic: 2 machines, 3 identical jobs of length 1, speed 1.
        // Preemptive optimum T = 1.5.
        let inst = uniform_inst(2, 3, 1.0);
        let tt = solve_ll(&inst, &[0, 1, 2], &[1.0, 1.0, 1.0]).unwrap();
        assert!((tt.makespan - 1.5).abs() < 1e-6, "T = {}", tt.makespan);
        assert!(tt.find_conflict().is_none());
    }

    #[test]
    fn heterogeneous_speeds_favor_fast_machines() {
        // Machine 0 speed 10, machine 1 speed 1; 2 jobs length 10:
        // optimal splits so T ≈ 20/11 · ... just verify feasibility + LP
        // consistency: work delivered == p for each job.
        let inst = StochInstance::new(2, 2, vec![1.0, 1.0], vec![10.0, 10.0, 1.0, 1.0]).unwrap();
        let tt = solve_ll(&inst, &[0, 1], &[10.0, 10.0]).unwrap();
        assert!(tt.find_conflict().is_none());
        for (c, &j) in [0u32, 1].iter().enumerate() {
            let _ = c;
            let work: f64 = (0..2)
                .map(|i| tt.work_time(i, j) * inst.speed(i, j as usize))
                .sum();
            assert!(work >= 10.0 - 1e-5, "job {j} got {work}");
        }
        // Durations sum to makespan.
        let span: f64 = tt.slices.iter().map(|s| s.duration).sum();
        assert!((span - tt.makespan).abs() < 1e-5);
    }

    #[test]
    fn zero_speed_machine_never_assigned() {
        let inst = StochInstance::new(2, 1, vec![1.0], vec![1.0, 0.0]).unwrap();
        let tt = solve_ll(&inst, &[0], &[2.0]).unwrap();
        assert_eq!(tt.work_time(1, 0), 0.0);
    }

    #[test]
    fn empty_jobs() {
        let inst = uniform_inst(2, 2, 1.0);
        let tt = solve_ll(&inst, &[], &[]).unwrap();
        assert_eq!(tt.makespan, 0.0);
        assert!(tt.slices.is_empty());
    }
}
