//! # suu-stoch — stochastic scheduling with exponential job lengths
//! (Appendix C)
//!
//! The paper's Appendix C transfers the SUU machinery to classical
//! *stochastic scheduling*: jobs with lengths `p_j ~ Exp(λ_j)` on unrelated
//! machines with speeds `v_ij`, preemption allowed, one machine per job at
//! a time, minimizing expected makespan
//! (`R|pmtn, p_j~stoch|E[Cmax]`). This crate implements:
//!
//! * [`StochInstance`] — rates `λ_j` and speeds `v_ij`.
//! * [`ll`] — the **Lawler–Labetoulle LP** for the deterministic analog
//!   `R|pmtn|Cmax` plus the construction of an actual preemptive
//!   timetable achieving the LP optimum: pad the fractional assignment to
//!   a doubly-`T` square matrix and peel off **perfect matchings**
//!   (Birkhoff–von Neumann, via `suu-flow`'s Hopcroft–Karp), each matching
//!   becoming one time slice in which every machine serves at most one job
//!   and every job is served by at most one machine.
//! * [`stc_i`] — the paper's `STC-I` algorithm (Theorem 13):
//!   `K = ⌈log₂ log₂ min(m,n)⌉ + 3` rounds, round `k` scheduling the
//!   remaining jobs with deterministic lengths `2^{k−2}/λ_j` via the LL
//!   timetable; stragglers after round `K` run sequentially on their
//!   fastest machine.
//! * [`sim`] — a continuous-time executor: hidden `Exp(λ_j)` draws, work
//!   accrual through timetable slices, exact completion instants.
//!
//! The per-realization LL optimum `T_LL({p_j})` is a *clairvoyant lower
//! bound* on any schedule's makespan for that realization, so measured
//! ratios `E[T_STC-I] / E[T_LL]` bound the true approximation factor from
//! above — this is the `fig_stoch` experiment.

pub mod instance;
pub mod ll;
pub mod restart;
pub mod sim;
pub mod stc_i;

pub use instance::{StochError, StochInstance};
pub use ll::{solve_ll, PreemptiveTimetable, Slice};
pub use restart::{solve_r_cmax, NonpreemptiveAssignment, RestartI, RestartOutcome};
pub use stc_i::{StcI, StcOutcome};

#[cfg(test)]
mod tests;
