//! Solution verification helpers used by tests and by downstream crates'
//! debug assertions.
//!
//! These operate on the *model* (not the solver internals), so they give an
//! independent check that a claimed solution actually satisfies the
//! constraint system.

use crate::{Cmp, LpBuilder, LpSolution};

/// Maximum constraint violation of `x` under the model, i.e.
/// `max(0, lhs - rhs)` for `<=`, `max(0, rhs - lhs)` for `>=`, `|lhs - rhs|`
/// for `=`, and `max(0, -x_j)` over variables.
pub fn max_violation(lp: &LpBuilder, x: &[f64]) -> f64 {
    let mut worst = 0.0f64;
    for &v in x {
        worst = worst.max(-v);
    }
    for row in &lp.rows {
        let lhs: f64 = row.terms.iter().map(|&(v, c)| c * x[v]).sum();
        let viol = match row.cmp {
            Cmp::Le => lhs - row.rhs,
            Cmp::Ge => row.rhs - lhs,
            Cmp::Eq => (lhs - row.rhs).abs(),
        };
        worst = worst.max(viol);
    }
    worst
}

/// `true` if `x` is feasible within tolerance `tol`.
pub fn is_feasible(lp: &LpBuilder, x: &[f64], tol: f64) -> bool {
    max_violation(lp, x) <= tol
}

/// Objective value of an arbitrary point under the model's original sense.
pub fn objective_of(lp: &LpBuilder, x: &[f64]) -> f64 {
    lp.obj.iter().zip(x).map(|(c, v)| c * v).sum()
}

/// Assert (in tests) that `sol` is feasible and at least as good as the
/// provided reference feasible point. Panics with diagnostics otherwise.
pub fn assert_optimal_vs(lp: &LpBuilder, sol: &LpSolution, reference: &[f64], tol: f64) {
    assert!(
        is_feasible(lp, &sol.x, tol),
        "solution infeasible: violation {}",
        max_violation(lp, &sol.x)
    );
    assert!(
        is_feasible(lp, reference, tol),
        "reference point infeasible: violation {}",
        max_violation(lp, reference)
    );
    let ref_obj = objective_of(lp, reference);
    match lp.sense {
        crate::Sense::Minimize => assert!(
            sol.objective <= ref_obj + tol,
            "claimed optimum {} worse than feasible reference {}",
            sol.objective,
            ref_obj
        ),
        crate::Sense::Maximize => assert!(
            sol.objective >= ref_obj - tol,
            "claimed optimum {} worse than feasible reference {}",
            sol.objective,
            ref_obj
        ),
    }
}
