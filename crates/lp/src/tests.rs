//! Unit and property tests for the simplex solver.

use crate::verify::{assert_optimal_vs, is_feasible, max_violation, objective_of};
use crate::{Cmp, LpBuilder, LpStatus};
use proptest::prelude::*;

const TOL: f64 = 1e-6;

#[test]
fn trivial_single_var() {
    // min x  s.t. x >= 3
    let mut lp = LpBuilder::minimize();
    let x = lp.add_var(1.0);
    lp.add_constraint(&[(x, 1.0)], Cmp::Ge, 3.0);
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!((s.objective - 3.0).abs() < TOL);
    assert!((s.value(x) - 3.0).abs() < TOL);
}

#[test]
fn empty_constraints_minimum_at_origin() {
    let mut lp = LpBuilder::minimize();
    let x = lp.add_var(2.0);
    let y = lp.add_var(3.0);
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!(s.objective.abs() < TOL);
    assert!(s.value(x).abs() < TOL && s.value(y).abs() < TOL);
}

#[test]
fn textbook_max_profit() {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => opt 36 at (2,6)
    let mut lp = LpBuilder::maximize();
    let x = lp.add_var(3.0);
    let y = lp.add_var(5.0);
    lp.add_constraint(&[(x, 1.0)], Cmp::Le, 4.0);
    lp.add_constraint(&[(y, 2.0)], Cmp::Le, 12.0);
    lp.add_constraint(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!((s.objective - 36.0).abs() < TOL);
    assert!((s.value(x) - 2.0).abs() < TOL);
    assert!((s.value(y) - 6.0).abs() < TOL);
}

#[test]
fn equality_constraints() {
    // min x + y s.t. x + y = 5, x - y = 1  => (3,2), obj 5
    let mut lp = LpBuilder::minimize();
    let x = lp.add_var(1.0);
    let y = lp.add_var(1.0);
    lp.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
    lp.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!((s.value(x) - 3.0).abs() < TOL);
    assert!((s.value(y) - 2.0).abs() < TOL);
}

#[test]
fn negative_rhs_normalization() {
    // min x s.t. -x <= -2  (i.e. x >= 2)
    let mut lp = LpBuilder::minimize();
    let x = lp.add_var(1.0);
    lp.add_constraint(&[(x, -1.0)], Cmp::Le, -2.0);
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!((s.value(x) - 2.0).abs() < TOL);
}

#[test]
fn infeasible_system() {
    // x <= 1 and x >= 2
    let mut lp = LpBuilder::minimize();
    let x = lp.add_var(1.0);
    lp.add_constraint(&[(x, 1.0)], Cmp::Le, 1.0);
    lp.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.0);
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Infeasible);
}

#[test]
fn infeasible_equalities() {
    let mut lp = LpBuilder::minimize();
    let x = lp.add_var(0.0);
    let y = lp.add_var(0.0);
    lp.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 1.0);
    lp.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
    assert_eq!(lp.solve().unwrap().status, LpStatus::Infeasible);
}

#[test]
fn unbounded_problem() {
    // min -x, x unconstrained above
    let mut lp = LpBuilder::minimize();
    let _x = lp.add_var(-1.0);
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Unbounded);
}

#[test]
fn unbounded_with_constraints() {
    // max x + y s.t. x - y <= 1 : can push both up forever.
    let mut lp = LpBuilder::maximize();
    let x = lp.add_var(1.0);
    let y = lp.add_var(1.0);
    lp.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
    assert_eq!(lp.solve().unwrap().status, LpStatus::Unbounded);
}

#[test]
fn beale_cycling_example_terminates() {
    // Beale's classic cycling LP (degenerate). With Bland fallback the
    // solver must terminate at the optimum -0.05.
    // min -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7
    // s.t. 0.25 x4 - 60 x5 - 0.04 x6 + 9 x7 <= 0
    //      0.5  x4 - 90 x5 - 0.02 x6 + 3 x7 <= 0
    //      x6 <= 1
    let mut lp = LpBuilder::minimize();
    let x4 = lp.add_var(-0.75);
    let x5 = lp.add_var(150.0);
    let x6 = lp.add_var(-0.02);
    let x7 = lp.add_var(6.0);
    lp.add_constraint(
        &[(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)],
        Cmp::Le,
        0.0,
    );
    lp.add_constraint(
        &[(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)],
        Cmp::Le,
        0.0,
    );
    lp.add_constraint(&[(x6, 1.0)], Cmp::Le, 1.0);
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!((s.objective - (-0.05)).abs() < TOL, "got {}", s.objective);
}

#[test]
fn redundant_rows_are_handled() {
    // Duplicate equality rows leave a redundant artificial basic.
    let mut lp = LpBuilder::minimize();
    let x = lp.add_var(1.0);
    let y = lp.add_var(2.0);
    lp.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
    lp.add_constraint(&[(x, 2.0), (y, 2.0)], Cmp::Eq, 8.0);
    lp.add_constraint(&[(x, 3.0), (y, 3.0)], Cmp::Eq, 12.0);
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    // min x + 2y on x + y = 4 => y = 0, x = 4.
    assert!((s.objective - 4.0).abs() < TOL);
}

#[test]
fn duplicate_terms_accumulate() {
    // x appears twice in the row: coefficient should be 2.
    let mut lp = LpBuilder::minimize();
    let x = lp.add_var(1.0);
    lp.add_constraint(&[(x, 1.0), (x, 1.0)], Cmp::Ge, 6.0);
    let s = lp.solve().unwrap();
    assert!((s.value(x) - 3.0).abs() < TOL);
}

#[test]
fn transportation_problem_known_optimum() {
    // 2 suppliers (cap 20, 30), 3 demands (10, 25, 15), unit costs:
    //   c = [ [2, 3, 1],
    //         [5, 4, 8] ]
    // Optimal: supply demands greedily -> known LP optimum 145.
    // s1: d1=10(c2)=20, d3=15(c1)=15 => 35 used cap 25 <= 20? Recompute:
    // This is verified against an independent brute-force in the proptest
    // below; here we assert feasibility + objective stability.
    let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
    let caps = [20.0, 30.0];
    let demands = [10.0, 25.0, 15.0];
    let mut lp = LpBuilder::minimize();
    let mut vars = [[None; 3]; 2];
    for i in 0..2 {
        for j in 0..3 {
            vars[i][j] = Some(lp.add_var(costs[i][j]));
        }
    }
    for (i, &cap) in caps.iter().enumerate() {
        let row: Vec<_> = (0..3).map(|j| (vars[i][j].unwrap(), 1.0)).collect();
        lp.add_constraint(&row, Cmp::Le, cap);
    }
    for (j, &d) in demands.iter().enumerate() {
        let col: Vec<_> = (0..2).map(|i| (vars[i][j].unwrap(), 1.0)).collect();
        lp.add_constraint(&col, Cmp::Ge, d);
    }
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!(is_feasible(&lp, &s.x, TOL));
    // Independent optimum: x11=10 (20), x13=15 (15), x12=? supply1 has 20
    // cap: 10+15=25 > 20, so split. LP answer checked numerically:
    let expected = 150.0; // x11=5? — see brute-force check below.
                          // We don't hard-code a possibly-wrong hand computation; instead check
                          // against a grid search over the 1-degree-of-freedom optimal face.
    let mut best = f64::INFINITY;
    // x1j = a,b,c with a+b+c <= 20; x2j = demands - x1j >= 0 and sums <= 30.
    let step = 0.5;
    let mut a = 0.0;
    while a <= 10.0 {
        let mut b = 0.0;
        while b <= 25.0 {
            let mut c = 0.0;
            while c <= 15.0 {
                if a + b + c <= 20.0 + 1e-9 {
                    let (d, e, f) = (10.0 - a, 25.0 - b, 15.0 - c);
                    if d + e + f <= 30.0 + 1e-9 {
                        let obj = 2.0 * a + 3.0 * b + c + 5.0 * d + 4.0 * e + 8.0 * f;
                        best = best.min(obj);
                    }
                }
                c += step;
            }
            b += step;
        }
        a += step;
    }
    let _ = expected;
    assert!(
        (s.objective - best).abs() < 0.51, // grid resolution slack
        "simplex {} vs grid {}",
        s.objective,
        best
    );
    assert!(s.objective <= best + 1e-6);
}

#[test]
fn mini_lp1_shape() {
    // A miniature of the paper's (LP1): 2 jobs, 2 machines.
    // min t s.t. sum_i l_ij x_ij >= L  (per job), sum_j x_ij <= t (per machine)
    let l = [[1.0, 0.5], [0.25, 2.0]]; // l[i][j]
    let big_l = 0.5;
    let mut lp = LpBuilder::minimize();
    let t = lp.add_var(1.0);
    let mut x = [[None; 2]; 2];
    for row in &mut x {
        for slot in row.iter_mut() {
            *slot = Some(lp.add_var(0.0));
        }
    }
    for j in 0..2 {
        let row: Vec<_> = (0..2).map(|i| (x[i][j].unwrap(), l[i][j])).collect();
        lp.add_constraint(&row, Cmp::Ge, big_l);
    }
    for xi in &x {
        let mut row: Vec<_> = xi.iter().map(|v| (v.unwrap(), 1.0)).collect();
        row.push((t, -1.0));
        lp.add_constraint(&row, Cmp::Le, 0.0);
    }
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    // A feasible reference: machine 0 serves job 0 (x00 = 0.5), machine 1
    // serves job 1 (x11 = 0.25), t = 0.5. The true optimum is better
    // (machine 1 helps job 0 with its spare capacity): t = 0.45.
    let mut reference = vec![0.0; lp.num_vars()];
    reference[x[0][0].unwrap().index()] = 0.5;
    reference[x[1][1].unwrap().index()] = 0.25;
    reference[t.index()] = 0.5;
    assert_optimal_vs(&lp, &s, &reference, 1e-6);
    assert!((s.objective - 0.45).abs() < TOL, "obj {}", s.objective);
}

#[test]
fn large_diagonal_lp_fast() {
    // min sum x_i s.t. x_i >= i/7 — sanity + smoke test for sizes ~500.
    let n = 500;
    let mut lp = LpBuilder::minimize();
    let vars: Vec<_> = (0..n).map(|_| lp.add_var(1.0)).collect();
    let mut expect = 0.0;
    for (i, &v) in vars.iter().enumerate() {
        let b = (i % 13) as f64 / 7.0;
        lp.add_constraint(&[(v, 1.0)], Cmp::Ge, b);
        expect += b;
    }
    let s = lp.solve().unwrap();
    assert_eq!(s.status, LpStatus::Optimal);
    assert!((s.objective - expect).abs() < 1e-4);
}

#[test]
fn zero_rhs_ge_constraint() {
    // x - y >= 0, y >= 2, min x => x = 2.
    let mut lp = LpBuilder::minimize();
    let x = lp.add_var(1.0);
    let y = lp.add_var(0.0);
    lp.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Ge, 0.0);
    lp.add_constraint(&[(y, 1.0)], Cmp::Ge, 2.0);
    let s = lp.solve().unwrap();
    assert!((s.value(x) - 2.0).abs() < TOL);
}

#[test]
fn maximize_reports_original_sign() {
    let mut lp = LpBuilder::maximize();
    let x = lp.add_var(4.0);
    lp.add_constraint(&[(x, 1.0)], Cmp::Le, 2.5);
    let s = lp.solve().unwrap();
    assert!((s.objective - 10.0).abs() < TOL);
}

// ---------- property tests ----------

/// Strategy: random "covering" LPs of the LP1 family — always feasible,
/// always bounded, with a known feasible reference point.
fn covering_lp_strategy() -> impl Strategy<Value = (usize, usize, Vec<f64>, f64)> {
    (1usize..6, 1usize..6).prop_flat_map(|(nj, nm)| {
        let coeffs = proptest::collection::vec(0.01f64..4.0, nj * nm);
        (Just(nj), Just(nm), coeffs, 0.1f64..2.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lp1_family_is_solved_optimally((nj, nm, l, big_l) in covering_lp_strategy()) {
        // Build LP1(J, L): min t; mass_j >= L; load_i <= t.
        let mut lp = LpBuilder::minimize();
        let t = lp.add_var(1.0);
        let mut xs = vec![vec![]; nm];
        for row in xs.iter_mut() {
            for _ in 0..nj {
                row.push(lp.add_var(0.0));
            }
        }
        for j in 0..nj {
            let row: Vec<_> = (0..nm).map(|i| (xs[i][j], l[i * nj + j])).collect();
            lp.add_constraint(&row, Cmp::Ge, big_l);
        }
        for (i, xrow) in xs.iter().enumerate() {
            let _ = i;
            let mut row: Vec<_> = xrow.iter().map(|&v| (v, 1.0)).collect();
            row.push((t, -1.0));
            lp.add_constraint(&row, Cmp::Le, 0.0);
        }
        let s = lp.solve().unwrap();
        prop_assert_eq!(s.status, LpStatus::Optimal);

        // Reference feasible point: each job served entirely by machine 0.
        let mut reference = vec![0.0; lp.num_vars()];
        let mut load0 = 0.0;
        for j in 0..nj {
            let steps = big_l / l[j]; // machine 0's coefficient for job j
            reference[xs[0][j].index()] = steps;
            load0 += steps;
        }
        reference[t.index()] = load0;
        assert_optimal_vs(&lp, &s, &reference, 1e-5);
    }

    #[test]
    fn random_inequality_lps_feasible_and_no_worse_than_origin(
        n in 1usize..5,
        m in 0usize..5,
        seedable in proptest::collection::vec(-2.0f64..2.0, 36),
    ) {
        // Constraints a·x <= b with b >= 0 keep the origin feasible; the
        // objective is non-negative so the LP is bounded below by 0 only if
        // c >= 0 — force that, making `origin` a valid reference point.
        let mut lp = LpBuilder::minimize();
        let vars: Vec<_> = (0..n).map(|k| lp.add_var(seedable[k].abs())).collect();
        for r in 0..m {
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(k, &v)| (v, seedable[(r * n + k + 5) % 36]))
                .collect();
            let rhs = seedable[(r * 7 + 11) % 36].abs();
            lp.add_constraint(&terms, Cmp::Le, rhs);
        }
        let s = lp.solve().unwrap();
        prop_assert_eq!(s.status, LpStatus::Optimal);
        let origin = vec![0.0; lp.num_vars()];
        assert_optimal_vs(&lp, &s, &origin, 1e-6);
    }

    #[test]
    fn solutions_satisfy_reported_objective(
        n in 1usize..6,
        coeffs in proptest::collection::vec(0.0f64..3.0, 6),
        rhs in proptest::collection::vec(0.0f64..5.0, 6),
    ) {
        let mut lp = LpBuilder::minimize();
        let vars: Vec<_> = (0..n).map(|k| lp.add_var(coeffs[k])).collect();
        for (k, &v) in vars.iter().enumerate() {
            lp.add_constraint(&[(v, 1.0)], Cmp::Ge, rhs[k]);
        }
        let s = lp.solve().unwrap();
        prop_assert_eq!(s.status, LpStatus::Optimal);
        let recomputed = objective_of(&lp, &s.x);
        prop_assert!((recomputed - s.objective).abs() < 1e-6,
            "reported {} recomputed {}", s.objective, recomputed);
        prop_assert!(max_violation(&lp, &s.x) < 1e-7);
    }
}
