//! # suu-lp — a dense two-phase primal simplex solver
//!
//! Linear-programming substrate for the SUU reproduction. The paper's
//! algorithms rely on solving the relaxations (LP1) and (LP2) (Sections 3
//! and 4 of Crutchfield et al., SPAA 2008) and the Lawler–Labetoulle LP for
//! `R|pmtn|Cmax` (Appendix C). No third-party LP solver is available in this
//! environment, so this crate implements one from scratch:
//!
//! * [`LpBuilder`] — a small modelling API: non-negative variables, linear
//!   constraints (`<=`, `>=`, `=`), and a linear objective to minimize or
//!   maximize.
//! * A classic **two-phase tableau simplex** with Dantzig pricing and a
//!   Bland's-rule fallback for anti-cycling, suitable for the dense,
//!   moderately sized LPs produced by the scheduling relaxations
//!   (thousands of variables, hundreds to a few thousand rows).
//!
//! The solver is deterministic: the same model always produces the same
//! solution, which keeps the scheduling experiments reproducible.
//!
//! ## Example
//!
//! ```
//! use suu_lp::{LpBuilder, Cmp, LpStatus};
//!
//! // min  x + 2y   s.t.  x + y >= 4,  y <= 3,  x,y >= 0
//! let mut lp = LpBuilder::minimize();
//! let x = lp.add_var(1.0);
//! let y = lp.add_var(2.0);
//! lp.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
//! lp.add_constraint(&[(y, 1.0)], Cmp::Le, 3.0);
//! let sol = lp.solve().unwrap();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 4.0).abs() < 1e-7); // x=4, y=0
//! ```

mod model;
mod simplex;
pub mod verify;

pub use model::{Cmp, LpBuilder, LpError, LpSolution, LpStatus, Sense, VarId};
pub(crate) use simplex::solve_standard_form;

#[cfg(test)]
mod tests;
