//! LP modelling layer: variables, constraints, objective.
//!
//! The builder produces a sparse intermediate representation which the
//! simplex module densifies. All variables are non-negative (`x >= 0`);
//! upper bounds are expressed as ordinary constraints, which is the form the
//! SUU relaxations need.

use std::fmt;

/// Handle to a decision variable created by [`LpBuilder::add_var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in [`LpSolution::x`].
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    Minimize,
    Maximize,
}

/// Terminal status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Errors that prevent a solve from terminating normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The pivot loop exceeded its hard iteration budget. With Bland's rule
    /// this indicates a bug or a pathologically conditioned model, so it is
    /// surfaced rather than silently looping.
    IterationLimit {
        /// Phase (1 or 2) in which the limit was hit.
        phase: u8,
        /// Number of pivots performed.
        iterations: usize,
    },
    /// A constraint referenced a variable id from a different model.
    BadVariable(usize),
    /// A coefficient or right-hand side was NaN/infinite.
    NotFinite,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::IterationLimit { phase, iterations } => write!(
                f,
                "simplex iteration limit reached in phase {phase} after {iterations} pivots"
            ),
            LpError::BadVariable(i) => write!(f, "constraint references unknown variable #{i}"),
            LpError::NotFinite => write!(f, "model contains NaN or infinite coefficients"),
        }
    }
}

impl std::error::Error for LpError {}

/// Solution returned by [`LpBuilder::solve`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Terminal status. `objective`/`x` are meaningful only for `Optimal`.
    pub status: LpStatus,
    /// Objective value in the *original* sense (max problems are negated
    /// internally and restored here).
    pub objective: f64,
    /// Value per variable, indexed by [`VarId::index`].
    pub x: Vec<f64>,
    /// Number of simplex pivots performed across both phases.
    pub pivots: usize,
}

impl LpSolution {
    /// Value of a single variable.
    #[inline]
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.0]
    }
}

/// Sparse row: list of `(column, coefficient)` plus comparison and rhs.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// Incrementally built LP model.
///
/// All variables satisfy `x >= 0`. The objective is supplied per-variable at
/// creation time (and may be adjusted with [`LpBuilder::set_obj_coeff`]).
#[derive(Debug, Clone)]
pub struct LpBuilder {
    pub(crate) sense: Sense,
    pub(crate) obj: Vec<f64>,
    pub(crate) rows: Vec<Row>,
}

impl LpBuilder {
    /// New minimization model.
    pub fn minimize() -> Self {
        LpBuilder {
            sense: Sense::Minimize,
            obj: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// New maximization model.
    pub fn maximize() -> Self {
        LpBuilder {
            sense: Sense::Maximize,
            obj: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Add a non-negative variable with the given objective coefficient.
    pub fn add_var(&mut self, obj_coeff: f64) -> VarId {
        self.obj.push(obj_coeff);
        VarId(self.obj.len() - 1)
    }

    /// Add `count` non-negative variables sharing one objective coefficient.
    pub fn add_vars(&mut self, count: usize, obj_coeff: f64) -> Vec<VarId> {
        (0..count).map(|_| self.add_var(obj_coeff)).collect()
    }

    /// Overwrite the objective coefficient of an existing variable.
    pub fn set_obj_coeff(&mut self, v: VarId, c: f64) {
        self.obj[v.0] = c;
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Add the constraint `sum(terms) cmp rhs`.
    ///
    /// Duplicate variables within `terms` are allowed; their coefficients
    /// accumulate.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) {
        let terms = terms.iter().map(|&(v, c)| (v.0, c)).collect();
        self.rows.push(Row { terms, cmp, rhs });
    }

    /// Solve the model.
    ///
    /// Returns `Ok` with a status of `Optimal`, `Infeasible` or `Unbounded`;
    /// `Err` only for malformed models or an exhausted pivot budget.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        // Validate.
        for (ri, row) in self.rows.iter().enumerate() {
            let _ = ri;
            if !row.rhs.is_finite() {
                return Err(LpError::NotFinite);
            }
            for &(v, c) in &row.terms {
                if v >= self.obj.len() {
                    return Err(LpError::BadVariable(v));
                }
                if !c.is_finite() {
                    return Err(LpError::NotFinite);
                }
            }
        }
        if self.obj.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NotFinite);
        }

        // Internally we always minimize.
        let obj: Vec<f64> = match self.sense {
            Sense::Minimize => self.obj.clone(),
            Sense::Maximize => self.obj.iter().map(|c| -c).collect(),
        };

        let mut sol = crate::solve_standard_form(&obj, &self.rows)?;
        if self.sense == Sense::Maximize {
            sol.objective = -sol.objective;
        }
        Ok(sol)
    }
}

#[cfg(test)]
mod model_tests {
    use super::*;

    #[test]
    fn var_ids_are_sequential() {
        let mut lp = LpBuilder::minimize();
        let a = lp.add_var(1.0);
        let b = lp.add_var(2.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(lp.num_vars(), 2);
    }

    #[test]
    fn bad_variable_is_reported() {
        let mut lp = LpBuilder::minimize();
        let _x = lp.add_var(1.0);
        // Forge a row referencing a variable that does not exist.
        lp.rows.push(Row {
            terms: vec![(7, 1.0)],
            cmp: Cmp::Ge,
            rhs: 0.0,
        });
        assert_eq!(lp.solve().unwrap_err(), LpError::BadVariable(7));
    }

    #[test]
    fn nan_rhs_is_reported() {
        let mut lp = LpBuilder::minimize();
        let x = lp.add_var(1.0);
        lp.add_constraint(&[(x, 1.0)], Cmp::Ge, f64::NAN);
        assert_eq!(lp.solve().unwrap_err(), LpError::NotFinite);
    }
}
