//! Two-phase dense tableau simplex.
//!
//! Implementation notes:
//!
//! * Rows are normalized so every right-hand side is non-negative; `<=` rows
//!   get a slack column, `>=` and `=` rows get an *artificial* basic
//!   variable (plus a surplus column for `>=`).
//! * Artificial columns are never materialized. They can only ever sit in
//!   the basis (identified by a sentinel id `>= ncols`); once one leaves it
//!   never re-enters, so its tableau column is never needed for pivoting.
//! * Phase 1 minimizes the sum of artificials. Any artificial still basic at
//!   a (zero) optimum is pivoted out if possible; if its row has no nonzero
//!   real entry the row is redundant and provably inert for the rest of the
//!   solve (every future pivot scales other rows by that row's zero entry).
//! * Pricing is Dantzig (most negative reduced cost) with a stability-aware
//!   ratio test; after a pivot budget it degrades to Bland's rule, which
//!   guarantees termination.
//!
//! The tableau is a single row-major `Vec<f64>` with the rhs stored as the
//! last column, which keeps the pivot inner loop a contiguous axpy.

use crate::model::{Cmp, LpError, LpSolution, LpStatus, Row};

/// Pricing tolerance: reduced costs above `-EPS` count as non-negative.
const EPS: f64 = 1e-9;
/// Minimum acceptable magnitude for a pivot element.
const PIVOT_EPS: f64 = 1e-9;
/// Phase-1 optimum above this is declared infeasible.
const FEAS_EPS: f64 = 1e-7;

struct Tableau {
    /// Row-major `(rows) x (ncols + 1)`; last column is the rhs.
    a: Vec<f64>,
    rows: usize,
    /// Number of materialized (real) columns: structural + slack/surplus.
    ncols: usize,
    /// Basic variable per row; `>= ncols` means "artificial for this row".
    basis: Vec<usize>,
    /// Reduced-cost row over real columns.
    red: Vec<f64>,
    /// Current objective value of the phase.
    objval: f64,
    pivots: usize,
}

impl Tableau {
    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.a[r * (self.ncols + 1) + self.ncols]
    }

    /// Pivot on `(prow, pcol)`: make `pcol` basic in row `prow`.
    fn pivot(&mut self, prow: usize, pcol: usize) {
        let w = self.ncols + 1;
        let piv = self.a[prow * w + pcol];
        debug_assert!(piv.abs() > PIVOT_EPS, "pivot element too small: {piv}");

        // Normalize pivot row.
        let inv = 1.0 / piv;
        {
            let row = &mut self.a[prow * w..(prow + 1) * w];
            for v in row.iter_mut() {
                *v *= inv;
            }
            // Exact 1.0 avoids drift on the pivot column.
            row[pcol] = 1.0;
        }

        // Eliminate pivot column from all other rows.
        for r in 0..self.rows {
            if r == prow {
                continue;
            }
            let factor = self.a[r * w + pcol];
            if factor == 0.0 {
                continue;
            }
            // Split borrows: pivot row is read-only, row r is mutated.
            let (lo, hi) = if r < prow {
                let (a, b) = self.a.split_at_mut(prow * w);
                (&mut a[r * w..(r + 1) * w], &b[..w])
            } else {
                let (a, b) = self.a.split_at_mut(r * w);
                (&mut b[..w], &a[prow * w..prow * w + w])
            };
            for (x, &p) in lo.iter_mut().zip(hi.iter()) {
                *x -= factor * p;
            }
            lo[pcol] = 0.0;
        }

        // Update reduced costs and objective value.
        let rc = self.red[pcol];
        if rc != 0.0 {
            let prow_slice = &self.a[prow * w..(prow + 1) * w];
            for (c, rv) in self.red.iter_mut().enumerate() {
                *rv -= rc * prow_slice[c];
            }
            self.red[pcol] = 0.0;
            self.objval += rc * prow_slice[self.ncols];
        }

        self.basis[prow] = pcol;
        self.pivots += 1;
    }

    /// One phase of the simplex: pivot until optimal/unbounded.
    ///
    /// `allow: fn(col) -> bool` filters entering candidates (used to ban
    /// columns in special situations). Returns `Ok(true)` on optimality,
    /// `Ok(false)` on unboundedness.
    fn optimize(
        &mut self,
        phase: u8,
        bland_after: usize,
        max_pivots: usize,
    ) -> Result<bool, LpError> {
        let start = self.pivots;
        loop {
            let iters = self.pivots - start;
            if iters > max_pivots {
                return Err(LpError::IterationLimit {
                    phase,
                    iterations: iters,
                });
            }
            let bland = iters >= bland_after;

            // --- Pricing: choose entering column.
            let mut entering: Option<usize> = None;
            if bland {
                for (c, &rv) in self.red.iter().enumerate() {
                    if rv < -EPS {
                        entering = Some(c);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for (c, &rv) in self.red.iter().enumerate() {
                    if rv < best {
                        best = rv;
                        entering = Some(c);
                    }
                }
            }
            let Some(pcol) = entering else {
                return Ok(true); // optimal
            };

            // --- Ratio test: choose leaving row.
            let w = self.ncols + 1;
            let mut prow: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut best_piv = 0.0_f64;
            for r in 0..self.rows {
                let coef = self.a[r * w + pcol];
                if coef <= PIVOT_EPS {
                    continue;
                }
                let ratio = self.a[r * w + self.ncols] / coef;
                let better = if bland {
                    // Bland: strict min ratio, ties by smallest basis id.
                    ratio < best_ratio - 1e-12
                        || (ratio <= best_ratio + 1e-12
                            && prow.is_some_and(|p| self.basis[r] < self.basis[p]))
                } else {
                    // Stability: ties resolved toward the largest pivot.
                    ratio < best_ratio - 1e-12
                        || (ratio <= best_ratio + 1e-12 && coef.abs() > best_piv)
                };
                if better {
                    best_ratio = ratio.max(0.0);
                    best_piv = coef.abs();
                    prow = Some(r);
                }
            }
            let Some(prow) = prow else {
                return Ok(false); // unbounded direction
            };
            self.pivot(prow, pcol);
        }
    }
}

/// Solve `min obj·x` subject to `rows`, `x >= 0`.
pub(crate) fn solve_standard_form(obj: &[f64], rows: &[Row]) -> Result<LpSolution, LpError> {
    let nv = obj.len();
    let m = rows.len();

    // Column layout: [structural 0..nv | slack/surplus nv..nv+nslack].
    // First pass: count slack columns and normalize rhs signs.
    type NormRow = (Vec<(usize, f64)>, Cmp, f64);
    let mut norm: Vec<NormRow> = Vec::with_capacity(m);
    let mut nslack = 0usize;
    for row in rows {
        let mut terms: Vec<(usize, f64)> = row.terms.clone();
        let mut cmp = row.cmp;
        let mut rhs = row.rhs;
        if rhs < 0.0 {
            rhs = -rhs;
            for t in &mut terms {
                t.1 = -t.1;
            }
            cmp = match cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        if !matches!(cmp, Cmp::Eq) {
            nslack += 1;
        }
        norm.push((terms, cmp, rhs));
    }

    let ncols = nv + nslack;
    let w = ncols + 1;
    let mut a = vec![0.0f64; m * w];
    let mut basis = vec![0usize; m];
    let mut artificial_rows: Vec<usize> = Vec::new();

    let mut next_slack = nv;
    for (r, (terms, cmp, rhs)) in norm.iter().enumerate() {
        for &(v, c) in terms {
            a[r * w + v] += c;
        }
        a[r * w + ncols] = *rhs;
        match cmp {
            Cmp::Le => {
                a[r * w + next_slack] = 1.0;
                basis[r] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                a[r * w + next_slack] = -1.0; // surplus
                next_slack += 1;
                basis[r] = ncols + r; // artificial sentinel
                artificial_rows.push(r);
            }
            Cmp::Eq => {
                basis[r] = ncols + r;
                artificial_rows.push(r);
            }
        }
    }
    debug_assert_eq!(next_slack, ncols);

    let mut t = Tableau {
        a,
        rows: m,
        ncols,
        basis,
        red: vec![0.0; ncols],
        objval: 0.0,
        pivots: 0,
    };

    let bland_after = 20 * (m + ncols) + 2_000;
    let max_pivots = 200 * (m + ncols) + 20_000;

    // ---- Phase 1: minimize sum of artificials.
    if !artificial_rows.is_empty() {
        // Reduced costs: c_j - sum over artificial rows of a[r][j]
        // (artificial cost 1, everything else 0; basis cost contribution is
        // exactly the artificial rows).
        for c in 0..ncols {
            let mut s = 0.0;
            for &r in &artificial_rows {
                s += t.a[r * w + c];
            }
            t.red[c] = -s;
        }
        let mut v0 = 0.0;
        for &r in &artificial_rows {
            v0 += t.a[r * w + ncols];
        }
        t.objval = v0;

        let optimal = t.optimize(1, bland_after, max_pivots)?;
        // Phase 1 is bounded below by 0, so "unbounded" cannot occur.
        debug_assert!(optimal, "phase-1 LP cannot be unbounded");
        if t.objval > FEAS_EPS {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: f64::NAN,
                x: vec![f64::NAN; nv],
                pivots: t.pivots,
            });
        }

        // Drive out artificial basics where possible (degenerate pivots).
        for r in 0..m {
            if t.basis[r] >= ncols {
                // Clamp the (theoretically zero) rhs.
                t.a[r * w + ncols] = 0.0;
                let mut col = None;
                for c in 0..ncols {
                    if t.a[r * w + c].abs() > 1e-7 {
                        col = Some(c);
                        break;
                    }
                }
                if let Some(c) = col {
                    t.pivot(r, c);
                }
                // else: redundant row; inert for the rest of the solve.
            }
        }
    }

    // ---- Phase 2: original objective.
    // Reduced costs r = c - c_B^T * T; basic columns get 0 by construction.
    let cost_of = |var: usize| -> f64 {
        if var < nv {
            obj[var]
        } else {
            0.0 // slacks and (inert) artificials
        }
    };
    for c in 0..ncols {
        t.red[c] = cost_of(c);
    }
    let mut v = 0.0;
    for r in 0..m {
        let cb = if t.basis[r] < ncols {
            cost_of(t.basis[r])
        } else {
            0.0
        };
        if cb != 0.0 {
            for c in 0..ncols {
                t.red[c] -= cb * t.a[r * w + c];
            }
            v += cb * t.a[r * w + ncols];
        }
    }
    // Zero out reduced costs of basic columns exactly.
    for r in 0..m {
        if t.basis[r] < ncols {
            t.red[t.basis[r]] = 0.0;
        }
    }
    t.objval = v;

    let optimal = t.optimize(2, bland_after, max_pivots)?;
    if !optimal {
        return Ok(LpSolution {
            status: LpStatus::Unbounded,
            objective: f64::NEG_INFINITY,
            x: vec![f64::NAN; nv],
            pivots: t.pivots,
        });
    }

    let mut x = vec![0.0f64; nv];
    for r in 0..m {
        let b = t.basis[r];
        if b < nv {
            x[b] = t.rhs(r).max(0.0);
        }
    }
    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective: t.objval,
        x,
        pivots: t.pivots,
    })
}
