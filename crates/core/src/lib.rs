//! # suu-core — the SUU problem model
//!
//! Core vocabulary for *multiprocessor scheduling under uncertainty*
//! (Crutchfield, Dzunic, Fineman, Karger, Scott — SPAA 2008):
//!
//! * [`SuuInstance`] — `n` unit-step jobs, `m` machines, failure
//!   probabilities `q_ij`, and a precedence structure.
//! * [`logmass`] — the paper's log-failure transform `ℓ_ij = −log₂ q_ij`,
//!   under which per-step failure probabilities multiply as masses add.
//! * [`Precedence`] + [`EligibilityTracker`] — which jobs may run, updated
//!   as jobs complete.
//! * [`Assignment`] — integral machine-step assignments `{x_ij}` (the
//!   output shape of the paper's LP roundings) with their *load*, *length*
//!   (`d_j`) and per-job *log mass*.
//! * [`exec::Assignment`] — one instantaneous machine→job row, the
//!   caller-owned scratch buffer the execution engine's `Policy::decide`
//!   writes into (distinct from the LP assignment above).
//! * [`Timetable`] — finite oblivious schedules: an explicit
//!   machine-per-step job table, built from an [`Assignment`] by stacking.
//! * [`workload`] — seeded random instance generators (uniform unrelated
//!   machines, reliability×difficulty products, bimodal volunteer grids,
//!   power-law difficulties).
//! * [`BitSet`] — a small fixed-capacity bitset used for remaining/eligible
//!   job sets in simulation hot loops.
//! * [`schemas`] — the registry of JSON document schema identifiers:
//!   every `"schema"` field in the workspace cites one of its constants
//!   (enforced by the `suu-lint` `schema-literal` rule).
//! * [`json`] — dependency-free JSON values, writer and parser: the
//!   substrate of the experiment pipeline's shared results schema and the
//!   instance wire form ([`SuuInstance::to_json`]). Its canonical
//!   sorted-key form ([`json::Json::to_canonical`]) plus [`fnv1a`] (the
//!   [`hash`] module) yield the stable content addresses the `suu-serve`
//!   daemon keys its result cache by.
//!
//! Everything is deterministic given the generator seeds, which keeps
//! experiments reproducible.

mod assignment;
mod bitset;
pub mod exec;
pub mod hash;
mod ids;
mod instance;
pub mod json;
pub mod logmass;
mod precedence;
pub mod profile;
#[cfg(test)]
mod proptests;
mod schedule;
pub mod schemas;
mod wordmap;
pub mod workload;

pub use assignment::Assignment;
pub use bitset::BitSet;
pub use hash::{fnv1a, fnv1a_hex, fnv1a_u64s, is_fnv1a_hex};
pub use ids::{JobId, MachineId};
pub use instance::{InstanceError, SuuInstance};
pub use precedence::{EligibilityState, EligibilityTopology, EligibilityTracker, Precedence};
pub use schedule::Timetable;
pub use wordmap::WordMap;
