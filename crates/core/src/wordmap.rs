//! An open-addressed hash map keyed on fixed-width `u64` word slices.
//!
//! The batch engine caches one decision plan per distinct remaining set.
//! Keying a `HashMap` by [`crate::BitSet`] pays SipHash over the set plus
//! a clone of it on every insert — measurable per-epoch costs on cells
//! where the cache is consulted millions of times. A remaining set is
//! already a short `&[u64]` (its backing words, tail bits zero), so this
//! map hashes those words directly with the workspace's stable FNV-1a
//! ([`crate::hash::fnv1a_u64s`]), probes linearly through a
//! power-of-two slot array, and compares candidate keys by an inline
//! word-slice compare — no key objects are ever constructed, and the hit
//! path allocates nothing.
//!
//! Keys are stored once, contiguously, in an arena (`words_per_key`
//! words each); slots hold `(hash, entry index)` so a probe rejects
//! non-matching entries on one `u64` compare before touching the arena.
//! Entries cannot be removed individually — the engine's cache only ever
//! grows and is wiped wholesale ([`WordMap::clear`]) — which keeps the
//! probe sequences canonical and the implementation small.

use crate::hash::fnv1a_u64s;

const EMPTY: u32 = u32::MAX;
/// Initial slot count on first insert (power of two).
const INITIAL_SLOTS: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Slot {
    hash: u64,
    idx: u32,
}

/// Hash map from fixed-width `&[u64]` keys to `V`. See the module docs.
#[derive(Debug, Clone)]
pub struct WordMap<V> {
    /// Words per key; every key slice must have exactly this length.
    words: usize,
    /// Power-of-two probe table (empty until the first insert).
    slots: Vec<Slot>,
    /// Key arena: entry `i` owns `keys[i*words .. (i+1)*words]`.
    keys: Vec<u64>,
    vals: Vec<V>,
}

impl<V> WordMap<V> {
    /// Empty map whose keys are `words_per_key` words wide.
    pub fn new(words_per_key: usize) -> Self {
        WordMap {
            words: words_per_key,
            slots: Vec::new(),
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` if the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Key width this map was built for.
    #[inline]
    pub fn words_per_key(&self) -> usize {
        self.words
    }

    /// Drop every entry, keeping all allocations for reuse.
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| s.idx = EMPTY);
        self.keys.clear();
        self.vals.clear();
    }

    #[inline]
    fn key_at(&self, idx: u32) -> &[u64] {
        let start = idx as usize * self.words;
        &self.keys[start..start + self.words]
    }

    /// Look up `key`. Allocation- and construction-free: one FNV-1a over
    /// the words, then linear probing with an inline word compare.
    #[inline]
    pub fn get(&self, key: &[u64]) -> Option<&V> {
        debug_assert_eq!(key.len(), self.words, "key width mismatch");
        if self.slots.is_empty() {
            return None;
        }
        let hash = fnv1a_u64s(key);
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot.idx == EMPTY {
                return None;
            }
            if slot.hash == hash && self.key_at(slot.idx) == key {
                return Some(&self.vals[slot.idx as usize]);
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert `key → value`, returning the previous value if the key was
    /// present. The key words are copied into the arena only on fresh
    /// inserts.
    pub fn insert(&mut self, key: &[u64], value: V) -> Option<V> {
        debug_assert_eq!(key.len(), self.words, "key width mismatch");
        self.reserve_one();
        let hash = fnv1a_u64s(key);
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot.idx == EMPTY {
                let idx = self.vals.len() as u32;
                assert!(idx != EMPTY, "WordMap entry count overflow");
                self.keys.extend_from_slice(key);
                self.vals.push(value);
                self.slots[i] = Slot { hash, idx };
                return None;
            }
            if slot.hash == hash && self.key_at(slot.idx) == key {
                return Some(std::mem::replace(&mut self.vals[slot.idx as usize], value));
            }
            i = (i + 1) & mask;
        }
    }

    /// Grow the probe table before an insert if load would exceed 7/8 —
    /// linear probing degrades sharply past that.
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.slots = vec![
                Slot {
                    hash: 0,
                    idx: EMPTY
                };
                INITIAL_SLOTS
            ];
            return;
        }
        if (self.vals.len() + 1) * 8 <= self.slots.len() * 7 {
            return;
        }
        let new_len = self.slots.len() * 2;
        let mut slots = vec![
            Slot {
                hash: 0,
                idx: EMPTY
            };
            new_len
        ];
        let mask = new_len - 1;
        for idx in 0..self.vals.len() as u32 {
            let hash = fnv1a_u64s(self.key_at(idx));
            let mut i = hash as usize & mask;
            while slots[i].idx != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = Slot { hash, idx };
        }
        self.slots = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_update() {
        let mut m = WordMap::new(2);
        assert!(m.is_empty());
        assert_eq!(m.get(&[1, 2]), None);
        assert_eq!(m.insert(&[1, 2], "a"), None);
        assert_eq!(m.insert(&[2, 1], "b"), None);
        assert_eq!(m.get(&[1, 2]), Some(&"a"));
        assert_eq!(m.get(&[2, 1]), Some(&"b"));
        assert_eq!(m.get(&[1, 3]), None);
        assert_eq!(m.insert(&[1, 2], "c"), Some("a"));
        assert_eq!(m.get(&[1, 2]), Some(&"c"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn survives_growth_past_many_resizes() {
        // Sequential keys collide heavily in low bits; push through
        // several doublings and verify every entry afterwards.
        let mut m = WordMap::new(1);
        for k in 0..1000u64 {
            assert_eq!(m.insert(&[k], k * 3), None);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(&[k]), Some(&(k * 3)), "key {k}");
        }
        assert_eq!(m.get(&[1000]), None);
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut m = WordMap::new(1);
        for k in 0..100u64 {
            m.insert(&[k], k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&[5]), None);
        // Reusable after clear.
        assert_eq!(m.insert(&[5], 7), None);
        assert_eq!(m.get(&[5]), Some(&7));
    }

    #[test]
    fn zero_width_keys_collapse_to_one_entry() {
        let mut m = WordMap::new(0);
        assert_eq!(m.insert(&[], 1), None);
        assert_eq!(m.insert(&[], 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&[]), Some(&2));
    }

    #[test]
    fn matches_std_hashmap_on_random_ops() {
        use std::collections::HashMap;
        // Deterministic pseudo-random op stream (SplitMix64).
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut m = WordMap::new(3);
        let mut oracle: HashMap<[u64; 3], u64> = HashMap::new();
        for _ in 0..4000 {
            // Small key space so hits, misses and updates all occur.
            let key = [next() % 7, next() % 5, next() % 3];
            if next() % 4 == 0 {
                let v = next();
                assert_eq!(m.insert(&key, v), oracle.insert(key, v));
            } else {
                assert_eq!(m.get(&key), oracle.get(&key));
            }
        }
        assert_eq!(m.len(), oracle.len());
    }
}
