//! A small fixed-capacity bitset.
//!
//! Remaining/eligible job sets are consulted every simulated timestep, so
//! they need O(1) membership and cheap iteration. The sanctioned dependency
//! list has no bitset crate, so this is a minimal `Vec<u64>`-backed one.

/// Fixed-capacity set of `u32` values in `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Empty set with the given capacity.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        // Clear the tail bits beyond `capacity`.
        let tail = capacity % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        s
    }

    /// Maximum value + 1 this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `v`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: u32) -> bool {
        debug_assert!((v as usize) < self.capacity, "bitset value out of range");
        let (w, b) = (v as usize / 64, v as usize % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] |= 1 << b;
        !had
    }

    /// Remove `v`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: u32) -> bool {
        debug_assert!((v as usize) < self.capacity, "bitset value out of range");
        let (w, b) = (v as usize / 64, v as usize % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        if (v as usize) >= self.capacity {
            return false;
        }
        let (w, b) = (v as usize / 64, v as usize % 64);
        self.words[w] >> b & 1 == 1
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no element is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Insert every value in `0..capacity` (the in-place spelling of
    /// [`BitSet::full`], for reusing allocations in batch hot loops).
    pub fn fill_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = u64::MAX);
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Overwrite this set with `other`'s contents without reallocating
    /// (capacities must match).
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// The backing `u64` words, least-significant first. Bits beyond
    /// `capacity` are always zero, so two sets of equal capacity are equal
    /// iff their word slices are — the invariant the word-keyed decision
    /// cache ([`crate::WordMap`]) relies on.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterate elements in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<u32> {
        self.iter().next()
    }

    /// In-place intersection with `other` (capacities must match).
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// Iterator over a [`BitSet`]'s elements.
pub struct BitSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as u32 * 64 + bit)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = u32;
    type IntoIter = BitSetIter<'a>;

    fn into_iter(self) -> BitSetIter<'a> {
        self.iter()
    }
}

impl FromIterator<u32> for BitSet {
    /// Collect values into a set sized to the maximum value + 1.
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let values: Vec<u32> = iter.into_iter().collect();
        let cap = values.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        let mut s = BitSet::new(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        let s0 = BitSet::full(0);
        assert!(s0.is_empty());
        let s64 = BitSet::full(64);
        assert_eq!(s64.len(), 64);
    }

    #[test]
    fn iteration_in_order() {
        let mut s = BitSet::new(200);
        for v in [5u32, 64, 65, 199, 0] {
            s.insert(v);
        }
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 64, 65, 199]);
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn set_operations() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [3u32, 1, 7].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::full(33);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
    }

    #[test]
    fn fill_all_matches_full() {
        for cap in [0usize, 1, 63, 64, 65, 70, 128, 130] {
            let mut s = BitSet::new(cap);
            if cap > 0 {
                s.insert((cap / 2) as u32);
            }
            s.fill_all();
            assert_eq!(s, BitSet::full(cap), "cap {cap}");
            assert_eq!(s.words(), BitSet::full(cap).words());
        }
        // Idempotent after mutation.
        let mut s = BitSet::full(70);
        s.remove(69);
        s.fill_all();
        assert_eq!(s.len(), 70);
    }

    #[test]
    fn copy_from_reuses_without_realloc() {
        let mut dst = BitSet::new(100);
        dst.insert(7);
        let mut src = BitSet::new(100);
        src.insert(64);
        src.insert(99);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert!(!dst.contains(7));
    }

    #[test]
    fn words_expose_tail_invariant() {
        let s = BitSet::full(70);
        assert_eq!(s.words().len(), 2);
        assert_eq!(s.words()[1], (1u64 << 6) - 1, "tail bits zeroed");
    }
}
