//! Finite oblivious schedules (timetables).
//!
//! An *oblivious* schedule (paper §2) assigns machines to jobs based only
//! on the timestep, not on completion history. A [`Timetable`] is the
//! explicit table: `table[t][i]` is the job machine `i` works on at step
//! `t` (or idle). The engine skips entries whose job has already completed,
//! exactly as the paper's schedules map completed jobs to `⊥`.

use crate::{JobId, MachineId};

/// A finite oblivious schedule: one row per timestep, one column per
/// machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timetable {
    m: usize,
    steps: Vec<Vec<Option<JobId>>>,
}

impl Timetable {
    /// All-idle timetable with `len` steps.
    pub fn idle(m: usize, len: usize) -> Self {
        Timetable {
            m,
            steps: vec![vec![None; m]; len],
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.m
    }

    /// Number of timesteps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the timetable has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Assignment of machine `i` at step `t`.
    pub fn get(&self, t: usize, i: MachineId) -> Option<JobId> {
        self.steps[t][i.index()]
    }

    /// Set the assignment of machine `i` at step `t`.
    pub fn set(&mut self, t: usize, i: MachineId, j: Option<JobId>) {
        self.steps[t][i.index()] = j;
    }

    /// The whole machine row at step `t`.
    pub fn row(&self, t: usize) -> &[Option<JobId>] {
        &self.steps[t]
    }

    /// Append another timetable's steps after this one (same `m`).
    pub fn extend(&mut self, other: &Timetable) {
        assert_eq!(self.m, other.m, "machine count mismatch");
        self.steps.extend(other.steps.iter().cloned());
    }

    /// Append a single fully specified step.
    pub fn push_step(&mut self, row: Vec<Option<JobId>>) {
        assert_eq!(row.len(), self.m, "row width mismatch");
        self.steps.push(row);
    }

    /// Number of consecutive steps starting at `t` whose rows are all
    /// identical to row `t` (at least 1; scans to the end of the table,
    /// no wrap-around). Event-driven policies use this to declare how
    /// long an emitted row can be *held* before they need a wake-up.
    pub fn run_length_from(&self, t: usize) -> usize {
        let row = &self.steps[t];
        let mut len = 1;
        while t + len < self.steps.len() && self.steps[t + len] == *row {
            len += 1;
        }
        len
    }

    /// For each step, the number of steps until the row next *changes*,
    /// scanning cyclically (the table repeats). `None` entries mean the
    /// table is constant — the row never changes, so a repeating policy
    /// can hold it forever.
    pub fn cyclic_change_distances(&self) -> Vec<Option<u64>> {
        let len = self.steps.len();
        let mut out = vec![None; len];
        if len == 0 {
            return out;
        }
        // Two backward walks: the first only establishes the carry-in
        // distance at position 0 so the second can resolve wrap-arounds;
        // the second writes every entry.
        let mut dist: Option<u64> = None;
        for pass in 0..2 {
            for t in (0..len).rev() {
                let next = &self.steps[(t + 1) % len];
                dist = if self.steps[t] != *next {
                    Some(1)
                } else {
                    dist.map(|d| d + 1)
                };
                if pass == 1 {
                    out[t] = dist.map(|d| d.min(len as u64));
                }
            }
        }
        out
    }

    /// Total non-idle machine-steps.
    pub fn busy_steps(&self) -> u64 {
        self.steps
            .iter()
            .map(|row| row.iter().filter(|s| s.is_some()).count() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_table() {
        let t = Timetable::idle(3, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_machines(), 3);
        assert_eq!(t.get(1, MachineId(2)), None);
        assert_eq!(t.busy_steps(), 0);
        assert!(!t.is_empty());
        assert!(Timetable::idle(3, 0).is_empty());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = Timetable::idle(2, 1);
        t.set(0, MachineId(1), Some(JobId(5)));
        assert_eq!(t.get(0, MachineId(1)), Some(JobId(5)));
        assert_eq!(t.row(0), &[None, Some(JobId(5))]);
        assert_eq!(t.busy_steps(), 1);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Timetable::idle(1, 1);
        a.set(0, MachineId(0), Some(JobId(0)));
        let mut b = Timetable::idle(1, 2);
        b.set(1, MachineId(0), Some(JobId(1)));
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(0, MachineId(0)), Some(JobId(0)));
        assert_eq!(a.get(2, MachineId(0)), Some(JobId(1)));
    }

    #[test]
    fn run_lengths_and_cyclic_distances() {
        // Rows: A A B A (A = job 0 on machine 0, B = idle).
        let mut t = Timetable::idle(1, 4);
        for pos in [0usize, 1, 3] {
            t.set(pos, MachineId(0), Some(JobId(0)));
        }
        assert_eq!(t.run_length_from(0), 2);
        assert_eq!(t.run_length_from(1), 1);
        assert_eq!(t.run_length_from(2), 1);
        assert_eq!(t.run_length_from(3), 1);
        assert_eq!(
            t.cyclic_change_distances(),
            vec![Some(2), Some(1), Some(1), Some(3)],
            "row 3 == rows 0 and 1, so from 3 the next change is 3 steps away"
        );
        // Constant table: the row never changes.
        let c = Timetable::idle(2, 3);
        assert_eq!(c.cyclic_change_distances(), vec![None; 3]);
        assert_eq!(c.run_length_from(0), 3);
    }

    #[test]
    fn push_step_appends() {
        let mut t = Timetable::idle(2, 0);
        t.push_step(vec![Some(JobId(1)), None]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0, MachineId(0)), Some(JobId(1)));
    }
}
