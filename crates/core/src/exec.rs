//! Execution-time machine→job assignment rows.
//!
//! [`Assignment`] is the scratch buffer the execution engine hands a
//! policy at every decision epoch: one slot per machine, each either a
//! job or idle. The buffer is owned by the caller (the engine) and reused
//! across epochs and trials, so a policy's `decide` never allocates —
//! the hot path of a million-trial Monte-Carlo sweep stays allocation-free.
//!
//! Not to be confused with [`crate::Assignment`], the *LP* assignment
//! `{x_ij}` (integral machine-steps per job) output by the paper's
//! roundings; this type is one instantaneous row of a running schedule.

use crate::JobId;

/// One machine→job assignment row: slot `i` is what machine `i` does.
///
/// The engine clears the buffer (all idle) before every `decide` call, so
/// policies only write the slots they use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    slots: Vec<Option<JobId>>,
}

impl Assignment {
    /// All-idle row for `m` machines.
    pub fn new(m: usize) -> Self {
        Assignment {
            slots: vec![None; m],
        }
    }

    /// Number of machines (slots).
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.slots.len()
    }

    /// Reset every slot to idle (keeps capacity).
    #[inline]
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
    }

    /// Point machine `i` at job `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: JobId) {
        self.slots[i] = Some(j);
    }

    /// Write slot `i` directly (job or idle).
    #[inline]
    pub fn set_slot(&mut self, i: usize, slot: Option<JobId>) {
        self.slots[i] = slot;
    }

    /// Idle machine `i`.
    #[inline]
    pub fn idle(&mut self, i: usize) {
        self.slots[i] = None;
    }

    /// Point every machine at `slot` (used by gang schedules).
    #[inline]
    pub fn fill(&mut self, slot: Option<JobId>) {
        self.slots.iter_mut().for_each(|s| *s = slot);
    }

    /// What machine `i` does.
    #[inline]
    pub fn get(&self, i: usize) -> Option<JobId> {
        self.slots[i]
    }

    /// The whole row.
    #[inline]
    pub fn slots(&self) -> &[Option<JobId>] {
        &self.slots
    }

    /// Copy a prebuilt row into the buffer (lengths must match).
    pub fn copy_from_row(&mut self, row: &[Option<JobId>]) {
        debug_assert_eq!(row.len(), self.slots.len(), "row width mismatch");
        self.slots.copy_from_slice(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_fill() {
        let mut a = Assignment::new(3);
        assert_eq!(a.num_machines(), 3);
        a.set(1, JobId(7));
        assert_eq!(a.get(1), Some(JobId(7)));
        assert_eq!(a.get(0), None);
        a.fill(Some(JobId(2)));
        assert_eq!(a.slots(), &[Some(JobId(2)); 3]);
        a.idle(2);
        assert_eq!(a.get(2), None);
        a.clear();
        assert!(a.slots().iter().all(|s| s.is_none()));
    }

    #[test]
    fn copy_from_row_replaces_contents() {
        let mut a = Assignment::new(2);
        a.set(0, JobId(1));
        a.copy_from_row(&[None, Some(JobId(3))]);
        assert_eq!(a.slots(), &[None, Some(JobId(3))]);
    }
}
