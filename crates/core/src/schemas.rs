//! The schema registry: one constant per JSON document schema.
//!
//! Every document the workspace emits or validates carries a `"schema"`
//! field whose value is one of the identifiers below. They live in one
//! module so a version bump is a single-line diff that the compiler
//! propagates to every producer, validator and test at once — schema
//! strings scattered as literals drift silently (a producer bumps,
//! a validator keeps accepting the old id). The `schema-literal` rule
//! of `suu-lint` enforces the discipline mechanically: any literal of
//! this shape outside this file is a diagnostic.
//!
//! Naming: `<AREA>_<KIND>_V<N>` for `"suu-<area>/<kind>/v<N>"` (the
//! results document, predating per-area namespacing, is plain
//! `"suu-results/v2"`).

/// The shared experiment-results document (`cells` + `paired`,
/// adaptive-precision fields). Producers: `bench_baseline`, the race
/// runner, `suud`, `suu-router`. Validator: `validate_results`.
pub const RESULTS_V2: &str = "suu-results/v2";

/// One cached evaluation cell on disk (an `EvalStats` checkpoint in a
/// content-addressed envelope).
pub const SERVE_CELL_V1: &str = "suu-serve/cell/v1";

/// The canonical key-fields object whose FNV-1a hash addresses a cell.
pub const SERVE_CELLKEY_V1: &str = "suu-serve/cellkey/v1";

/// The persisted LRU recency index (`index.json`) of a cell store.
pub const SERVE_INDEX_V1: &str = "suu-serve/index/v1";

/// `GET /healthz` response body of `suud` and `suu-router`.
pub const SERVE_HEALTH_V1: &str = "suu-serve/health/v1";

/// `GET /v1/stats` counters document (router appends `shards[]` +
/// `router` blocks after the daemon's v1 fields, never reorders them).
pub const SERVE_STATS_V1: &str = "suu-serve/stats/v1";

/// Single-daemon `suu-loadgen` benchmark document (superseded by v2).
pub const SERVE_LOADGEN_V1: &str = "suu-serve/loadgen/v1";

/// Sharded `suu-loadgen` scaling-sweep document (`BENCH_serve.json`).
pub const SERVE_LOADGEN_V2: &str = "suu-serve/loadgen/v2";

/// Streaming accumulator snapshot (Welford + P² sketches), the inner
/// payload of an evaluation checkpoint.
pub const SIM_ACCUMULATOR_V1: &str = "suu-sim/accumulator/v1";

/// Resumable `EvalStats` checkpoint (accumulator + RNG cursor).
pub const SIM_EVALSTATS_V1: &str = "suu-sim/evalstats/v1";

/// Event-engine vs dense-engine comparison artifact
/// (`BENCH_engine_events.json`).
pub const BENCH_ENGINE_EVENTS_V1: &str = "suu-bench/engine-events/v1";

/// Batched-engine vs per-trial-engine comparison artifact
/// (`BENCH_engine_batch.json`).
pub const BENCH_ENGINE_BATCH_V2: &str = "suu-bench/engine-batch/v2";

/// Machine output of the `suu-lint` static-analysis pass.
pub const LINT_V1: &str = "suu-lint/v1";

/// Adaptive frontier-sweep artifact (`BENCH_sweep.json`): per-cell
/// winners with paired-CRN margins and `cell_key` provenance, plus the
/// winner-region phase diagram. Producer: `suu-sweep`. Validator:
/// `validate_results`.
pub const RESULTS_SWEEP_V1: &str = "suu-results/sweep/v1";

/// Every registered identifier, for exhaustiveness checks.
pub const ALL: &[&str] = &[
    RESULTS_V2,
    RESULTS_SWEEP_V1,
    SERVE_CELL_V1,
    SERVE_CELLKEY_V1,
    SERVE_INDEX_V1,
    SERVE_HEALTH_V1,
    SERVE_STATS_V1,
    SERVE_LOADGEN_V1,
    SERVE_LOADGEN_V2,
    SIM_ACCUMULATOR_V1,
    SIM_EVALSTATS_V1,
    BENCH_ENGINE_EVENTS_V1,
    BENCH_ENGINE_BATCH_V2,
    LINT_V1,
];

/// `true` iff `s` has the shape of a schema identifier:
/// `suu-<word>(/<word>)*/v<digits>` with lowercase/digit/`-` words.
/// `suu-lint` uses this to flag stray literals; the registry's own test
/// uses it to keep every constant well-formed.
pub fn is_schema_id(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("suu-") else {
        return false;
    };
    let segments: Vec<&str> = rest.split('/').collect();
    if segments.len() < 2 {
        return false;
    }
    let version = segments[segments.len() - 1];
    let Some(digits) = version.strip_prefix('v') else {
        return false;
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    segments[..segments.len() - 1].iter().all(|seg| {
        !seg.is_empty()
            && seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_well_formed_and_duplicate_free() {
        for id in ALL {
            assert!(is_schema_id(id), "malformed schema id {id:?}");
        }
        let mut sorted: Vec<&str> = ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL.len(), "duplicate schema id in registry");
    }

    #[test]
    fn shape_matcher_rejects_near_misses() {
        assert!(is_schema_id("suu-results/v2"));
        assert!(is_schema_id("suu-serve/loadgen/v2"));
        assert!(is_schema_id("suu-bench/engine-batch/v2"));
        for bad in [
            "suu-results",     // no version
            "suu-results/v",   // empty digits
            "suu-results/V2",  // uppercase marker
            "suu-/v1",         // empty segment
            "suu-Results/v1",  // uppercase word
            "results/v1",      // missing prefix
            "suu-results/v2 ", // trailing junk
            "xsuu-results/v2", // embedded, not anchored
            "suu-results//v2", // empty middle segment
        ] {
            assert!(!is_schema_id(bad), "{bad:?} should not match");
        }
    }
}
