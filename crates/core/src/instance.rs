//! SUU problem instances.

use crate::json::Json;
use crate::logmass::log_failure;
use crate::{JobId, MachineId, Precedence};

/// Errors constructing a [`SuuInstance`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// `q` matrix dimensions don't match `m * n`.
    BadDimensions { expected: usize, got: usize },
    /// Some `q_ij` was outside `[0, 1]` (or NaN).
    BadProbability { machine: u32, job: u32, q: f64 },
    /// A job has `q_ij = 1` on every machine, so it can never complete
    /// (the paper assumes this away WLOG).
    UnservableJob(u32),
    /// The precedence structure disagrees with `n` or is cyclic.
    BadPrecedence(String),
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::BadDimensions { expected, got } => {
                write!(f, "q matrix has {got} entries, expected {expected}")
            }
            InstanceError::BadProbability { machine, job, q } => {
                write!(f, "q[{machine},{job}] = {q} outside [0,1]")
            }
            InstanceError::UnservableJob(j) => {
                write!(f, "job {j} fails with probability 1 on every machine")
            }
            InstanceError::BadPrecedence(msg) => write!(f, "bad precedence: {msg}"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// An SUU instance `(J, M, {q_ij}, G)` (paper §2).
///
/// `q[i*n + j]` is the probability that job `j` does **not** complete when
/// machine `i` runs it for one unit step. The log failures
/// `ℓ_ij = −log₂ q_ij` are precomputed since every algorithm works in
/// log-mass space.
#[derive(Debug, Clone)]
pub struct SuuInstance {
    n: usize,
    m: usize,
    q: Vec<f64>,
    ell: Vec<f64>,
    precedence: Precedence,
}

impl SuuInstance {
    /// Build and validate an instance. `q` is machine-major: `q[i*n + j]`.
    pub fn new(
        m: usize,
        n: usize,
        q: Vec<f64>,
        precedence: Precedence,
    ) -> Result<Self, InstanceError> {
        if q.len() != m * n {
            return Err(InstanceError::BadDimensions {
                expected: m * n,
                got: q.len(),
            });
        }
        for i in 0..m {
            for j in 0..n {
                let v = q[i * n + j];
                if !(0.0..=1.0).contains(&v) || v.is_nan() {
                    return Err(InstanceError::BadProbability {
                        machine: i as u32,
                        job: j as u32,
                        q: v,
                    });
                }
            }
        }
        for j in 0..n {
            if (0..m).all(|i| q[i * n + j] >= 1.0) {
                return Err(InstanceError::UnservableJob(j as u32));
            }
        }
        if let Some(pn) = precedence.num_jobs() {
            if pn != n {
                return Err(InstanceError::BadPrecedence(format!(
                    "structure covers {pn} jobs, instance has {n}"
                )));
            }
        }
        if !precedence.to_dag(n).is_acyclic() {
            return Err(InstanceError::BadPrecedence("cyclic".into()));
        }
        let ell = q.iter().map(|&v| log_failure(v)).collect();
        Ok(SuuInstance {
            n,
            m,
            q,
            ell,
            precedence,
        })
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.n
    }

    /// Number of machines `m`.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.m
    }

    /// Failure probability `q_ij`.
    #[inline]
    pub fn q(&self, i: MachineId, j: JobId) -> f64 {
        self.q[i.index() * self.n + j.index()]
    }

    /// Log failure `ℓ_ij = −log₂ q_ij` (clamped, see [`crate::logmass`]).
    #[inline]
    pub fn ell(&self, i: MachineId, j: JobId) -> f64 {
        self.ell[i.index() * self.n + j.index()]
    }

    /// Raw log-failure row for machine `i` (one entry per job).
    #[inline]
    pub fn ell_row(&self, i: MachineId) -> &[f64] {
        &self.ell[i.index() * self.n..(i.index() + 1) * self.n]
    }

    /// The precedence structure.
    #[inline]
    pub fn precedence(&self) -> &Precedence {
        &self.precedence
    }

    /// Replace the precedence structure (used when algorithms re-cast the
    /// same `q` matrix over a sub-structure). Validates consistency.
    pub fn with_precedence(&self, precedence: Precedence) -> Result<Self, InstanceError> {
        SuuInstance::new(self.m, self.n, self.q.clone(), precedence)
    }

    /// Restrict to a subset of jobs (given by old job ids, in the new
    /// order), producing an instance over `old_ids.len()` jobs with the
    /// provided precedence.
    pub fn restrict_jobs(
        &self,
        old_ids: &[u32],
        precedence: Precedence,
    ) -> Result<Self, InstanceError> {
        let n2 = old_ids.len();
        let mut q = Vec::with_capacity(self.m * n2);
        for i in 0..self.m {
            for &j in old_ids {
                q.push(self.q[i * self.n + j as usize]);
            }
        }
        SuuInstance::new(self.m, n2, q, precedence)
    }

    /// The best (largest) log failure available for job `j` on any machine.
    pub fn best_ell(&self, j: JobId) -> f64 {
        (0..self.m)
            .map(|i| self.ell[i * self.n + j.index()])
            .fold(0.0, f64::max)
    }

    /// The machine with the largest `ℓ_ij` for job `j`.
    pub fn best_machine(&self, j: JobId) -> MachineId {
        let mut best = (0usize, f64::NEG_INFINITY);
        for i in 0..self.m {
            let e = self.ell[i * self.n + j.index()];
            if e > best.1 {
                best = (i, e);
            }
        }
        MachineId(best.0 as u32)
    }

    /// Total log mass per step if *all* machines gang up on job `j` —
    /// the rate used by the "one job at a time" fallback policies.
    pub fn gang_mass(&self, j: JobId) -> f64 {
        (0..self.m).map(|i| self.ell[i * self.n + j.index()]).sum()
    }
}

/// JSON wire form: `{ "m", "n", "q", "edges" }`, with the precedence
/// structure canonicalized to its DAG edge list — chain/forest shape tags
/// are not preserved across a round-trip (the edges are, so scheduling
/// semantics are identical; only the shape-specialized algorithms need
/// re-deriving the structure).
impl SuuInstance {
    /// The canonical JSON wire form.
    pub fn to_json(&self) -> Json {
        let dag = self.precedence.to_dag(self.n);
        let mut edges = Vec::new();
        for u in 0..self.n as u32 {
            for &v in dag.successors(u) {
                edges.push(Json::Arr(vec![Json::UInt(u as u64), Json::UInt(v as u64)]));
            }
        }
        Json::obj()
            .field("m", self.m)
            .field("n", self.n)
            .field(
                "q",
                Json::Arr(self.q.iter().map(|&v| Json::Num(v)).collect()),
            )
            .field("edges", Json::Arr(edges))
    }

    /// Rebuild from the wire form produced by [`SuuInstance::to_json`].
    pub fn from_json(doc: &Json) -> Result<Self, InstanceError> {
        let bad = |msg: &str| InstanceError::BadPrecedence(format!("wire form: {msg}"));
        let m = doc
            .get("m")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing m"))? as usize;
        let n = doc
            .get("n")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing n"))? as usize;
        let q: Vec<f64> = doc
            .get("q")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing q"))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| bad("non-numeric q entry")))
            .collect::<Result<_, _>>()?;
        let mut edges = Vec::new();
        for e in doc
            .get("edges")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing edges"))?
        {
            match e.as_array() {
                Some([u, v]) => {
                    let u = u.as_u64().ok_or_else(|| bad("non-integer edge"))? as u32;
                    let v = v.as_u64().ok_or_else(|| bad("non-integer edge"))? as u32;
                    edges.push((u, v));
                }
                _ => return Err(bad("edge is not a pair")),
            }
        }
        let precedence = if edges.is_empty() {
            Precedence::Independent
        } else {
            Precedence::Dag(suu_dag::Dag::from_edges(n, &edges))
        };
        SuuInstance::new(m, n, q, precedence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q2x2() -> Vec<f64> {
        // machine 0: [0.5, 0.25]; machine 1: [1.0, 0.5]
        vec![0.5, 0.25, 1.0, 0.5]
    }

    #[test]
    fn construction_and_accessors() {
        let inst = SuuInstance::new(2, 2, q2x2(), Precedence::Independent).unwrap();
        assert_eq!(inst.num_jobs(), 2);
        assert_eq!(inst.num_machines(), 2);
        assert_eq!(inst.q(MachineId(0), JobId(1)), 0.25);
        assert!((inst.ell(MachineId(0), JobId(1)) - 2.0).abs() < 1e-12);
        assert_eq!(inst.ell(MachineId(1), JobId(0)), 0.0); // q = 1
        assert!((inst.best_ell(JobId(0)) - 1.0).abs() < 1e-12);
        assert_eq!(inst.best_machine(JobId(1)).index(), 0);
        assert!((inst.gang_mass(JobId(1)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let err = SuuInstance::new(2, 2, vec![0.5; 3], Precedence::Independent).unwrap_err();
        assert!(matches!(err, InstanceError::BadDimensions { .. }));
    }

    #[test]
    fn bad_probability_rejected() {
        let err = SuuInstance::new(1, 1, vec![1.5], Precedence::Independent).unwrap_err();
        assert!(matches!(err, InstanceError::BadProbability { .. }));
        let err = SuuInstance::new(1, 1, vec![f64::NAN], Precedence::Independent).unwrap_err();
        assert!(matches!(err, InstanceError::BadProbability { .. }));
    }

    #[test]
    fn unservable_job_rejected() {
        let err =
            SuuInstance::new(2, 2, vec![0.5, 1.0, 0.5, 1.0], Precedence::Independent).unwrap_err();
        assert_eq!(err, InstanceError::UnservableJob(1));
    }

    #[test]
    fn precedence_size_mismatch_rejected() {
        let cs = suu_dag::ChainSet::singletons(3);
        let err = SuuInstance::new(1, 2, vec![0.5, 0.5], Precedence::Chains(cs)).unwrap_err();
        assert!(matches!(err, InstanceError::BadPrecedence(_)));
    }

    #[test]
    fn json_wire_form_preserves_semantics() {
        // The wire form canonicalizes precedence to a DAG edge list; a
        // round-trip through actual JSON text must rebuild an instance
        // with identical scheduling semantics.
        use suu_dag::ChainSet;
        let cs = ChainSet::new(2, vec![vec![0, 1]]).unwrap();
        let inst = SuuInstance::new(2, 2, q2x2(), Precedence::Chains(cs)).unwrap();
        let text = inst.to_json().to_pretty();
        let rebuilt = SuuInstance::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(
                    rebuilt.q(MachineId(i), JobId(j)),
                    inst.q(MachineId(i), JobId(j))
                );
            }
        }
        assert_eq!(
            rebuilt.precedence().to_dag(2).num_edges(),
            inst.precedence().to_dag(2).num_edges()
        );
    }

    #[test]
    fn json_wire_form_rejects_garbage() {
        let doc = crate::json::parse(r#"{"m": 1, "n": 1}"#).unwrap();
        assert!(SuuInstance::from_json(&doc).is_err());
        let doc = crate::json::parse(r#"{"m": 1, "n": 1, "q": [0.5], "edges": [[0]]}"#).unwrap();
        assert!(SuuInstance::from_json(&doc).is_err());
    }

    #[test]
    fn restrict_jobs_reindexes() {
        let inst = SuuInstance::new(2, 2, q2x2(), Precedence::Independent).unwrap();
        let sub = inst.restrict_jobs(&[1], Precedence::Independent).unwrap();
        assert_eq!(sub.num_jobs(), 1);
        assert_eq!(sub.q(MachineId(0), JobId(0)), 0.25);
        assert_eq!(sub.q(MachineId(1), JobId(0)), 0.5);
    }
}
