//! The log-failure transform (paper §2).
//!
//! Failure probabilities multiply across machines and timesteps, which is
//! awkward; the paper instead works with `ℓ_ij = −log₂ q_ij` ("log
//! failure"), under which the probability that job `j` survives an
//! assignment equals `2^(−Σ ℓ)`. A job assigned total log mass `L` fails
//! with probability `2^(−L)`.
//!
//! Two boundary cases need care:
//! * `q = 0` (machine always succeeds) gives `ℓ = ∞`; we clamp to
//!   [`L_MAX`], i.e. a success probability of `1 − 2⁻⁶⁴`, which is exact
//!   for every practical purpose and keeps the LP coefficients finite.
//! * `q = 1` (machine never helps this job) gives `ℓ = 0`, and such pairs
//!   are excluded from assignments entirely.

/// Upper clamp for log failures: `q = 0` maps to this.
pub const L_MAX: f64 = 64.0;

/// `ℓ = −log₂ q`, clamped to `[0, L_MAX]`.
///
/// Panics (debug) if `q` is outside `[0, 1]`.
#[inline]
pub fn log_failure(q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q), "q out of range: {q}");
    if q <= 0.0 {
        L_MAX
    } else {
        (-q.log2()).clamp(0.0, L_MAX)
    }
}

/// Inverse transform: failure probability from accumulated log mass,
/// `q = 2^(−mass)`.
#[inline]
pub fn failure_prob(mass: f64) -> f64 {
    debug_assert!(mass >= 0.0, "negative log mass: {mass}");
    (-mass).exp2()
}

/// The paper's clamped coefficient `ℓ′ = min(ℓ, L)` used inside (LP1)/(LP2)
/// so that no single machine-step counts for more than the target.
#[inline]
pub fn clamped(ell: f64, target: f64) -> f64 {
    ell.min(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_is_one() {
        assert!((log_failure(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quarter_is_two() {
        assert!((log_failure(0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_is_zero() {
        assert_eq!(log_failure(1.0), 0.0);
    }

    #[test]
    fn zero_clamps_to_lmax() {
        assert_eq!(log_failure(0.0), L_MAX);
        assert_eq!(log_failure(1e-300), L_MAX);
    }

    #[test]
    fn roundtrip() {
        for q in [0.9, 0.5, 0.1, 0.013] {
            let ell = log_failure(q);
            assert!((failure_prob(ell) - q).abs() < 1e-12, "q={q}");
        }
    }

    #[test]
    fn masses_add_as_probs_multiply() {
        let (q1, q2) = (0.5, 0.125);
        let combined = failure_prob(log_failure(q1) + log_failure(q2));
        assert!((combined - q1 * q2).abs() < 1e-12);
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(clamped(5.0, 0.5), 0.5);
        assert_eq!(clamped(0.25, 0.5), 0.25);
    }
}
