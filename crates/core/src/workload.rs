//! Seeded random SUU instance generators.
//!
//! These model the environments the paper's introduction motivates:
//! volunteer computing (SETI@home-style unreliable machines), MapReduce
//! phases, and generic unrelated-machine settings. Every generator takes an
//! explicit RNG so experiments are reproducible.

use crate::{Precedence, SuuInstance};
use rand::prelude::*;

/// Uniform unrelated machines: each `q_ij` drawn i.i.d. from
/// `[q_min, q_max)`.
pub fn uniform_unrelated<R: Rng>(
    m: usize,
    n: usize,
    q_min: f64,
    q_max: f64,
    precedence: Precedence,
    rng: &mut R,
) -> SuuInstance {
    assert!((0.0..=1.0).contains(&q_min) && q_min <= q_max && q_max <= 1.0);
    let q = (0..m * n).map(|_| rng.random_range(q_min..q_max)).collect();
    SuuInstance::new(m, n, q, precedence).expect("generated instance valid")
}

/// Related machines: machine `i` has a reliability `r_i ∈ [r_min, r_max)`
/// and job `j` a difficulty `d_j ∈ [d_min, d_max)`;
/// `q_ij = 1 - r_i * (1 - d_j)`, clamped into `(0, 1)`.
///
/// High-reliability machines help every job; difficult jobs resist every
/// machine. This is the "machines differ in speed" regime where the LP
/// should concentrate work on good machines.
pub fn reliability_difficulty<R: Rng>(
    m: usize,
    n: usize,
    (r_min, r_max): (f64, f64),
    (d_min, d_max): (f64, f64),
    precedence: Precedence,
    rng: &mut R,
) -> SuuInstance {
    let rel: Vec<f64> = (0..m).map(|_| rng.random_range(r_min..r_max)).collect();
    let diff: Vec<f64> = (0..n).map(|_| rng.random_range(d_min..d_max)).collect();
    let mut q = Vec::with_capacity(m * n);
    for &r in &rel {
        for &d in &diff {
            q.push((1.0 - r * (1.0 - d)).clamp(1e-9, 1.0 - 1e-9));
        }
    }
    SuuInstance::new(m, n, q, precedence).expect("generated instance valid")
}

/// Volunteer grid: a fraction `frac_good` of machines are "good"
/// (`q ≈ q_good`), the rest "flaky" (`q ≈ q_bad`), with small per-pair
/// jitter. Models the SETI@home-style setting of the paper's introduction.
pub fn volunteer_grid<R: Rng>(
    m: usize,
    n: usize,
    frac_good: f64,
    q_good: f64,
    q_bad: f64,
    precedence: Precedence,
    rng: &mut R,
) -> SuuInstance {
    assert!((0.0..=1.0).contains(&frac_good));
    let mut q = Vec::with_capacity(m * n);
    for i in 0..m {
        let base = if (i as f64) < frac_good * m as f64 {
            q_good
        } else {
            q_bad
        };
        for _ in 0..n {
            let jitter = rng.random_range(-0.02..0.02);
            q.push((base + jitter).clamp(1e-9, 1.0 - 1e-9));
        }
    }
    SuuInstance::new(m, n, q, precedence).expect("generated instance valid")
}

/// Power-law job difficulty: job `j`'s per-machine failure probability is
/// `q_ij = q_base^(1/w_j)` where weights `w_j ~ Pareto(alpha)` — a few jobs
/// are far harder than the rest, stressing the semioblivious rounds.
pub fn power_law_difficulty<R: Rng>(
    m: usize,
    n: usize,
    q_base: f64,
    alpha: f64,
    precedence: Precedence,
    rng: &mut R,
) -> SuuInstance {
    assert!(alpha > 0.0 && (0.0..1.0).contains(&q_base));
    let mut q = Vec::with_capacity(m * n);
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.random_range(1e-9..1.0);
            u.powf(-1.0 / alpha) // Pareto(1, alpha)
        })
        .collect();
    for _ in 0..m {
        for &w in &weights {
            let jitter: f64 = rng.random_range(0.9..1.1);
            q.push(q_base.powf(1.0 / (w * jitter)).clamp(1e-9, 1.0 - 1e-9));
        }
    }
    SuuInstance::new(m, n, q, precedence).expect("generated instance valid")
}

/// Bimodal success probabilities: each `(machine, job)` pair is
/// independently either *reliable* (`q ~ U[good_lo, good_hi)`) with
/// probability `frac_good`, or *near-useless* (`q ~ U[bad_lo, bad_hi)`).
///
/// Unlike [`volunteer_grid`] (whole machines are good or flaky), the
/// modes mix per pair, so the success-probability matrix has no low-rank
/// structure a matching can exploit globally — policies must find the
/// reliable pairs job by job. The makespan distribution inherits the
/// bimodality, which is exactly the shape that separates a quantile
/// sketch from a mean.
pub fn bimodal<R: Rng>(
    m: usize,
    n: usize,
    frac_good: f64,
    (good_lo, good_hi): (f64, f64),
    (bad_lo, bad_hi): (f64, f64),
    precedence: Precedence,
    rng: &mut R,
) -> SuuInstance {
    assert!((0.0..=1.0).contains(&frac_good));
    assert!(0.0 <= good_lo && good_lo < good_hi && good_hi <= bad_lo);
    assert!(bad_lo < bad_hi && bad_hi <= 1.0);
    let q = (0..m * n)
        .map(|_| {
            if rng.random_range(0.0..1.0) < frac_good {
                rng.random_range(good_lo..good_hi)
            } else {
                rng.random_range(bad_lo..bad_hi)
            }
        })
        .map(|v| v.clamp(1e-9, 1.0 - 1e-9))
        .collect();
    SuuInstance::new(m, n, q, precedence).expect("generated instance valid")
}

/// Heterogeneous per-job reliability drawn from a power law: job `j` has
/// a base failure probability `q_j = q_floor^(1/w_j)` with
/// `w_j ~ Pareto(alpha)`, shared by every machine up to a small
/// multiplicative jitter.
///
/// The complement of [`power_law_difficulty`]'s regime: there the tail
/// jobs are *hard everywhere and machines matter*; here machines are
/// nearly interchangeable and the heterogeneity is purely across jobs —
/// most jobs are easy (`q_j` near `q_floor`), a Pareto tail is
/// near-impossible everywhere. Schedules win by budgeting machine-steps
/// across jobs, not by matching jobs to machines.
pub fn pareto_job_q<R: Rng>(
    m: usize,
    n: usize,
    q_floor: f64,
    alpha: f64,
    precedence: Precedence,
    rng: &mut R,
) -> SuuInstance {
    assert!(alpha > 0.0 && (0.0..1.0).contains(&q_floor));
    let base: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.random_range(1e-9..1.0);
            let w = u.powf(-1.0 / alpha); // Pareto(1, alpha)
            q_floor.powf(1.0 / w)
        })
        .collect();
    let mut q = Vec::with_capacity(m * n);
    for _ in 0..m {
        for &qj in &base {
            let jitter: f64 = rng.random_range(0.97..1.03);
            q.push((qj * jitter).clamp(1e-9, 1.0 - 1e-9));
        }
    }
    SuuInstance::new(m, n, q, precedence).expect("generated instance valid")
}

/// The fully deterministic instance: every machine completes every job
/// surely (`q = 0`). Useful for tests where the makespan is combinatorial.
pub fn deterministic(m: usize, n: usize, precedence: Precedence) -> SuuInstance {
    SuuInstance::new(m, n, vec![0.0; m * n], precedence).expect("valid")
}

/// Identical machines with a single failure probability everywhere.
pub fn homogeneous(m: usize, n: usize, q: f64, precedence: Precedence) -> SuuInstance {
    SuuInstance::new(m, n, vec![q; m * n], precedence).expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    #[test]
    fn uniform_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let inst = uniform_unrelated(3, 4, 0.2, 0.8, Precedence::Independent, &mut rng);
        for i in 0..3 {
            for j in 0..4 {
                let q = inst.q(crate::MachineId(i), crate::JobId(j));
                assert!((0.2..0.8).contains(&q));
            }
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = uniform_unrelated(
            4,
            5,
            0.1,
            0.9,
            Precedence::Independent,
            &mut SmallRng::seed_from_u64(42),
        );
        let b = uniform_unrelated(
            4,
            5,
            0.1,
            0.9,
            Precedence::Independent,
            &mut SmallRng::seed_from_u64(42),
        );
        for i in 0..4 {
            for j in 0..5 {
                assert_eq!(
                    a.q(crate::MachineId(i), crate::JobId(j)),
                    b.q(crate::MachineId(i), crate::JobId(j))
                );
            }
        }
    }

    #[test]
    fn volunteer_grid_has_two_modes() {
        let mut rng = SmallRng::seed_from_u64(7);
        let inst = volunteer_grid(10, 3, 0.5, 0.1, 0.9, Precedence::Independent, &mut rng);
        let q_first = inst.q(crate::MachineId(0), crate::JobId(0));
        let q_last = inst.q(crate::MachineId(9), crate::JobId(0));
        assert!(q_first < 0.2 && q_last > 0.8);
    }

    #[test]
    fn deterministic_is_all_zero() {
        let inst = deterministic(2, 2, Precedence::Independent);
        assert_eq!(inst.q(crate::MachineId(1), crate::JobId(1)), 0.0);
        assert_eq!(
            inst.ell(crate::MachineId(0), crate::JobId(0)),
            crate::logmass::L_MAX
        );
    }

    #[test]
    fn bimodal_mixes_modes_per_pair() {
        let mut rng = SmallRng::seed_from_u64(5);
        let inst = bimodal(
            6,
            20,
            0.5,
            (0.05, 0.25),
            (0.85, 0.99),
            Precedence::Independent,
            &mut rng,
        );
        let (mut good, mut bad) = (0usize, 0usize);
        for i in 0..6 {
            for j in 0..20 {
                let q = inst.q(crate::MachineId(i), crate::JobId(j));
                assert!((0.05..0.99).contains(&q));
                assert!(!(0.25..0.85).contains(&q), "value {q} between the modes");
                if q < 0.25 {
                    good += 1;
                } else {
                    bad += 1;
                }
            }
        }
        assert!(good > 20 && bad > 20, "both modes present ({good}/{bad})");
    }

    #[test]
    fn pareto_job_q_is_heterogeneous_across_jobs_not_machines() {
        let mut rng = SmallRng::seed_from_u64(8);
        let inst = pareto_job_q(4, 40, 0.3, 1.5, Precedence::Independent, &mut rng);
        let job_q: Vec<f64> = (0..40)
            .map(|j| inst.q(crate::MachineId(0), crate::JobId(j)))
            .collect();
        // Machines nearly interchangeable: per-job spread across machines
        // is within the jitter band.
        for j in 0..40u32 {
            for i in 1..4u32 {
                let a = inst.q(crate::MachineId(0), crate::JobId(j));
                let b = inst.q(crate::MachineId(i), crate::JobId(j));
                assert!((a / b).abs() < 1.1 && (b / a).abs() < 1.1, "job {j}");
            }
        }
        // Jobs genuinely heterogeneous: the Pareto tail spreads them.
        let min = job_q.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = job_q.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.5, "job qs too uniform: {min}..{max}");
    }

    #[test]
    fn power_law_all_valid() {
        let mut rng = SmallRng::seed_from_u64(3);
        let inst = power_law_difficulty(4, 20, 0.5, 1.2, Precedence::Independent, &mut rng);
        for j in 0..20 {
            assert!(inst.best_ell(crate::JobId(j)) > 0.0);
        }
    }
}
