//! An in-tree phase profiler for simulation hot loops: scoped phase
//! counters plus a signal-free sampling wall-clock timer.
//!
//! The sanctioned dependency list has no profiler crate, and `perf` is
//! not assumed on experiment hosts, so the batch engine carries its own
//! instrumentation. The model is a tiny state machine: the instrumented
//! loop declares which *phase* it is entering (`decide`, `cache-lookup`,
//! `sampling`, `state-update`, …) and the profiler attributes the wall
//! time between transitions to the phase that was current.
//!
//! * [`ProfileMode::Exact`] reads the monotonic clock at every
//!   transition — exact scoped timing, for coarse-grained transition
//!   points (the batch engine transitions per sweep/group, not per
//!   trial, so even exact mode costs well under a percent).
//! * [`ProfileMode::Sampled`]`(k)` reads the clock only on every k-th
//!   transition and attributes the whole elapsed interval to the phase
//!   current at the read — classic sampling-profiler attribution,
//!   without signals, extra threads or OS timers. Phase *entry counts*
//!   stay exact in both modes; only the time attribution is sampled.
//! * [`ProfileMode::Off`] makes [`PhaseProfiler::enter`] a single
//!   predictable branch, so the instrumentation stays compiled into the
//!   hot loop permanently (measured at <1% on the differential-test
//!   suite).
//!
//! Enable via the `SUU_PROFILE` environment variable (read by
//! [`ProfileMode::from_env`]): `1`/`on` samples every
//! [`DEFAULT_SAMPLE_EVERY`] transitions, `exact` times every transition,
//! an integer `k ≥ 2` samples every k-th, and `0`/`off`/unset disables.

use crate::json::Json;
use std::time::Instant;

/// Hard cap on distinct phases (fixed arrays keep the hot path flat).
pub const MAX_PHASES: usize = 8;

/// Sampling stride used by `SUU_PROFILE=1`.
pub const DEFAULT_SAMPLE_EVERY: u32 = 8;

/// How (and whether) a [`PhaseProfiler`] attributes wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileMode {
    /// No clock reads; `enter` is one branch.
    Off,
    /// Read the clock on every k-th phase transition.
    Sampled(u32),
    /// Read the clock on every phase transition.
    Exact,
}

impl ProfileMode {
    /// Mode requested by the `SUU_PROFILE` environment variable (see the
    /// module docs for the accepted values). Unset means [`Off`].
    ///
    /// [`Off`]: ProfileMode::Off
    pub fn from_env() -> ProfileMode {
        match std::env::var("SUU_PROFILE") {
            Ok(v) => ProfileMode::parse(&v),
            Err(_) => ProfileMode::Off,
        }
    }

    /// Parse a `SUU_PROFILE` value; unrecognized strings disable.
    pub fn parse(value: &str) -> ProfileMode {
        match value.trim() {
            "" | "0" | "off" => ProfileMode::Off,
            "1" | "on" => ProfileMode::Sampled(DEFAULT_SAMPLE_EVERY),
            "exact" => ProfileMode::Exact,
            other => match other.parse::<u32>() {
                Ok(k) if k >= 2 => ProfileMode::Sampled(k),
                Ok(_) => ProfileMode::Exact,
                Err(_) => ProfileMode::Off,
            },
        }
    }

    fn label(&self) -> &'static str {
        match self {
            ProfileMode::Off => "off",
            ProfileMode::Sampled(_) => "sampled",
            ProfileMode::Exact => "exact",
        }
    }
}

/// Phase-bucketed wall time and entry counts for one instrumented loop.
/// See the module docs for the attribution model.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    mode: ProfileMode,
    names: &'static [&'static str],
    current: usize,
    since_sample: u32,
    last: Option<Instant>,
    nanos: [u64; MAX_PHASES],
    enters: [u64; MAX_PHASES],
}

impl PhaseProfiler {
    /// Profiler over the given phase names (index = phase id).
    pub fn new(names: &'static [&'static str], mode: ProfileMode) -> Self {
        assert!(
            !names.is_empty() && names.len() <= MAX_PHASES,
            "1..={MAX_PHASES} phases required"
        );
        PhaseProfiler {
            mode,
            names,
            current: 0,
            since_sample: 0,
            last: None,
            nanos: [0; MAX_PHASES],
            enters: [0; MAX_PHASES],
        }
    }

    /// `true` unless the mode is [`ProfileMode::Off`].
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.mode != ProfileMode::Off
    }

    /// The configured mode.
    #[inline]
    pub fn mode(&self) -> ProfileMode {
        self.mode
    }

    /// Declare that phase `phase` starts now. Disabled, this is a single
    /// branch — the hot loop keeps its instrumentation unconditionally.
    #[inline]
    pub fn enter(&mut self, phase: usize) {
        if self.mode == ProfileMode::Off {
            return;
        }
        self.enter_enabled(phase);
    }

    fn enter_enabled(&mut self, phase: usize) {
        debug_assert!(phase < self.names.len(), "unknown phase {phase}");
        self.enters[phase] += 1;
        let read_clock = match self.mode {
            ProfileMode::Exact => true,
            ProfileMode::Sampled(k) => {
                self.since_sample += 1;
                if self.since_sample >= k {
                    self.since_sample = 0;
                    true
                } else {
                    false
                }
            }
            ProfileMode::Off => unreachable!(),
        };
        if read_clock {
            let now = Instant::now();
            if let Some(last) = self.last {
                self.nanos[self.current] += now.duration_since(last).as_nanos() as u64;
            }
            self.last = Some(now);
        }
        self.current = phase;
    }

    /// Close the open interval, attributing it to the current phase.
    /// Call when the instrumented region ends (e.g. end of a batch run);
    /// the profiler is then ready for the next region.
    pub fn finish(&mut self) {
        if self.mode == ProfileMode::Off {
            return;
        }
        if let Some(last) = self.last.take() {
            self.nanos[self.current] += last.elapsed().as_nanos() as u64;
        }
        self.since_sample = 0;
    }

    /// Snapshot of the accumulated phase breakdown.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            mode: self.mode,
            phases: self
                .names
                .iter()
                .enumerate()
                .map(|(i, &name)| PhaseStat {
                    name,
                    nanos: self.nanos[i],
                    enters: self.enters[i],
                })
                .collect(),
        }
    }
}

/// One phase's share of a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name as registered with [`PhaseProfiler::new`].
    pub name: &'static str,
    /// Wall nanoseconds attributed to the phase (sampled or exact,
    /// per the report's mode).
    pub nanos: u64,
    /// Exact number of `enter` transitions into the phase.
    pub enters: u64,
}

/// Snapshot of a profiler's phase breakdown, JSON-renderable for bench
/// artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Mode the profiler ran under.
    pub mode: ProfileMode,
    /// Per-phase totals, in registration order.
    pub phases: Vec<PhaseStat>,
}

impl ProfileReport {
    /// Total attributed nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.nanos).sum()
    }

    /// Render for embedding in a bench artifact cell: mode, per-phase
    /// seconds/entry counts, and each phase's share of attributed time.
    pub fn to_json(&self) -> Json {
        let total = self.total_nanos().max(1) as f64;
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                Json::obj()
                    .field("phase", p.name)
                    .field("wall_clock_s", p.nanos as f64 * 1e-9)
                    .field("share", p.nanos as f64 / total)
                    .field("enters", p.enters)
            })
            .collect();
        let mut json = Json::obj().field("mode", self.mode.label());
        if let ProfileMode::Sampled(k) = self.mode {
            json = json.field("sample_every", k);
        }
        json.field("phases", Json::Arr(phases))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(ProfileMode::parse(""), ProfileMode::Off);
        assert_eq!(ProfileMode::parse("0"), ProfileMode::Off);
        assert_eq!(ProfileMode::parse("off"), ProfileMode::Off);
        assert_eq!(
            ProfileMode::parse("1"),
            ProfileMode::Sampled(DEFAULT_SAMPLE_EVERY)
        );
        assert_eq!(ProfileMode::parse("on"), ProfileMode::Sampled(8));
        assert_eq!(ProfileMode::parse("exact"), ProfileMode::Exact);
        assert_eq!(ProfileMode::parse("16"), ProfileMode::Sampled(16));
        assert_eq!(ProfileMode::parse(" 4 "), ProfileMode::Sampled(4));
        assert_eq!(ProfileMode::parse("garbage"), ProfileMode::Off);
    }

    #[test]
    fn disabled_profiler_counts_nothing() {
        let mut p = PhaseProfiler::new(&["a", "b"], ProfileMode::Off);
        for _ in 0..100 {
            p.enter(0);
            p.enter(1);
        }
        p.finish();
        let r = p.report();
        assert_eq!(r.total_nanos(), 0);
        assert!(r.phases.iter().all(|ph| ph.enters == 0));
    }

    #[test]
    fn exact_mode_counts_enters_and_attributes_time() {
        let mut p = PhaseProfiler::new(&["work", "rest"], ProfileMode::Exact);
        for _ in 0..10 {
            p.enter(0);
            std::hint::black_box((0..500).sum::<u64>());
            p.enter(1);
        }
        p.finish();
        let r = p.report();
        assert_eq!(r.phases[0].enters, 10);
        assert_eq!(r.phases[1].enters, 10);
        assert!(r.phases[0].nanos > 0, "work phase saw wall time");
    }

    #[test]
    fn sampled_mode_keeps_exact_enters() {
        let mut p = PhaseProfiler::new(&["a", "b"], ProfileMode::Sampled(7));
        for _ in 0..100 {
            p.enter(0);
            p.enter(1);
        }
        p.finish();
        let r = p.report();
        assert_eq!(r.phases[0].enters, 100);
        assert_eq!(r.phases[1].enters, 100);
    }

    #[test]
    fn report_json_shape() {
        let mut p = PhaseProfiler::new(&["a"], ProfileMode::Sampled(4));
        p.enter(0);
        p.finish();
        let json = p.report().to_json();
        assert_eq!(json.get("mode").and_then(|m| m.as_str()), Some("sampled"));
        assert_eq!(json.get("sample_every").and_then(|s| s.as_u64()), Some(4));
        let phases = json.get("phases").and_then(|p| p.as_array()).unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].get("phase").and_then(|n| n.as_str()), Some("a"));
        assert!(phases[0].get("enters").is_some());
        assert!(phases[0].get("wall_clock_s").is_some());
        assert!(phases[0].get("share").is_some());
    }
}
