//! Stable, dependency-free content hashing.
//!
//! One hash is used everywhere the workspace needs a *portable* digest —
//! per-cell seed derivation in `suu-bench`, content-addressed cache keys
//! in `suu-serve`: 64-bit FNV-1a. It is not cryptographic; it is chosen
//! because it is tiny, byte-order independent, and its output for a given
//! byte string never changes across platforms, Rust versions or runs
//! (unlike `std::hash`, which is randomized and explicitly unstable).

/// 64-bit FNV-1a over arbitrary bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// 64-bit FNV-1a over a `u64` word slice: identical to [`fnv1a`] of the
/// words' little-endian byte concatenation, without materializing the
/// bytes. This is the probe hash of [`crate::WordMap`], where the keys
/// (bitset words) already live as `u64`s and the lookup sits on the batch
/// engine's per-epoch hot path.
#[inline]
pub fn fnv1a_u64s(words: &[u64]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &word in words {
        let mut w = word;
        for _ in 0..8 {
            hash ^= w & 0xFF;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            w >>= 8;
        }
    }
    hash
}

/// [`fnv1a`] rendered as the fixed-width lowercase hex form used for
/// content-addressed file names and URL path segments (always 16 chars).
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

/// `true` iff `s` has the shape [`fnv1a_hex`] produces (16 lowercase hex
/// chars) — the one definition of "plausible content address" shared by
/// the serve daemon's cache and the `validate_results` CI gate, so the
/// two can never drift apart.
pub fn is_fnv1a_hex(s: &str) -> bool {
    s.len() == 16
        && s.chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn hex_form_is_fixed_width() {
        let hex = fnv1a_hex(b"");
        assert_eq!(hex.len(), 16);
        assert_eq!(hex, "cbf29ce484222325");
        assert!(fnv1a_hex(b"x").chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn hex_predicate_matches_what_fnv1a_hex_produces() {
        for input in [&b""[..], b"a", b"foobar", b"\x00\xff"] {
            assert!(is_fnv1a_hex(&fnv1a_hex(input)));
        }
        for bad in [
            "",
            "cbf29ce48422232",   // 15 chars
            "cbf29ce4842223255", // 17 chars
            "CBF29CE484222325",  // uppercase
            "cbf29ce48422232x",  // non-hex
            "../../etc/passwd",  // path traversal shapes must not match
        ] {
            assert!(!is_fnv1a_hex(bad), "{bad:?}");
        }
    }

    #[test]
    fn word_hash_equals_byte_hash_of_le_concat() {
        for words in [
            &[][..],
            &[0u64][..],
            &[u64::MAX][..],
            &[0x0123_4567_89AB_CDEF][..],
            &[1, 2, 3][..],
            &[u64::MAX, 0, 0xDEAD_BEEF][..],
        ] {
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            assert_eq!(fnv1a_u64s(words), fnv1a(&bytes), "{words:?}");
        }
    }

    #[test]
    fn sensitive_to_every_byte() {
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"a\0"));
    }
}
