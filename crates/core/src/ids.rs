//! Strongly typed job and machine identifiers.
//!
//! Index-like newtypes prevent the classic `i`/`j` mix-up in the `q_ij`
//! matrix — the paper indexes machines by `i` and jobs by `j`, and so do we.

/// Identifier of a job (`0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

/// Identifier of a machine (`0..m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u32);

impl JobId {
    /// The job index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MachineId {
    /// The machine index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(JobId(3).to_string(), "j3");
        assert_eq!(MachineId(7).to_string(), "m7");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(JobId(42).index(), 42);
        assert_eq!(MachineId(0).index(), 0);
    }
}
