//! Property-based tests for the core data structures.

use crate::{workload, Assignment, BitSet, JobId, MachineId, Precedence};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BitSet agrees with a reference HashSet under arbitrary operation
    /// sequences.
    #[test]
    fn bitset_matches_reference(ops in proptest::collection::vec((0u32..200, any::<bool>()), 0..150)) {
        let mut bs = BitSet::new(200);
        let mut reference = std::collections::HashSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(v), reference.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), reference.remove(&v));
            }
        }
        prop_assert_eq!(bs.len(), reference.len());
        let mut from_iter: Vec<u32> = bs.iter().collect();
        let mut from_ref: Vec<u32> = reference.into_iter().collect();
        from_iter.sort_unstable();
        from_ref.sort_unstable();
        prop_assert_eq!(from_iter, from_ref);
    }

    /// Stacking an assignment into a timetable preserves every
    /// machine-step: the number of cells assigned to (i, j) equals x_ij,
    /// and the table length equals the max load.
    #[test]
    fn timetable_stacking_preserves_steps(
        entries in proptest::collection::vec((0u32..5, 0u32..8, 1u64..6), 0..30)
    ) {
        let (m, n) = (5usize, 8usize);
        let mut asg = Assignment::new(m, n);
        for &(i, j, s) in &entries {
            asg.add(MachineId(i), JobId(j), s);
        }
        let table = asg.to_timetable();
        prop_assert_eq!(table.len() as u64, asg.max_load());
        for i in 0..m as u32 {
            for j in 0..n as u32 {
                let cells = (0..table.len())
                    .filter(|&t| table.get(t, MachineId(i)) == Some(JobId(j)))
                    .count() as u64;
                prop_assert_eq!(cells, asg.steps(MachineId(i), JobId(j)));
            }
        }
        // busy_steps equals the total assigned steps.
        let total: u64 = (0..m as u32).map(|i| asg.load(MachineId(i))).sum();
        prop_assert_eq!(table.busy_steps(), total);
    }

    /// Assignment invariants: load/length/mass are consistent under
    /// arbitrary accumulation.
    #[test]
    fn assignment_aggregates_consistent(
        entries in proptest::collection::vec((0u32..4, 0u32..6, 1u64..9), 1..25),
        seed in 0u64..1_000,
    ) {
        let (m, n) = (4usize, 6usize);
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = workload::uniform_unrelated(m, n, 0.1, 0.9, Precedence::Independent, &mut rng);
        let mut asg = Assignment::new(m, n);
        for &(i, j, s) in &entries {
            asg.add(MachineId(i), JobId(j), s);
        }
        // Loads computed two ways agree.
        let loads = asg.loads();
        for i in 0..m as u32 {
            prop_assert_eq!(loads[i as usize], asg.load(MachineId(i)));
        }
        prop_assert_eq!(asg.max_load(), loads.iter().copied().max().unwrap());
        for j in 0..n as u32 {
            // Length is the max over per-machine steps.
            let max_steps = (0..m as u32).map(|i| asg.steps(MachineId(i), JobId(j))).max().unwrap();
            prop_assert_eq!(asg.length(JobId(j)), max_steps);
            // Mass is non-negative and zero iff no steps.
            let mass = asg.mass(JobId(j), &inst);
            if asg.machines_for(JobId(j)).is_empty() {
                prop_assert_eq!(mass, 0.0);
            } else {
                prop_assert!(mass >= 0.0);
            }
        }
    }

    /// Every workload generator yields valid instances (validation is in
    /// the constructor; this asserts the generators never trip it).
    #[test]
    fn generators_always_valid(seed in 0u64..2_000, m in 1usize..6, n in 1usize..10) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = workload::uniform_unrelated(m, n, 0.05, 0.95, Precedence::Independent, &mut rng);
        prop_assert_eq!(a.num_jobs(), n);
        let b = workload::volunteer_grid(m, n, 0.5, 0.1, 0.9, Precedence::Independent, &mut rng);
        prop_assert_eq!(b.num_machines(), m);
        let c = workload::reliability_difficulty(m, n, (0.3, 0.9), (0.05, 0.7), Precedence::Independent, &mut rng);
        let d = workload::power_law_difficulty(m, n, 0.5, 1.5, Precedence::Independent, &mut rng);
        for j in 0..n as u32 {
            prop_assert!(c.best_ell(JobId(j)) > 0.0);
            prop_assert!(d.best_ell(JobId(j)) > 0.0);
        }
    }
}

// ---- JSON writer/parser round-trip fuzz --------------------------------
//
// The serve daemon content-addresses cache entries by hashed canonical
// JSON, so writer/parser fidelity is load-bearing: any value the writer
// can emit must parse back to an equal tree, and hostile/truncated input
// must error, never panic. This fuzz found the original parser's
// unbounded recursion (stack overflow on `[[[[…`), its acceptance of
// numbers that silently overflow to `Inf` (which the writer then turns
// into `null` — content drift), and its replacement-char mangling of
// escaped surrogate pairs; all three are fixed in `json.rs`.

use crate::json::{parse, Json};
use rand::{Rng, RngCore};

/// Arbitrary finite `f64` drawn uniformly from the *bit* space, so
/// subnormals, extreme exponents and negative zero all appear.
fn gen_finite_f64(rng: &mut SmallRng) -> f64 {
    loop {
        let v = f64::from_bits(rng.next_u64());
        if v.is_finite() {
            return v;
        }
    }
}

/// Arbitrary string mixing control characters, JSON-special characters,
/// plain ASCII, BMP text and supplementary-plane scalars.
fn gen_string(rng: &mut SmallRng) -> String {
    let len: usize = rng.random_range(0..12);
    (0..len)
        .map(|_| match rng.random_range(0u32..6) {
            0 => char::from_u32(rng.random_range(0u32..0x20)).expect("control scalar"),
            1 => ['"', '\\', '/', '\n', '\r', '\t'][rng.random_range(0usize..6)],
            2 => char::from_u32(rng.random_range(0x20u32..0x7f)).expect("ascii scalar"),
            3 => char::from_u32(rng.random_range(0xA0u32..0xD800)).expect("low BMP scalar"),
            4 => char::from_u32(rng.random_range(0xE000u32..0x1_0000)).expect("high BMP scalar"),
            _ => char::from_u32(rng.random_range(0x1_0000u32..0x11_0000)).expect("astral scalar"),
        })
        .collect()
}

/// Arbitrary JSON tree, depth-bounded; containers (including duplicate
/// object keys, which the model permits) only below the given depth.
fn gen_json(rng: &mut SmallRng, depth: usize) -> Json {
    let arms = if depth == 0 { 5 } else { 7 };
    match rng.random_range(0u32..arms) {
        0 => Json::Null,
        1 => Json::Bool(rng.random_bool(0.5)),
        2 => {
            if rng.random_bool(0.5) {
                Json::UInt(rng.random_range(0u64..1000))
            } else {
                Json::UInt(rng.next_u64())
            }
        }
        3 => Json::Num(gen_finite_f64(rng)),
        4 => Json::Str(gen_string(rng)),
        5 => {
            let len: usize = rng.random_range(0..5);
            Json::Arr((0..len).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let len: usize = rng.random_range(0..5);
            Json::Obj(
                (0..len)
                    .map(|_| (gen_string(rng), gen_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// parse ∘ write is the identity for every writer, and canonical
    /// bytes are a fixed point of parse ∘ canonicalize.
    #[test]
    fn json_roundtrip_all_writers(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let doc = gen_json(&mut rng, 4);
        let compact = doc.to_compact();
        prop_assert_eq!(&parse(&compact).unwrap(), &doc, "compact {}", compact);
        prop_assert_eq!(&parse(&doc.to_pretty()).unwrap(), &doc);
        let canonical = doc.to_canonical();
        prop_assert_eq!(parse(&canonical).unwrap().to_canonical(), canonical);
    }

    /// Extreme finite numbers round-trip **bitwise**: shortest-repr
    /// writing plus correctly-rounded parsing is lossless, including
    /// subnormals and negative zero.
    #[test]
    fn json_f64_roundtrips_bitwise(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..16 {
            let v = gen_finite_f64(&mut rng);
            let text = Json::Num(v).to_compact();
            let back = parse(&text).unwrap().as_f64().expect("number");
            prop_assert_eq!(back.to_bits(), v.to_bits(), "{}", text);
        }
    }

    /// Truncations and single-character mutations of valid documents
    /// never panic; strict prefixes of container/string documents are
    /// errors (an unclosed bracket or quote can never be valid JSON).
    #[test]
    fn json_parser_is_total_on_corrupt_documents(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let text = gen_json(&mut rng, 3).to_compact();
        for _ in 0..8 {
            let mut cut: usize = rng.random_range(0..=text.len());
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            let prefix = &text[..cut];
            let result = parse(prefix);
            if cut < text.len() && text.starts_with(['{', '[', '"']) {
                prop_assert!(result.is_err(), "prefix {:?} of {:?} accepted", prefix, text);
            }
            if !text.is_empty() {
                let mut chars: Vec<char> = text.chars().collect();
                let at: usize = rng.random_range(0..chars.len());
                chars[at] = char::from_u32(rng.random_range(0x20u32..0x7f)).expect("ascii");
                let mutated: String = chars.into_iter().collect();
                let _ = parse(&mutated); // must not panic; Ok or Err both fine
            }
        }
    }

    /// Free-form soup over the JSON alphabet (including half-finished
    /// escapes and surrogate fragments) never panics the parser.
    #[test]
    fn json_parser_is_total_on_garbage(seed in any::<u64>()) {
        const ALPHABET: &[u8] = br#"[]{}",:\0123456789eE+-.truefalsn ud83"#;
        let mut rng = SmallRng::seed_from_u64(seed);
        let len: usize = rng.random_range(0..48);
        let soup: String = (0..len)
            .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())] as char)
            .collect();
        let _ = parse(&soup);
    }
}
