//! Property-based tests for the core data structures.

use crate::{workload, Assignment, BitSet, JobId, MachineId, Precedence};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BitSet agrees with a reference HashSet under arbitrary operation
    /// sequences.
    #[test]
    fn bitset_matches_reference(ops in proptest::collection::vec((0u32..200, any::<bool>()), 0..150)) {
        let mut bs = BitSet::new(200);
        let mut reference = std::collections::HashSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(v), reference.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), reference.remove(&v));
            }
        }
        prop_assert_eq!(bs.len(), reference.len());
        let mut from_iter: Vec<u32> = bs.iter().collect();
        let mut from_ref: Vec<u32> = reference.into_iter().collect();
        from_iter.sort_unstable();
        from_ref.sort_unstable();
        prop_assert_eq!(from_iter, from_ref);
    }

    /// Stacking an assignment into a timetable preserves every
    /// machine-step: the number of cells assigned to (i, j) equals x_ij,
    /// and the table length equals the max load.
    #[test]
    fn timetable_stacking_preserves_steps(
        entries in proptest::collection::vec((0u32..5, 0u32..8, 1u64..6), 0..30)
    ) {
        let (m, n) = (5usize, 8usize);
        let mut asg = Assignment::new(m, n);
        for &(i, j, s) in &entries {
            asg.add(MachineId(i), JobId(j), s);
        }
        let table = asg.to_timetable();
        prop_assert_eq!(table.len() as u64, asg.max_load());
        for i in 0..m as u32 {
            for j in 0..n as u32 {
                let cells = (0..table.len())
                    .filter(|&t| table.get(t, MachineId(i)) == Some(JobId(j)))
                    .count() as u64;
                prop_assert_eq!(cells, asg.steps(MachineId(i), JobId(j)));
            }
        }
        // busy_steps equals the total assigned steps.
        let total: u64 = (0..m as u32).map(|i| asg.load(MachineId(i))).sum();
        prop_assert_eq!(table.busy_steps(), total);
    }

    /// Assignment invariants: load/length/mass are consistent under
    /// arbitrary accumulation.
    #[test]
    fn assignment_aggregates_consistent(
        entries in proptest::collection::vec((0u32..4, 0u32..6, 1u64..9), 1..25),
        seed in 0u64..1_000,
    ) {
        let (m, n) = (4usize, 6usize);
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = workload::uniform_unrelated(m, n, 0.1, 0.9, Precedence::Independent, &mut rng);
        let mut asg = Assignment::new(m, n);
        for &(i, j, s) in &entries {
            asg.add(MachineId(i), JobId(j), s);
        }
        // Loads computed two ways agree.
        let loads = asg.loads();
        for i in 0..m as u32 {
            prop_assert_eq!(loads[i as usize], asg.load(MachineId(i)));
        }
        prop_assert_eq!(asg.max_load(), loads.iter().copied().max().unwrap());
        for j in 0..n as u32 {
            // Length is the max over per-machine steps.
            let max_steps = (0..m as u32).map(|i| asg.steps(MachineId(i), JobId(j))).max().unwrap();
            prop_assert_eq!(asg.length(JobId(j)), max_steps);
            // Mass is non-negative and zero iff no steps.
            let mass = asg.mass(JobId(j), &inst);
            if asg.machines_for(JobId(j)).is_empty() {
                prop_assert_eq!(mass, 0.0);
            } else {
                prop_assert!(mass >= 0.0);
            }
        }
    }

    /// Every workload generator yields valid instances (validation is in
    /// the constructor; this asserts the generators never trip it).
    #[test]
    fn generators_always_valid(seed in 0u64..2_000, m in 1usize..6, n in 1usize..10) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = workload::uniform_unrelated(m, n, 0.05, 0.95, Precedence::Independent, &mut rng);
        prop_assert_eq!(a.num_jobs(), n);
        let b = workload::volunteer_grid(m, n, 0.5, 0.1, 0.9, Precedence::Independent, &mut rng);
        prop_assert_eq!(b.num_machines(), m);
        let c = workload::reliability_difficulty(m, n, (0.3, 0.9), (0.05, 0.7), Precedence::Independent, &mut rng);
        let d = workload::power_law_difficulty(m, n, 0.5, 1.5, Precedence::Independent, &mut rng);
        for j in 0..n as u32 {
            prop_assert!(c.best_ell(JobId(j)) > 0.0);
            prop_assert!(d.best_ell(JobId(j)) > 0.0);
        }
    }
}
