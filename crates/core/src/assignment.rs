//! Integral machine-step assignments `{x_ij}`.
//!
//! The paper's LP roundings (Lemmas 2 and 6) output an *assignment*: for
//! each machine `i` and job `j`, an integral number of steps `x_ij` that
//! `i` should spend on `j`. Three derived quantities drive the analysis:
//!
//! * **load** of machine `i`: `Σ_j x_ij` — how busy the machine is;
//! * **length** of job `j`: `d_j = max_i x_ij` — the wall-clock span of the
//!   job's oblivious block (paper §4);
//! * **log mass** of job `j`: `Σ_i ℓ_ij · x_ij` — the success guarantee.
//!
//! An assignment is turned into a runnable [`Timetable`] by *stacking*: each
//! machine runs its assigned jobs back-to-back in job order, giving a finite
//! oblivious schedule of length `max load` (the schedule `Σ_LP1` of §3).

use crate::{JobId, MachineId, SuuInstance, Timetable};

/// Sparse integral assignment of machine steps to jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    m: usize,
    n: usize,
    /// Per job: sorted list of `(machine, steps)` with `steps >= 1`.
    per_job: Vec<Vec<(u32, u64)>>,
}

impl Assignment {
    /// Empty assignment for `m` machines and `n` jobs.
    pub fn new(m: usize, n: usize) -> Self {
        Assignment {
            m,
            n,
            per_job: vec![Vec::new(); n],
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.m
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.n
    }

    /// Add `steps` of machine `i` to job `j` (accumulates).
    pub fn add(&mut self, i: MachineId, j: JobId, steps: u64) {
        assert!(
            i.index() < self.m && j.index() < self.n,
            "index out of range"
        );
        if steps == 0 {
            return;
        }
        let row = &mut self.per_job[j.index()];
        match row.binary_search_by_key(&i.0, |&(mi, _)| mi) {
            Ok(pos) => row[pos].1 += steps,
            Err(pos) => row.insert(pos, (i.0, steps)),
        }
    }

    /// Steps of machine `i` assigned to job `j`.
    pub fn steps(&self, i: MachineId, j: JobId) -> u64 {
        self.per_job[j.index()]
            .binary_search_by_key(&i.0, |&(mi, _)| mi)
            .map(|pos| self.per_job[j.index()][pos].1)
            .unwrap_or(0)
    }

    /// `(machine, steps)` pairs for job `j`.
    pub fn machines_for(&self, j: JobId) -> &[(u32, u64)] {
        &self.per_job[j.index()]
    }

    /// Load of machine `i`: total steps across all jobs.
    pub fn load(&self, i: MachineId) -> u64 {
        self.per_job
            .iter()
            .map(|row| {
                row.binary_search_by_key(&i.0, |&(mi, _)| mi)
                    .map(|pos| row[pos].1)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// All machine loads at once (O(total entries)).
    pub fn loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.m];
        for row in &self.per_job {
            for &(i, s) in row {
                loads[i as usize] += s;
            }
        }
        loads
    }

    /// Maximum machine load — the stacked timetable's length.
    pub fn max_load(&self) -> u64 {
        self.loads().into_iter().max().unwrap_or(0)
    }

    /// Length `d_j = max_i x_ij` of job `j`'s oblivious block.
    pub fn length(&self, j: JobId) -> u64 {
        self.per_job[j.index()]
            .iter()
            .map(|&(_, s)| s)
            .max()
            .unwrap_or(0)
    }

    /// Log mass `Σ_i ℓ_ij · x_ij` that this assignment gives job `j`.
    pub fn mass(&self, j: JobId, inst: &SuuInstance) -> f64 {
        self.per_job[j.index()]
            .iter()
            .map(|&(i, s)| inst.ell(MachineId(i), j) * s as f64)
            .sum()
    }

    /// Jobs with at least one assigned step.
    pub fn assigned_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.per_job
            .iter()
            .enumerate()
            .filter(|(_, row)| !row.is_empty())
            .map(|(j, _)| JobId(j as u32))
    }

    /// Stack into a finite oblivious [`Timetable`] of length `max load`:
    /// machine `i` runs its assigned jobs consecutively, in job-id order.
    pub fn to_timetable(&self) -> Timetable {
        let len = self.max_load() as usize;
        let mut table = Timetable::idle(self.m, len);
        let mut cursor = vec![0usize; self.m];
        for (j, row) in self.per_job.iter().enumerate() {
            for &(i, s) in row {
                let i = i as usize;
                for _ in 0..s {
                    table.set(cursor[i], MachineId(i as u32), Some(JobId(j as u32)));
                    cursor[i] += 1;
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Precedence;

    fn inst() -> SuuInstance {
        // 2 machines x 3 jobs, q picked for easy ells: 0.5 -> 1, 0.25 -> 2.
        SuuInstance::new(
            2,
            3,
            vec![0.5, 0.25, 0.5, 0.25, 0.5, 0.5],
            Precedence::Independent,
        )
        .unwrap()
    }

    #[test]
    fn add_accumulates_and_sorts() {
        let mut a = Assignment::new(2, 3);
        a.add(MachineId(1), JobId(0), 2);
        a.add(MachineId(0), JobId(0), 1);
        a.add(MachineId(1), JobId(0), 3);
        assert_eq!(a.steps(MachineId(1), JobId(0)), 5);
        assert_eq!(a.steps(MachineId(0), JobId(0)), 1);
        assert_eq!(a.machines_for(JobId(0)), &[(0, 1), (1, 5)]);
        assert_eq!(a.steps(MachineId(0), JobId(2)), 0);
    }

    #[test]
    fn zero_steps_is_noop() {
        let mut a = Assignment::new(1, 1);
        a.add(MachineId(0), JobId(0), 0);
        assert!(a.machines_for(JobId(0)).is_empty());
    }

    #[test]
    fn loads_and_lengths() {
        let mut a = Assignment::new(2, 3);
        a.add(MachineId(0), JobId(0), 2);
        a.add(MachineId(0), JobId(1), 1);
        a.add(MachineId(1), JobId(1), 4);
        assert_eq!(a.loads(), vec![3, 4]);
        assert_eq!(a.max_load(), 4);
        assert_eq!(a.length(JobId(0)), 2);
        assert_eq!(a.length(JobId(1)), 4);
        assert_eq!(a.length(JobId(2)), 0);
    }

    #[test]
    fn mass_uses_instance_ells() {
        let inst = inst();
        let mut a = Assignment::new(2, 3);
        a.add(MachineId(0), JobId(1), 3); // ell = 2 each
        a.add(MachineId(1), JobId(1), 1); // ell = 1
        assert!((a.mass(JobId(1), &inst) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn timetable_stacking() {
        let mut a = Assignment::new(2, 3);
        a.add(MachineId(0), JobId(0), 2);
        a.add(MachineId(0), JobId(2), 1);
        a.add(MachineId(1), JobId(1), 1);
        let t = a.to_timetable();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0, MachineId(0)), Some(JobId(0)));
        assert_eq!(t.get(1, MachineId(0)), Some(JobId(0)));
        assert_eq!(t.get(2, MachineId(0)), Some(JobId(2)));
        assert_eq!(t.get(0, MachineId(1)), Some(JobId(1)));
        assert_eq!(t.get(1, MachineId(1)), None);
    }

    #[test]
    fn assigned_jobs_iterates_nonempty() {
        let mut a = Assignment::new(1, 3);
        a.add(MachineId(0), JobId(2), 1);
        let jobs: Vec<_> = a.assigned_jobs().collect();
        assert_eq!(jobs, vec![JobId(2)]);
    }
}
